"""The rule catalogue for ``repro.lint``.

Rule ids are stable: ``PD1xx`` lints run on PARDIS IDL (family A),
``PD2xx`` lints run on SPMD client/server programs (family B).  Each
rule carries the paper section that motivates it so diagnostics can
point back at the source of the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """A lint rule: stable id, slug name, severity and rationale."""

    id: str
    name: str
    severity: str  # 'error' | 'warning'
    summary: str
    rationale: str  # grounded in a PARDIS paper section


_RULES = (
    # ------------------------------------------------------ family A
    Rule(
        "PD100",
        "idl-error",
        "error",
        "IDL source fails to parse or analyze",
        "§2: specifications must compile before stubs can be "
        "generated; surfaced here so lint runs never crash.",
    ),
    Rule(
        "PD101",
        "unbounded-dsequence",
        "warning",
        "unbounded dsequence used by an operation",
        "§2.1: distributed sequences are mapped onto distribution "
        "templates; an unbounded dsequence forces the run-time "
        "system to defer layout until invocation and prevents "
        "preallocated multiport transfer buffers (§3.2).",
    ),
    Rule(
        "PD102",
        "dsequence-element",
        "error",
        "dsequence element type is not a fixed-width numeric",
        "§2.1: dsequence data are scattered across computing "
        "threads by the transfer engine, which requires elements "
        "of a known fixed width (the CDR layer rejects anything "
        "without a dtype at marshal time).",
    ),
    Rule(
        "PD103",
        "mixed-distributed-out",
        "warning",
        "operation mixes distributed and non-distributed out "
        "parameters",
        "§2.2/§3: distributed out arguments travel through the "
        "transfer engine while scalar outs return in the reply "
        "message; mixing them in one operation couples the two "
        "completion paths and defeats out-template pipelining.",
    ),
    Rule(
        "PD104",
        "inheritance-collision",
        "error",
        "inherited operations collide after flattening",
        "§2: SPMD interface semantics follow CORBA; two bases "
        "contributing distinct operations of the same name make "
        "the flattened request table ambiguous.",
    ),
    Rule(
        "PD105",
        "dead-typedef",
        "warning",
        "typedef is never referenced",
        "§2.1: type aliases exist to name distribution choices; "
        "an unreferenced alias usually marks a half-finished "
        "migration of an interface to distributed types.",
    ),
    Rule(
        "PD106",
        "undeclared-raises",
        "error",
        "raises clause names an undeclared exception",
        "§2: the stub compiler must marshal user exceptions by "
        "repository id; an undeclared name has no id to map.",
    ),
    Rule(
        "PD107",
        "oneway-constraints",
        "error",
        "oneway operation declares results or exceptions",
        "§2.2: oneway requests return no reply message, so a "
        "non-void result, out/inout parameter, or raises clause "
        "can never be delivered.",
    ),
    # ------------------------------------------------------ family B
    Rule(
        "PD200",
        "python-error",
        "error",
        "python source fails to parse",
        "SPMD checks need an AST; surfaced as a diagnostic so a "
        "broken file fails lint rather than crashing it.",
    ),
    Rule(
        "PD201",
        "rank-dependent-collective",
        "error",
        "collective invocation is control-dependent on a thread "
        "rank",
        "§2: a request on an SPMD object is satisfied only if it "
        "is delivered to ALL computing threads; guarding a "
        "collective call with a rank test means some threads "
        "never join it and every thread deadlocks.",
    ),
    Rule(
        "PD202",
        "unconsumed-future",
        "warning",
        "future returned by a *_nb invocation is never consumed",
        "§4: non-blocking invocations return ABC++-style futures; "
        "a future that is never touched hides errors and lets "
        "the program exit before the request completes.",
    ),
    Rule(
        "PD203",
        "touch-in-rank-loop",
        "warning",
        "blocking touch() inside a loop over ranks",
        "§4: touching each future as soon as it is created "
        "serialises the requests; issue all requests first, then "
        "touch, to overlap the transfers (the latency-hiding "
        "pattern of §4's compute/communicate overlap).",
    ),
    Rule(
        "PD204",
        "transfer-mismatch",
        "error",
        "bind-site transfer method contradicts servant "
        "registration",
        "§3: the transfer method is negotiated between stub and "
        "run-time system; requesting multiport transfer from a "
        "server registered centralized-only falls back silently "
        "and the measured bandwidth collapses (§3.2, Figure 5).",
    ),
    Rule(
        "PD205",
        "invalid-transfer",
        "error",
        "transfer= names an unknown transfer method",
        "§3: only the centralized and multiport methods exist; "
        "any other spelling raises at bind time.",
    ),
    Rule(
        "PD208",
        "unagreed-guarded-invocation",
        "error",
        "invocation on a collectively-bound proxy inside a "
        "rank-guarded branch without failure agreement",
        "§2 + fault tolerance: an invocation on a proxy bound with "
        "_spmd_bind is collective — every computing thread must "
        "issue it at the same point in the collective sequence.  "
        "Under a rank guard only some threads reach it, and without "
        "an agreement call (repro.ft.agreement.agree / "
        "agree_failure) the group has no way to converge on one "
        "outcome: the guarded ranks time out while the others "
        "proceed, and the collective sequences diverge.",
    ),
    Rule(
        "PD209",
        "retries-without-reply-cache",
        "warning",
        "retries enabled on a proxy whose server has no reply cache",
        "Fault tolerance (docs/robustness.md): a retried request "
        "whose *reply* was lost re-executes on the servant unless "
        "the server records sent replies.  Binding with an FtPolicy "
        "whose max_retries > 0 against an object served without "
        "reply_cache_bytes is a duplicate-execution hazard for any "
        "non-idempotent operation.",
    ),
    Rule(
        "PD210",
        "divergent-collective-across-calls",
        "error",
        "rank-dependent branch hides a collective behind a call, "
        "diverging the group's collective sequence",
        "§2: a collective request must be issued by every computing "
        "thread.  The interprocedural flow analysis found a "
        "rank-guarded path whose collective-effect sequence — "
        "including collectives performed inside functions it calls "
        "— differs from the unguarded path's, so the ranks that "
        "take it fall out of lockstep and the group deadlocks.",
    ),
    Rule(
        "PD211",
        "collective-in-exception-path",
        "error",
        "collective effect inside an exception handler without "
        "failure agreement",
        "§2 + fault tolerance: exceptions are rank-local — only the "
        "ranks that raised enter the handler — so a collective "
        "issued there is issued by a subset of the group.  The "
        "sanctioned idiom reconciles the handler through "
        "repro.ft.agreement first, so every rank converges on one "
        "outcome before the next collective.",
    ),
    Rule(
        "PD212",
        "early-return-skips-collective",
        "error",
        "rank-guarded early return skips collectives issued later "
        "in the function",
        "§2: the ranks that take a rank-guarded return (or raise) "
        "never issue the collectives that follow it, while the "
        "remaining ranks block in them forever — the same deadlock "
        "as PD201, hidden by control flow instead of a guard "
        "around the call itself.",
    ),
    Rule(
        "PD213",
        "group-bind-without-retry-policy",
        "warning",
        "bound to a replicated group without an FtPolicy that "
        "enables retries, so failover silently degrades to "
        "fail-fast",
        "Replicated groups (repro.groups): client-side failover "
        "only engages when a fault-tolerance policy classifies the "
        "failure as retry-worthy — a group binding without a "
        "retrying FtPolicy fails fast on the first dead replica, "
        "exactly like a singleton binding, and the replication "
        "buys nothing.  Bind with FtPolicy(max_retries > 0) (and "
        "serve the replicas with a reply cache, so failover "
        "replays dedup instead of re-executing).",
    ),
)

RULES: dict[str, Rule] = {rule.id: rule for rule in _RULES}
RULES_BY_NAME: dict[str, Rule] = {rule.name: rule for rule in _RULES}


def resolve_rule(token: str) -> Rule | None:
    """A rule by id (``PD101``) or slug (``unbounded-dsequence``)."""
    token = token.strip()
    return RULES.get(token.upper()) or RULES_BY_NAME.get(token.lower())
