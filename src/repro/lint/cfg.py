"""Per-function control-flow graphs over python AST.

The collective-flow analysis (:mod:`repro.lint.flow`) needs to reason
about the *paths* a function can take — which collectives run on the
guarded arm of a rank test, which ones an early return skips — so the
raw statement list is lowered into a structured CFG first: a region
tree in which every node is one control construct and sequencing is
explicit.  Python's compiled control flow is reducible, so the region
form is a faithful CFG — each region has one entry, the exits are the
``ExitRegion`` leaves, and a branch's two sub-regions rejoin at the
next region in the enclosing sequence.

The builder is deliberately syntactic: it does not evaluate anything,
it only records where control can go and which expressions decide it.
Constructs without a faithful structured lowering (``match``) become
:class:`OpaqueRegion`, which the analysis treats as "anything may
happen here" — the conservative reading that keeps the analyzer
free of false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class Region:
    """Base class: one single-entry piece of control flow."""

    line: int


@dataclass
class StmtRegion(Region):
    """A simple (non-control) statement: effects happen here."""

    stmt: ast.stmt = None  # type: ignore[assignment]


@dataclass
class SeqRegion(Region):
    """Straight-line sequencing of sub-regions."""

    parts: list[Region] = field(default_factory=list)


@dataclass
class BranchRegion(Region):
    """``if``: two alternative sub-regions that rejoin afterwards."""

    test: ast.expr = None  # type: ignore[assignment]
    true: SeqRegion = None  # type: ignore[assignment]
    false: SeqRegion = None  # type: ignore[assignment]


@dataclass
class LoopRegion(Region):
    """``while``/``for``: a body executed zero or more times.

    ``control`` is the expression deciding iteration (the while test
    or the for iterable); ``is_for`` distinguishes trip-count loops.
    """

    control: ast.expr | None = None
    body: SeqRegion = None  # type: ignore[assignment]
    orelse: SeqRegion = None  # type: ignore[assignment]
    is_for: bool = False


@dataclass
class TryRegion(Region):
    """``try``: a normal path plus rank-local exception paths."""

    body: SeqRegion = None  # type: ignore[assignment]
    handlers: list[SeqRegion] = field(default_factory=list)
    orelse: SeqRegion = None  # type: ignore[assignment]
    final: SeqRegion = None  # type: ignore[assignment]


@dataclass
class ExitRegion(Region):
    """Control leaves the enclosing construct here.

    ``kind`` is ``return``/``raise`` (leaves the function) or
    ``break``/``continue`` (leaves/restarts the enclosing loop).
    ``stmt`` is kept so the raised/returned expression can still be
    inspected for effects.
    """

    kind: str = "return"
    stmt: ast.stmt | None = None


@dataclass
class OpaqueRegion(Region):
    """Control flow the builder does not model (``match``)."""

    stmt: ast.stmt = None  # type: ignore[assignment]


def _seq(stmts: list[ast.stmt], line: int) -> SeqRegion:
    parts: list[Region] = []
    for stmt in stmts:
        region = _lower(stmt)
        if region is not None:
            parts.append(region)
    return SeqRegion(line=line, parts=parts)


def _lower(stmt: ast.stmt) -> Region | None:
    if isinstance(stmt, ast.If):
        return BranchRegion(
            line=stmt.lineno,
            test=stmt.test,
            true=_seq(stmt.body, stmt.lineno),
            false=_seq(stmt.orelse, stmt.lineno),
        )
    if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
        control = (
            stmt.test if isinstance(stmt, ast.While) else stmt.iter
        )
        return LoopRegion(
            line=stmt.lineno,
            control=control,
            body=_seq(stmt.body, stmt.lineno),
            orelse=_seq(stmt.orelse, stmt.lineno),
            is_for=not isinstance(stmt, ast.While),
        )
    if isinstance(stmt, ast.Try):
        return TryRegion(
            line=stmt.lineno,
            body=_seq(stmt.body, stmt.lineno),
            handlers=[
                _seq(handler.body, handler.lineno)
                for handler in stmt.handlers
            ],
            orelse=_seq(stmt.orelse, stmt.lineno),
            final=_seq(stmt.finalbody, stmt.lineno),
        )
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        # The context expressions run, then the body: model as the
        # with-statement's own effects followed by the body's.
        header = StmtRegion(line=stmt.lineno, stmt=stmt)
        inner = _seq(stmt.body, stmt.lineno)
        return SeqRegion(
            line=stmt.lineno, parts=[header] + inner.parts
        )
    if isinstance(stmt, ast.Return):
        return ExitRegion(line=stmt.lineno, kind="return", stmt=stmt)
    if isinstance(stmt, ast.Raise):
        return ExitRegion(line=stmt.lineno, kind="raise", stmt=stmt)
    if isinstance(stmt, ast.Break):
        return ExitRegion(line=stmt.lineno, kind="break", stmt=stmt)
    if isinstance(stmt, ast.Continue):
        return ExitRegion(
            line=stmt.lineno, kind="continue", stmt=stmt
        )
    if isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        # Defining a function/class executes no body statements; the
        # nested body is analyzed as its own CFG by the caller.
        return None
    if isinstance(stmt, getattr(ast, "Match", ())):
        return OpaqueRegion(line=stmt.lineno, stmt=stmt)
    return StmtRegion(line=stmt.lineno, stmt=stmt)


def build_cfg(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> SeqRegion:
    """Lower a function (or module) body into its region CFG."""
    line = getattr(node, "lineno", 1)
    return _seq(node.body, line)
