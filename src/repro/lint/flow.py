"""Interprocedural collective-flow analysis (rules PD210–PD212).

The PD201/PD208 lints are intraprocedural and syntactic: they flag a
collective call *lexically* inside a rank guard.  That misses the two
shapes that actually bite in practice — a collective hidden behind a
helper-function call, and a rank-guarded early return that skips
collectives issued later — because in both the collective itself sits
in unguarded code.

This module closes the gap.  Per function it builds a structured CFG
(:mod:`repro.lint.cfg`), summarizes the function by its *sequence of
collective effects* — direct calls to the collective entry points
plus, transitively, the effect sequences of same-module functions it
calls — and propagates the summaries through the call graph.  At
every rank-dependent branch it then compares the collective sequence
of the guarded continuation against the unguarded one, all the way to
function exit.  A *provable* difference means the ranks that take the
branch fall out of lockstep with the rest of the group:

- **PD210** — the diverging effect is reached through a call (the
  interprocedural case PD201 cannot see).
- **PD211** — a collective effect inside an ``except`` handler:
  exception paths are rank-local, so the handler runs on a subset of
  the group.
- **PD212** — a rank-guarded ``return``/``raise`` skips collectives
  the fall-through path still issues.

Soundness posture: the analyzer reports only *certain* divergence.
Anything it cannot canonicalize — unresolved calls, ``match``
statements, loops with ``break``, rank-independent branches whose
arms differ — degrades the summary to "incomplete" and suppresses
comparison rather than guessing.  Divergence deliberately reconciled
through :mod:`repro.ft.agreement` (an agreement call in the function,
directly or via a called same-module function) suppresses all three
rules: the agreement protocol is exactly the sanctioned way to let
ranks diverge and then converge on one outcome.

Known limits (see ``docs/lint.md``): the call graph is per-module and
by-name, proxies passed across functions are not tracked (PD208
remains intraprocedural), and a collective inside a rank-trip-count
loop is only reported when reached through a call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.cfg import (
    BranchRegion,
    ExitRegion,
    LoopRegion,
    OpaqueRegion,
    Region,
    SeqRegion,
    StmtRegion,
    TryRegion,
    build_cfg,
)
from repro.lint.diagnostics import Diagnostic

# Token sets shared with the intraprocedural family-B rules.  This
# import is safe — spmd_rules imports this module lazily, inside
# lint_python_source — and keeps a single source of truth.
from repro.lint.spmd_rules import (
    AGREEMENT_CALLS,
    COLLECTIVE_CALLS,
    RANK_TOKENS,
)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _mentions_rank(tree: ast.AST) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in RANK_TOKENS:
            return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr in RANK_TOKENS
        ):
            return True
    return False


def _calls_in(stmt: ast.AST):
    """Calls evaluated by ``stmt`` itself, in source order — the
    bodies of nested ``lambda``/``def`` run elsewhere, so they are
    not this statement's effects."""
    stack = [stmt]
    found: list[ast.Call] = []
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            if isinstance(child, ast.Call):
                found.append(child)
            stack.append(child)
    return sorted(found, key=lambda c: (c.lineno, c.col_offset))


# ---------------------------------------------------------------------------
# Effect summaries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Event:
    """One collective effect on a path.

    ``via`` names the call chain for effects reached through local
    functions (``"helper"`` or ``"outer -> inner"``); ``line`` is the
    anchor *in the analyzed function* (the call site for spliced
    events).  ``body`` carries a loop's inner effect keys so two
    identical loops compare equal.
    """

    name: str
    line: int
    via: str | None = None
    body: tuple = ()

    @property
    def key(self) -> tuple:
        # Comparison ignores lines and call chains: what must match
        # across ranks is the *operation sequence*, not the syntax
        # that produced it.
        return (self.name, self.body)

    def describe(self) -> str:
        if self.via:
            return f"'{self.name}' via {self.via}() (line {self.line})"
        return f"'{self.name}' (line {self.line})"


@dataclass(frozen=True)
class Sum:
    """The collective effects of one path, to function exit.

    ``events`` is the provable prefix; ``complete`` says whether it
    is the whole story.  ``exit`` records a certain early function
    exit (``("return", line)``) for PD212 anchoring.
    """

    events: tuple[Event, ...] = ()
    complete: bool = True
    exit: tuple[str, int] | None = None

    def keys(self) -> tuple:
        return tuple(e.key for e in self.events)


EMPTY = Sum()
UNKNOWN = Sum(events=(), complete=False, exit=None)


@dataclass
class FuncInfo:
    """What the call graph knows about one function."""

    name: str
    node: ast.AST
    cfg: SeqRegion
    summary: Sum | None = None
    in_progress: bool = False
    may_collect: bool = False
    has_agreement: bool = False
    called_names: set[str] = field(default_factory=set)


def _collect_functions(tree: ast.Module) -> dict[str, list[FuncInfo]]:
    functions: dict[str, list[FuncInfo]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FuncInfo(
                name=node.name, node=node, cfg=build_cfg(node)
            )
            functions.setdefault(node.name, []).append(info)
    return functions


class FlowAnalyzer:
    """One module's collective-flow analysis."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self.path = path
        self.functions = _collect_functions(tree)
        self.module = FuncInfo(
            name="<module>", node=tree, cfg=build_cfg(tree)
        )
        self.out: list[Diagnostic] = []
        self._reported: set[tuple[str, int]] = set()
        self._infos = [
            info
            for infos in self.functions.values()
            for info in infos
        ] + [self.module]
        for info in self._infos:
            self._scan_direct(info)
        self._close_over_calls()

    # -- call-graph closures ------------------------------------------------

    def _scan_direct(self, info: FuncInfo) -> None:
        """Direct facts: own calls, ignoring nested function bodies."""
        for call in _calls_in_region(info.cfg):
            name = _call_name(call)
            if name in COLLECTIVE_CALLS:
                info.may_collect = True
            elif name in AGREEMENT_CALLS:
                info.has_agreement = True
            elif name in self.functions:
                info.called_names.add(name)

    def _close_over_calls(self) -> None:
        """Propagate ``may_collect`` / ``has_agreement`` through the
        by-name call graph to a fixpoint."""
        changed = True
        while changed:
            changed = False
            for info in self._infos:
                for name in info.called_names:
                    for callee in self.functions.get(name, ()):
                        if callee.may_collect and not info.may_collect:
                            info.may_collect = True
                            changed = True
                        if (
                            callee.has_agreement
                            and not info.has_agreement
                        ):
                            info.has_agreement = True
                            changed = True

    # -- entry point --------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for info in self._infos:
            self._summary_of(info)
        self.out.sort(key=lambda d: (d.line, d.rule))
        return self.out

    # -- summaries ----------------------------------------------------------

    def _summary_of(self, info: FuncInfo) -> Sum:
        if info.summary is not None:
            return info.summary
        if info.in_progress:  # recursion: effects unknowable
            return UNKNOWN if info.may_collect else EMPTY
        info.in_progress = True
        try:
            summary = self._seq(info.cfg.parts, EMPTY, info)
        finally:
            info.in_progress = False
        info.summary = summary
        return summary

    def _resolve_call(self, name: str) -> Sum | None:
        """The spliceable summary of a by-name callee, or ``None``
        when the call is not a local function (assumed
        collective-free — the intraprocedural fallback)."""
        candidates = self.functions.get(name)
        if not candidates:
            return None
        summaries = [self._summary_of(c) for c in candidates]
        first = summaries[0]
        if all(
            s.complete and s.keys() == first.keys()
            for s in summaries
        ):
            return first
        if any(c.may_collect for c in candidates):
            return UNKNOWN
        return EMPTY

    def _stmt_events(
        self, stmt: ast.AST, info: FuncInfo
    ) -> tuple[tuple[Event, ...], bool]:
        """``(events, complete)`` for one simple statement."""
        events: list[Event] = []
        for call in _calls_in(stmt):
            name = _call_name(call)
            if name in AGREEMENT_CALLS:
                continue
            if name in COLLECTIVE_CALLS:
                events.append(Event(name=name, line=call.lineno))
                continue
            resolved = self._resolve_call(name)
            if resolved is None:
                continue
            if not resolved.complete:
                return tuple(events), False
            for ev in resolved.events:
                via = f"{name} -> {ev.via}" if ev.via else name
                events.append(
                    Event(
                        name=ev.name,
                        line=call.lineno,
                        via=via,
                        body=ev.body,
                    )
                )
        return tuple(events), True

    # -- the region walk ----------------------------------------------------

    def _seq(
        self, parts: list[Region], k: Sum, info: FuncInfo
    ) -> Sum:
        """Effects of ``parts`` followed by continuation ``k``."""
        current = k
        for region in reversed(parts):
            current = self._region(region, current, info)
        return current

    def _region(self, region: Region, k: Sum, info: FuncInfo) -> Sum:
        if isinstance(region, StmtRegion):
            events, complete = self._stmt_events(region.stmt, info)
            if not complete:
                return Sum(events=events, complete=False, exit=None)
            return Sum(
                events=events + k.events,
                complete=k.complete,
                exit=k.exit,
            )
        if isinstance(region, ExitRegion):
            events, complete = (
                self._stmt_events(region.stmt, info)
                if region.stmt is not None
                else ((), True)
            )
            if region.kind in ("return", "raise"):
                return Sum(
                    events=events,
                    complete=complete,
                    exit=(region.kind, region.line),
                )
            # break/continue: control stays in the function but the
            # enclosing loop's trip effects become unknowable.
            return Sum(events=events, complete=False, exit=None)
        if isinstance(region, BranchRegion):
            return self._branch(region, k, info)
        if isinstance(region, LoopRegion):
            return self._loop(region, k, info)
        if isinstance(region, TryRegion):
            return self._try(region, k, info)
        if isinstance(region, OpaqueRegion):
            return UNKNOWN
        if isinstance(region, SeqRegion):
            return self._seq(region.parts, k, info)
        return UNKNOWN

    def _branch(
        self, region: BranchRegion, k: Sum, info: FuncInfo
    ) -> Sum:
        st = self._seq(region.true.parts, k, info)
        sf = self._seq(region.false.parts, k, info)
        if _mentions_rank(region.test) and not info.has_agreement:
            self._check_divergence(region, st, sf)
        if st == sf:
            return st
        prefix = _common_prefix(st.events, sf.events)
        return Sum(events=prefix, complete=False, exit=None)

    def _loop(
        self, region: LoopRegion, k: Sum, info: FuncInfo
    ) -> Sum:
        body = self._seq(region.body.parts, EMPTY, info)
        rest = self._seq(region.orelse.parts, k, info)
        if not body.events and body.complete and body.exit is None:
            return rest
        if (
            region.control is not None
            and _mentions_rank(region.control)
            and not info.has_agreement
        ):
            # Rank-dependent trip count around a call-hidden
            # collective: the ranks disagree on how many times the
            # collective runs.
            for ev in body.events:
                if ev.via:
                    self._report_pd210(
                        ev.line,
                        f"collective {ev.describe()} runs inside a "
                        f"loop whose trip count depends on a thread "
                        f"rank (line {region.line}): ranks execute "
                        f"it a different number of times and the "
                        f"collective sequences diverge",
                    )
                    break
        if not body.complete or body.exit is not None:
            return Sum(events=(), complete=False, exit=None)
        loop_event = Event(
            name="<loop>", line=region.line, body=body.keys()
        )
        return Sum(
            events=(loop_event,) + rest.events,
            complete=rest.complete,
            exit=rest.exit,
        )

    def _try(
        self, region: TryRegion, k: Sum, info: FuncInfo
    ) -> Sum:
        for handler in region.handlers:
            self._check_handler(handler, info)
        return self._seq(
            region.body.parts,
            self._seq(
                region.orelse.parts,
                self._seq(region.final.parts, k, info),
                info,
            ),
            info,
        )

    # -- rule reporting -----------------------------------------------------

    def _check_handler(
        self, handler: SeqRegion, info: FuncInfo
    ) -> None:
        if info.has_agreement:
            return
        for call in _calls_in_region(handler):
            if _call_name(call) in AGREEMENT_CALLS:
                return  # handler reconciles before anything else
        summary = self._seq(handler.parts, EMPTY, info)
        for ev in summary.events:
            self._report(
                "PD211",
                ev.line,
                f"collective {ev.describe()} runs on an exception "
                f"path: only the ranks whose attempt raised reach "
                f"this handler, so a subset of the group issues the "
                f"collective and every rank deadlocks",
                "reconcile the handler first with "
                "repro.ft.agreement.agree/agree_failure so all "
                "ranks converge on one outcome, or hoist the "
                "collective out of the except block",
            )
            return

    def _check_divergence(
        self, region: BranchRegion, st: Sum, sf: Sum
    ) -> None:
        kt, kf = st.keys(), sf.keys()
        if kt == kf:
            return
        prefix = len(_common_prefix_keys(kt, kf))
        if prefix == len(kt) or prefix == len(kf):
            # One side is a proper prefix of the other: divergence is
            # provable only when the shorter side truly ends there.
            short, long_ = (st, sf) if len(kt) < len(kf) else (sf, st)
            if not short.complete:
                return
            skipped = long_.events[prefix]
            # PD212 only for a genuine early exit: the short side
            # leaves at a statement the long side does not share
            # (equal exits mean both arms rejoin at the function's
            # final return), and it leaves *before* the collective
            # it skips.
            if (
                short.exit is not None
                and short.exit != long_.exit
                and short.exit[1] <= skipped.line
            ):
                kind, line = short.exit
                self._report(
                    "PD212",
                    line,
                    f"rank-guarded early {kind} (guard at line "
                    f"{region.line}) skips collective "
                    f"{skipped.describe()}: the ranks that leave "
                    f"here never issue it, the rest block in it "
                    f"forever",
                    "restructure so every rank reaches the "
                    "collective (compute the guarded result into a "
                    "variable instead of returning), or reconcile "
                    "the divergence with repro.ft.agreement",
                )
                return
            if skipped.via:
                self._report_pd210(
                    skipped.line,
                    f"collective {skipped.describe()} is reached "
                    f"only on one side of the rank test at line "
                    f"{region.line}: the other ranks never issue "
                    f"it and the group deadlocks",
                )
            return
        # The sides disagree at collective point ``prefix`` itself.
        ev_t = st.events[prefix] if prefix < len(st.events) else None
        ev_f = sf.events[prefix] if prefix < len(sf.events) else None
        anchor = next(
            (e for e in (ev_t, ev_f) if e is not None and e.via),
            None,
        )
        if anchor is None:
            return  # direct collectives under the guard: PD201's job
        other = ev_f if anchor is ev_t else ev_t
        self._report_pd210(
            anchor.line,
            f"the rank test at line {region.line} splits the "
            f"collective sequence: one side issues "
            f"{anchor.describe()} where the other issues "
            + (other.describe() if other else "no collective")
            + ", so the ranks cross-match different collectives",
        )

    def _report_pd210(self, line: int, message: str) -> None:
        self._report(
            "PD210",
            line,
            message,
            "issue the same collective sequence on every rank "
            "(hoist the call out of the rank-dependent region), or "
            "reconcile deliberately with "
            "repro.ft.agreement.agree/agree_failure",
        )

    def _report(
        self, rule_id: str, line: int, message: str, hint: str
    ) -> None:
        if (rule_id, line) in self._reported:
            return
        self._reported.add((rule_id, line))
        from repro.lint.rules import RULES

        rule = RULES[rule_id]
        self.out.append(
            Diagnostic(
                rule=rule.id,
                name=rule.name,
                severity=rule.severity,
                file=self.path,
                line=line,
                message=message,
                hint=hint,
            )
        )


def _common_prefix(
    a: tuple[Event, ...], b: tuple[Event, ...]
) -> tuple[Event, ...]:
    out = []
    for ea, eb in zip(a, b):
        if ea.key != eb.key:
            break
        out.append(ea)
    return tuple(out)


def _common_prefix_keys(a: tuple, b: tuple) -> tuple:
    out = []
    for ka, kb in zip(a, b):
        if ka != kb:
            break
        out.append(ka)
    return tuple(out)


def _calls_in_region(region: Region) -> list[ast.Call]:
    """Every call evaluated by the region's own statements."""
    calls: list[ast.Call] = []
    stack: list[Region] = [region]
    while stack:
        node = stack.pop()
        if isinstance(node, (StmtRegion, OpaqueRegion)):
            calls.extend(_calls_in(node.stmt))
        elif isinstance(node, ExitRegion):
            if node.stmt is not None:
                calls.extend(_calls_in(node.stmt))
        elif isinstance(node, SeqRegion):
            stack.extend(node.parts)
        elif isinstance(node, BranchRegion):
            stack.append(node.true)
            stack.append(node.false)
        elif isinstance(node, LoopRegion):
            stack.append(node.body)
            stack.append(node.orelse)
        elif isinstance(node, TryRegion):
            stack.append(node.body)
            stack.extend(node.handlers)
            stack.append(node.orelse)
            stack.append(node.final)
    return calls


def analyze_flow(tree: ast.Module, path: str) -> list[Diagnostic]:
    """Run the interprocedural collective-flow rules on a module."""
    return FlowAnalyzer(tree, path).run()
