"""SARIF 2.1.0 rendering for lint diagnostics.

``repro-lint --format sarif`` emits the Static Analysis Results
Interchange Format so CI systems (notably GitHub code scanning) can
render findings as inline annotations.  One run, one tool
(``repro-lint``), one result per diagnostic; the rule catalogue
entries referenced by the results are embedded in the tool driver so
the file is self-describing.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import RULES

#: SARIF levels by diagnostic severity.
_LEVELS = {"error": "error", "warning": "warning"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptor(rule_id: str) -> dict:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(diagnostic: Diagnostic, rule_index: int) -> dict:
    message = diagnostic.message
    if diagnostic.hint:
        message = f"{message}. Hint: {diagnostic.hint}"
    region: dict = {"startLine": max(1, diagnostic.line)}
    column = getattr(diagnostic, "column", None)
    if column:
        region["startColumn"] = column
    return {
        "ruleId": diagnostic.rule,
        "ruleIndex": rule_index,
        "level": _LEVELS.get(diagnostic.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": diagnostic.file.replace("\\", "/"),
                    },
                    "region": region,
                }
            }
        ],
    }


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """The diagnostics as a SARIF 2.1.0 log (a JSON string)."""
    diagnostics = list(diagnostics)
    rule_ids = sorted({d.rule for d in diagnostics})
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/pardis-repro/repro"
                        ),
                        "rules": [
                            _rule_descriptor(rule_id)
                            for rule_id in rule_ids
                        ],
                    }
                },
                "results": [
                    _result(d, rule_index[d.rule])
                    for d in diagnostics
                ],
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
