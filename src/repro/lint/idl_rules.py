"""Family A: semantic lints over PARDIS IDL (rules PD100–PD107).

These run on the parse AST, ahead of (and more tolerantly than) the
semantic pass: a file with several problems yields several
diagnostics rather than one raised exception.  The full semantic
analyzer runs last so anything it rejects that the AST walks missed
still surfaces, as PD100.
"""

from __future__ import annotations

from typing import Iterator

from repro.idl import ast, parser, semantics
from repro.idl.errors import IdlError, IdlSyntaxError
from repro.lint.diagnostics import Diagnostic, sort_key
from repro.lint.rules import RULES
from repro.lint.suppress import is_suppressed, suppression_map

#: Element types a dsequence may carry — exactly the fixed-width
#: numerics the CDR layer can scatter (TypeCodes with a dtype).
FIXED_WIDTH_NUMERICS = frozenset(
    (
        "short",
        "ushort",
        "long",
        "ulong",
        "longlong",
        "ulonglong",
        "float",
        "double",
        "boolean",
        "octet",
    )
)

_Scope = tuple[str, ...]


def _diag(
    rule_id: str, path: str, line: int, message: str, hint: str = ""
) -> Diagnostic:
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule.id,
        name=rule.name,
        severity=rule.severity,
        file=path,
        line=line,
        message=message,
        hint=hint,
    )


class _Symbols:
    """A flat view of every named declaration, with scoped lookup."""

    def __init__(self, spec: ast.Specification):
        #: qualified name -> declaration node
        self.table: dict[_Scope, ast.Declaration] = {}
        self._walk(spec.body, ())

    def _walk(self, decls: list, scope: _Scope) -> None:
        for decl in decls:
            qualified = scope + (decl.name,)
            self.table.setdefault(qualified, decl)
            if isinstance(decl, (ast.Module, ast.Interface)):
                self._walk(decl.body, qualified)
            if isinstance(decl, ast.Interface):
                # The definition wins over any earlier forward decl.
                self.table[qualified] = decl
            if isinstance(decl, ast.Enum):
                for member in decl.members:
                    self.table.setdefault(scope + (member,), decl)

    def lookup(
        self, parts: tuple[str, ...], scope: _Scope
    ) -> tuple[_Scope, ast.Declaration] | None:
        """Resolve ``parts`` seen from ``scope``, innermost first."""
        for depth in range(len(scope), -1, -1):
            qualified = scope[:depth] + parts
            node = self.table.get(qualified)
            if node is not None:
                return qualified, node
        return None

    def resolve_type(
        self, expr: ast.TypeExpr, scope: _Scope
    ) -> object:
        """Chase typedef links to the underlying type expression.

        Returns the final :class:`ast.TypeExpr`, or the declaration
        node for references to interfaces/structs/enums/…, or ``None``
        when the chain cannot be resolved.
        """
        seen: set[_Scope] = set()
        while isinstance(expr, ast.NamedType):
            hit = self.lookup(expr.parts, scope)
            if hit is None:
                return None
            qualified, node = hit
            if qualified in seen:
                return None  # typedef cycle; semantics will reject it
            seen.add(qualified)
            if isinstance(node, ast.Typedef) and not node.array_dims:
                expr = node.type
                scope = qualified[:-1]
                continue
            return node
        return expr


def _iter_decls(
    decls: list, scope: _Scope
) -> Iterator[tuple[_Scope, ast.Declaration]]:
    for decl in decls:
        yield scope, decl
        if isinstance(decl, (ast.Module, ast.Interface)):
            yield from _iter_decls(decl.body, scope + (decl.name,))


def _iter_types(
    spec: ast.Specification,
) -> Iterator[tuple[_Scope, ast.TypeExpr, int]]:
    """Every type-expression occurrence: (scope, expr, source line)."""

    def expand(
        expr: ast.TypeExpr, scope: _Scope, line: int
    ) -> Iterator[tuple[_Scope, ast.TypeExpr, int]]:
        if expr is None:
            return
        if isinstance(expr, ast.NamedType) and expr.line:
            line = expr.line
        yield scope, expr, line
        if isinstance(expr, (ast.SequenceType, ast.DSequenceType)):
            yield from expand(expr.element, scope, line)

    for scope, decl in _iter_decls(spec.body, ()):
        if isinstance(decl, ast.Typedef):
            yield from expand(decl.type, scope, decl.line)
        elif isinstance(decl, (ast.Struct, ast.ExceptionDecl)):
            for member in decl.members:
                yield from expand(
                    member.type, scope, member.line or decl.line
                )
        elif isinstance(decl, ast.UnionDecl):
            yield from expand(decl.discriminator, scope, decl.line)
            for case in decl.cases:
                yield from expand(
                    case.type, scope, case.line or decl.line
                )
        elif isinstance(decl, ast.Const):
            yield from expand(decl.type, scope, decl.line)
        elif isinstance(decl, ast.Attribute):
            yield from expand(decl.type, scope, decl.line)
        elif isinstance(decl, ast.Operation):
            yield from expand(decl.return_type, scope, decl.line)
            for param in decl.params:
                yield from expand(
                    param.type, scope, param.line or decl.line
                )
            for exc in decl.raises:
                yield from expand(exc, scope, decl.line)


def _is_void(expr: ast.TypeExpr) -> bool:
    return isinstance(expr, ast.BasicType) and expr.name == "void"


def _type_text(expr: ast.TypeExpr) -> str:
    if isinstance(expr, ast.BasicType):
        return expr.name
    if isinstance(expr, ast.NamedType):
        return expr.text
    if isinstance(expr, ast.StringType):
        return "string"
    if isinstance(expr, ast.SequenceType):
        return f"sequence<{_type_text(expr.element)}>"
    if isinstance(expr, ast.DSequenceType):
        return f"dsequence<{_type_text(expr.element)}>"
    return type(expr).__name__


# ---------------------------------------------------------------------------
# The individual checks
# ---------------------------------------------------------------------------


def _check_operations(
    spec: ast.Specification, symbols: _Symbols, path: str
) -> list[Diagnostic]:
    """PD101 (unbounded dsequence in signatures), PD103 (mixed
    distributed/plain outs), PD106 (undeclared raises), PD107
    (oneway constraints)."""
    out: list[Diagnostic] = []
    for scope, decl in _iter_decls(spec.body, ()):
        if not isinstance(decl, ast.Operation):
            continue
        op = decl

        def resolved(expr: ast.TypeExpr) -> object:
            return symbols.resolve_type(expr, scope)

        # --- PD101: unbounded dsequence anywhere in the signature.
        signature = [(op.return_type, "result", op.line)] + [
            (p.type, f"parameter '{p.name}'", p.line or op.line)
            for p in op.params
        ]
        for expr, role, line in signature:
            target = resolved(expr)
            if (
                isinstance(target, ast.DSequenceType)
                and target.bound is None
            ):
                element = _type_text(target.element)
                out.append(
                    _diag(
                        "PD101",
                        path,
                        line,
                        f"operation '{op.name}' {role} is an "
                        f"unbounded dsequence",
                        f"declare a bound, e.g. "
                        f"dsequence<{element}, 1024>, so the "
                        f"run-time system can preallocate "
                        f"transfer buffers",
                    )
                )

        # --- PD103: mixed distributed / plain out parameters.
        outs = [
            p for p in op.params if p.direction in ("out", "inout")
        ]
        distributed = [
            p
            for p in outs
            if isinstance(resolved(p.type), ast.DSequenceType)
        ]
        if distributed and len(distributed) != len(outs):
            plain = next(
                p for p in outs if p not in distributed
            )
            out.append(
                _diag(
                    "PD103",
                    path,
                    op.line,
                    f"operation '{op.name}' mixes distributed "
                    f"({distributed[0].name}) and non-distributed "
                    f"({plain.name}) out parameters",
                    "split the operation, or return the scalar "
                    "result instead of passing it as out",
                )
            )

        # --- PD106: raises must name declared exceptions.
        for exc in op.raises:
            hit = symbols.lookup(exc.parts, scope)
            if hit is None:
                out.append(
                    _diag(
                        "PD106",
                        path,
                        exc.line or op.line,
                        f"operation '{op.name}' raises "
                        f"undeclared exception '{exc.text}'",
                        f"declare 'exception {exc.text} "
                        f"{{ ... }};' before the interface, or "
                        f"drop it from the raises clause",
                    )
                )
            elif not isinstance(hit[1], ast.ExceptionDecl):
                out.append(
                    _diag(
                        "PD106",
                        path,
                        exc.line or op.line,
                        f"operation '{op.name}' raises "
                        f"'{exc.text}', which is not an "
                        f"exception",
                        "raises clauses may only name "
                        "'exception' declarations",
                    )
                )

        # --- PD107: oneway constraints.
        if op.oneway:
            problems = []
            if not _is_void(op.return_type):
                problems.append(
                    f"returns {_type_text(op.return_type)}"
                )
            for p in op.params:
                if p.direction in ("out", "inout"):
                    problems.append(
                        f"has {p.direction} parameter '{p.name}'"
                    )
            if op.raises:
                problems.append("declares a raises clause")
            if problems:
                out.append(
                    _diag(
                        "PD107",
                        path,
                        op.line,
                        f"oneway operation '{op.name}' "
                        f"{'; '.join(problems)}",
                        "oneway requests carry no reply: make "
                        "the operation void with only in "
                        "parameters, or drop 'oneway'",
                    )
                )
    return out


def _check_dsequence_elements(
    spec: ast.Specification, symbols: _Symbols, path: str
) -> list[Diagnostic]:
    """PD102: every dsequence element must be fixed-width numeric."""
    out: list[Diagnostic] = []
    for scope, expr, line in _iter_types(spec):
        if not isinstance(expr, ast.DSequenceType):
            continue
        element = symbols.resolve_type(expr.element, scope)
        if (
            isinstance(element, ast.BasicType)
            and element.name in FIXED_WIDTH_NUMERICS
        ):
            continue
        if element is None:
            continue  # unresolved name: semantics reports it (PD100)
        shown = (
            _type_text(element)
            if isinstance(
                element,
                (
                    ast.BasicType,
                    ast.StringType,
                    ast.SequenceType,
                    ast.DSequenceType,
                ),
            )
            else f"{type(element).__name__.lower()} "
            f"'{element.name}'"
        )
        out.append(
            _diag(
                "PD102",
                path,
                line,
                f"dsequence element type {shown} is not a "
                f"fixed-width numeric",
                "use one of: "
                + ", ".join(sorted(FIXED_WIDTH_NUMERICS))
                + " (the transfer engine scatters raw fixed-width "
                "buffers)",
            )
        )
    return out


def _flatten_members(
    qualified: _Scope,
    symbols: _Symbols,
    memo: dict[_Scope, dict[str, set[_Scope]]],
    visiting: set[_Scope],
) -> dict[str, set[_Scope]]:
    """op/attribute name -> set of declaring interfaces, transitively."""
    if qualified in memo:
        return memo[qualified]
    if qualified in visiting:
        return {}  # inheritance cycle; semantics rejects it
    visiting.add(qualified)
    node = symbols.table.get(qualified)
    members: dict[str, set[_Scope]] = {}
    if isinstance(node, ast.Interface):
        for decl in node.body:
            if isinstance(decl, (ast.Operation, ast.Attribute)):
                members.setdefault(decl.name, set()).add(qualified)
        for base in node.bases:
            hit = symbols.lookup(base.parts, qualified[:-1])
            if hit is None or not isinstance(hit[1], ast.Interface):
                continue
            for name, origins in _flatten_members(
                hit[0], symbols, memo, visiting
            ).items():
                members.setdefault(name, set()).update(origins)
    visiting.discard(qualified)
    memo[qualified] = members
    return members


def _check_inheritance(
    spec: ast.Specification, symbols: _Symbols, path: str
) -> list[Diagnostic]:
    """PD104: flattened operation/attribute name collisions.

    Diamond inheritance of the *same* declaring interface is fine;
    two *distinct* declaring interfaces contributing one name is not.
    """
    out: list[Diagnostic] = []
    memo: dict[_Scope, dict[str, set[_Scope]]] = {}
    for qualified, node in symbols.table.items():
        if not isinstance(node, ast.Interface) or not node.bases:
            continue
        flattened = _flatten_members(qualified, symbols, memo, set())
        for name, origins in sorted(flattened.items()):
            if len(origins) < 2:
                continue
            names = ", ".join(
                "::".join(origin) for origin in sorted(origins)
            )
            out.append(
                _diag(
                    "PD104",
                    path,
                    node.line,
                    f"interface '{'::'.join(qualified)}' inherits "
                    f"colliding definitions of '{name}' "
                    f"(declared in {names})",
                    "rename one of the colliding members, or "
                    "introduce a shared base interface that "
                    "declares it once",
                )
            )
    return out


def _check_dead_typedefs(
    spec: ast.Specification,
    symbols: _Symbols,
    path: str,
    context_text: str,
) -> list[Diagnostic]:
    """PD105: typedefs never referenced from the unit (or from the
    surrounding python module, for embedded IDL)."""
    used: set[_Scope] = set()

    def note(parts: tuple[str, ...], scope: _Scope) -> None:
        hit = symbols.lookup(parts, scope)
        if hit is not None:
            used.add(hit[0])

    for scope, expr, _line in _iter_types(spec):
        if isinstance(expr, ast.NamedType):
            note(expr.parts, scope)
    # Constant expressions may reference enum members/consts, which
    # share the table; count those as uses too.
    for scope, decl in _iter_decls(spec.body, ()):
        if isinstance(decl, ast.Interface):
            for base in decl.bases:
                note(base.parts, scope)

    out: list[Diagnostic] = []
    for qualified, node in symbols.table.items():
        if not isinstance(node, ast.Typedef):
            continue
        if qualified in used:
            continue
        if context_text and node.name in context_text:
            continue  # referenced from the host python module
        out.append(
            _diag(
                "PD105",
                path,
                node.line,
                f"typedef '{'::'.join(qualified)}' is never "
                f"referenced",
                "delete the typedef, or use it in an operation "
                "signature",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_idl_source(
    source: str,
    path: str = "<idl>",
    *,
    line_offset: int = 0,
    context_text: str = "",
) -> list[Diagnostic]:
    """Run every family-A rule over one IDL translation unit.

    ``line_offset`` shifts reported lines for IDL embedded in a
    python string literal; ``context_text`` is the surrounding
    python source, consulted before declaring a typedef dead.
    """
    suppressed = suppression_map(source)
    try:
        spec = parser.parse(source)
    except IdlSyntaxError as exc:
        diag = _diag(
            "PD100",
            path,
            exc.line or 1,
            f"IDL syntax error: {exc.args[0]}",
            "fix the syntax; no other checks ran",
        )
        return [diag.shifted(line_offset)]

    symbols = _Symbols(spec)
    diagnostics: list[Diagnostic] = []
    diagnostics += _check_operations(spec, symbols, path)
    diagnostics += _check_dsequence_elements(spec, symbols, path)
    diagnostics += _check_inheritance(spec, symbols, path)
    diagnostics += _check_dead_typedefs(
        spec, symbols, path, context_text
    )

    # The full semantic pass catches what the AST walks above do not
    # (duplicate declarations, bad const expressions, …).  Skip it
    # when an error-level diagnostic already exists: analyze() would
    # just re-reject the same code with a less specific message.
    if not any(d.severity == "error" for d in diagnostics):
        try:
            semantics.analyze(spec)
        except IdlError as exc:
            diagnostics.append(
                _diag(
                    "PD100",
                    path,
                    getattr(exc, "line", None) or 1,
                    f"IDL semantic error: {exc.args[0]}",
                )
            )

    diagnostics = [
        d
        for d in diagnostics
        if not is_suppressed(suppressed, d.line, d.rule)
    ]
    diagnostics.sort(key=sort_key)
    return [d.shifted(line_offset) for d in diagnostics]
