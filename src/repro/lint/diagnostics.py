"""Diagnostic records and rendering for ``repro.lint``.

A :class:`Diagnostic` is one finding: a rule id, a severity, a source
location, a human message and a fix-hint.  The CLI renders lists of
them as text or JSON; both forms carry the same fields.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Ranked severities; anything reported fails the lint run.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, pinned to a source location."""

    rule: str  # 'PD101'
    name: str  # 'unbounded-dsequence'
    severity: str  # 'error' | 'warning'
    file: str
    line: int
    message: str
    hint: str = ""
    column: int = field(default=0, compare=False)

    def shifted(self, line_offset: int) -> "Diagnostic":
        """The same diagnostic ``line_offset`` lines further down —
        used to map embedded-IDL positions onto the host file."""
        if not line_offset:
            return self
        return Diagnostic(
            rule=self.rule,
            name=self.name,
            severity=self.severity,
            file=self.file,
            line=self.line + line_offset,
            message=self.message,
            hint=self.hint,
            column=self.column,
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        text = (
            f"{self.file}:{self.line}: {self.rule} "
            f"[{self.severity}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def sort_key(diagnostic: Diagnostic) -> tuple:
    return (diagnostic.file, diagnostic.line, diagnostic.rule)


def render_text(diagnostics: list[Diagnostic]) -> str:
    lines = [d.render() for d in diagnostics]
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    lines.append(
        f"{len(diagnostics)} diagnostic(s): {errors} error(s), "
        f"{warnings} warning(s)"
        if diagnostics
        else "clean: no diagnostics"
    )
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    return json.dumps(
        [d.to_dict() for d in diagnostics], indent=2, sort_keys=False
    )
