"""Family B: SPMD collective-correctness lints (rules PD200–PD208).

These analyse client/server *programs* with python's :mod:`ast`
module.  The paper's SPMD object model makes certain shapes of code
statically wrong: a collective request must be issued by every
computing thread (§2), and the transfer method negotiated at bind
time must exist on the server side (§3).  Futures (§4) add the usual
asynchrony lints: results that are never touched, and touches that
serialise what should overlap.

Python modules may also embed IDL (see :mod:`repro.lint.embedded`);
every embedded literal is linted with family A and the diagnostics
are mapped back onto the host file's line numbers.
"""

from __future__ import annotations

import ast

from repro.core.spmd import TransferMethod
from repro.lint.diagnostics import Diagnostic, sort_key
from repro.lint.embedded import (
    context_without_idl,
    find_embedded_idl,
)
from repro.lint.idl_rules import lint_idl_source
from repro.lint.rules import RULES
from repro.lint.suppress import is_suppressed, suppression_map

#: Collective entry points: every computing thread must reach these.
#: Low-level primitives (bcast/barrier/send/recv) are deliberately
#: excluded — run-time-system internals legitimately branch on rank
#: around them.
COLLECTIVE_CALLS = frozenset(
    ("_spmd_bind", "invoke_all", "redistribute", "synchronize")
)

#: Names that (almost always) hold a computing-thread rank.
RANK_TOKENS = frozenset(("rank", "my_rank", "thread_rank"))

#: Names that mark a loop as iterating over the thread group.
RANK_ITER_TOKENS = frozenset(
    ("size", "nthreads", "nranks", "ranks")
)

#: Blocking consumption methods of a future (``wait`` is excluded:
#: ``threading.Event.wait`` would alias it).
TOUCH_METHODS = frozenset(("touch", "value", "result"))

#: The collective failure-agreement entry points
#: (:mod:`repro.ft.agreement`).  Their presence inside a rank-guarded
#: region marks the divergence as deliberate and reconciled.
AGREEMENT_CALLS = frozenset(
    ("agree", "agree_failure", "agree_outcome")
)


def _diag(
    rule_id: str, path: str, line: int, message: str, hint: str = ""
) -> Diagnostic:
    rule = RULES[rule_id]
    return Diagnostic(
        rule=rule.id,
        name=rule.name,
        severity=rule.severity,
        file=path,
        line=line,
        message=message,
        hint=hint,
    )


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _mentions(tree: ast.AST, tokens: frozenset[str]) -> bool:
    """Does any Name/Attribute in ``tree`` spell one of ``tokens``?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in tokens:
            return True
        if isinstance(node, ast.Attribute) and node.attr in tokens:
            return True
    return False


# ---------------------------------------------------------------------------
# PD201: collective invocations under a rank guard
# ---------------------------------------------------------------------------


class _RankGuardVisitor(ast.NodeVisitor):
    """Find collective calls control-dependent on a rank test.

    A guard stack tracks enclosing ``if``/``while`` tests that
    mention a rank name.  The stack resets at function boundaries:
    a nested function body runs in whatever context *calls* it, so
    the lexical guard does not imply divergent execution.
    """

    def __init__(self, path: str):
        self.path = path
        self.out: list[Diagnostic] = []
        self._guards: list[int] = []  # lines of active rank guards

    def _visit_guarded(self, node: ast.If | ast.While) -> None:
        guarded = _mentions(node.test, RANK_TOKENS)
        if guarded:
            self._guards.append(node.test.lineno)
        for child in node.body + node.orelse:
            self.visit(child)
        if guarded:
            self._guards.pop()

    visit_If = _visit_guarded
    visit_While = _visit_guarded

    def _visit_function(self, node: ast.AST) -> None:
        saved, self._guards = self._guards, []
        self.generic_visit(node)
        self._guards = saved

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in COLLECTIVE_CALLS and self._guards:
            self.out.append(
                _diag(
                    "PD201",
                    self.path,
                    node.lineno,
                    f"collective '{name}' is guarded by a rank "
                    f"test (line {self._guards[-1]}): threads "
                    f"that fail the test never join, and every "
                    f"thread deadlocks",
                    "hoist the collective out of the rank guard "
                    "so all computing threads issue it",
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# PD208: guarded proxy invocations without failure agreement
# ---------------------------------------------------------------------------


def _spmd_proxy_names(tree: ast.Module) -> set[str]:
    """Variable names assigned from a ``_spmd_bind(...)`` call."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _call_name(node.value) == "_spmd_bind"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _has_agreement(scope: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call)
        and _call_name(node) in AGREEMENT_CALLS
        for node in ast.walk(scope)
    )


class _UnagreedInvocationVisitor(ast.NodeVisitor):
    """Find proxy invocations under a rank guard with no agreement.

    PD201 catches the bind-level collective entry points; this rule
    covers *invocations* on a proxy that was collectively bound.
    Every method call on such a proxy is a collective request, so a
    rank-guarded call diverges the group — unless the enclosing
    function reconciles via the :mod:`repro.ft.agreement` API, in
    which case the divergence is deliberate (the sanctioned idiom:
    rank 0 probes a possibly-dead object inside the guard, then every
    rank votes with ``agree``/``agree_failure`` after it).
    """

    def __init__(self, path: str, proxies: set[str]):
        self.path = path
        self.proxies = proxies
        self.out: list[Diagnostic] = []
        self._guards: list[int] = []  # lines of active rank guards
        #: Does the current function (or module) scope contain an
        #: agreement call anywhere?
        self._agreed: list[bool] = []

    def visit_Module(self, node: ast.Module) -> None:
        self._agreed.append(_has_agreement(node))
        self.generic_visit(node)
        self._agreed.pop()

    def _visit_guarded(self, node: ast.If | ast.While) -> None:
        guarded = _mentions(node.test, RANK_TOKENS)
        if guarded:
            self._guards.append(node.test.lineno)
        for child in node.body + node.orelse:
            self.visit(child)
        if guarded:
            self._guards.pop()

    visit_If = _visit_guarded
    visit_While = _visit_guarded

    def _visit_function(self, node: ast.AST) -> None:
        saved, self._guards = self._guards, []
        self._agreed.append(_has_agreement(node))
        self.generic_visit(node)
        self._agreed.pop()
        self._guards = saved

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.proxies
            and self._guards
            and not (self._agreed and self._agreed[-1])
        ):
            self.out.append(
                _diag(
                    "PD208",
                    self.path,
                    node.lineno,
                    f"invocation '{func.value.id}.{func.attr}' on "
                    f"a collectively-bound proxy is guarded by a "
                    f"rank test (line {self._guards[-1]}) with "
                    f"no failure agreement: the guarded ranks and "
                    f"the rest diverge in the collective sequence",
                    "issue the invocation from every thread, or "
                    "reconcile the branch with "
                    "repro.ft.agreement.agree/agree_failure so "
                    "all ranks converge on one outcome",
                )
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# PD202: futures that are never consumed
# ---------------------------------------------------------------------------


def _is_nb_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and _call_name(node).endswith("_nb")
        and _call_name(node) != "_nb"
    )


def _own_statements(scope: ast.AST):
    """Statements belonging to ``scope`` itself, not to functions
    nested inside it."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        for field in ("body", "orelse", "finalbody", "handlers"):
            for child in getattr(node, field, []):
                if isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)
                else:
                    stack.append(child)


def _check_futures(
    tree: ast.Module, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    scopes = [tree] + [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        loads = {
            node.id
            for node in ast.walk(scope)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
        }
        for stmt in _own_statements(scope):
            if isinstance(stmt, ast.Expr) and _is_nb_call(
                stmt.value
            ):
                name = _call_name(stmt.value)
                out.append(
                    _diag(
                        "PD202",
                        path,
                        stmt.lineno,
                        f"future returned by '{name}' is "
                        f"discarded",
                        "assign the future and touch() it, or "
                        "call the blocking variant",
                    )
                )
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and _is_nb_call(stmt.value)
                and stmt.targets[0].id not in loads
            ):
                out.append(
                    _diag(
                        "PD202",
                        path,
                        stmt.lineno,
                        f"future '{stmt.targets[0].id}' from "
                        f"'{_call_name(stmt.value)}' is never "
                        f"consumed",
                        "touch() the future (or pass it on) so "
                        "completion and errors are observed",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# PD203: blocking touch inside a loop over ranks
# ---------------------------------------------------------------------------


def _check_touch_loops(
    tree: ast.Module, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not _mentions(node.iter, RANK_ITER_TOKENS):
            continue
        for inner in node.body:
            for call in ast.walk(inner):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in TOUCH_METHODS
                ):
                    out.append(
                        _diag(
                            "PD203",
                            path,
                            call.lineno,
                            f"blocking '{call.func.attr}()' "
                            f"inside a loop over ranks "
                            f"serialises the requests",
                            "issue every request first, "
                            "collect the futures, then touch "
                            "them in a second loop",
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# PD204/PD205: transfer-method checks
# ---------------------------------------------------------------------------


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _check_transfer(
    tree: ast.Module, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    # Pass 1: servant registrations that opt out of multiport.
    centralized_only: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "serve" or not node.args:
            continue
        target = node.args[0]
        if not (
            isinstance(target, ast.Constant)
            and isinstance(target.value, str)
        ):
            continue
        multiport = _keyword(node, "multiport")
        if (
            isinstance(multiport, ast.Constant)
            and multiport.value is False
        ):
            centralized_only[target.value] = node.lineno

    # Pass 2: bind sites.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        transfer = _keyword(node, "transfer")
        if transfer is None:
            continue
        if not (
            isinstance(transfer, ast.Constant)
            and isinstance(transfer.value, str)
        ):
            continue  # dynamic value: nothing to check statically
        if transfer.value not in TransferMethod.values():
            known = ", ".join(sorted(TransferMethod.values()))
            out.append(
                _diag(
                    "PD205",
                    path,
                    transfer.lineno,
                    f"unknown transfer method "
                    f"'{transfer.value}'",
                    f"valid transfer methods: {known}",
                )
            )
            continue
        if _call_name(node) != "_spmd_bind" or not node.args:
            continue
        bound = node.args[0]
        if not (
            isinstance(bound, ast.Constant)
            and isinstance(bound.value, str)
        ):
            continue
        if (
            transfer.value == "multiport"
            and bound.value in centralized_only
        ):
            out.append(
                _diag(
                    "PD204",
                    path,
                    node.lineno,
                    f"'{bound.value}' is served with "
                    f"multiport=False (line "
                    f"{centralized_only[bound.value]}) but "
                    f"bound with transfer='multiport'",
                    "serve with multiport=True, or bind with "
                    "transfer='centralized'",
                )
            )
    return out


# ---------------------------------------------------------------------------
# PD209: retries against a server without a reply cache
# ---------------------------------------------------------------------------


def _retry_policy(node: ast.expr) -> bool:
    """Is ``node`` an ``FtPolicy(...)`` call that provably enables
    retries (``max_retries`` a constant > 0)?"""
    if not (
        isinstance(node, ast.Call)
        and _call_name(node) == "FtPolicy"
    ):
        return False
    retries = _keyword(node, "max_retries")
    return (
        isinstance(retries, ast.Constant)
        and isinstance(retries.value, int)
        and not isinstance(retries.value, bool)
        and retries.value > 0
    )


def _check_retry_cache(
    tree: ast.Module, path: str
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    # Pass 1: served objects, and whether each has a reply cache.
    # A non-constant reply_cache_bytes is assumed to enable the
    # cache: only a provably absent/zero cache is worth reporting.
    uncached: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "serve" or not node.args:
            continue
        target = node.args[0]
        if not (
            isinstance(target, ast.Constant)
            and isinstance(target.value, str)
        ):
            continue
        cache = _keyword(node, "reply_cache_bytes")
        if cache is None or (
            isinstance(cache, ast.Constant)
            and isinstance(cache.value, int)
            and cache.value <= 0
        ):
            uncached[target.value] = node.lineno

    if not uncached:
        return out

    # Pass 2: names bound to retrying FtPolicy instances.
    retry_names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and _retry_policy(node.value)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    retry_names.add(target.id)

    # Pass 3: bind sites pairing a retry policy with an uncached
    # server.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) not in ("_bind", "_spmd_bind"):
            continue
        if not node.args:
            continue
        bound = node.args[0]
        if not (
            isinstance(bound, ast.Constant)
            and isinstance(bound.value, str)
            and bound.value in uncached
        ):
            continue
        policy = _keyword(node, "ft_policy")
        if policy is None:
            continue
        retrying = _retry_policy(policy) or (
            isinstance(policy, ast.Name)
            and policy.id in retry_names
        )
        if retrying:
            out.append(
                _diag(
                    "PD209",
                    path,
                    node.lineno,
                    f"'{bound.value}' is bound with a retrying "
                    f"FtPolicy but served without a reply cache "
                    f"(line {uncached[bound.value]}): a retry "
                    f"after a lost reply re-executes the request "
                    f"on the servant",
                    "serve with reply_cache_bytes > 0 so "
                    "duplicate requests are answered from the "
                    "cache, or set max_retries=0 for "
                    "non-idempotent interfaces",
                )
            )
    return out


# ---------------------------------------------------------------------------
# PD213: group bind without a retrying policy (failover disabled)
# ---------------------------------------------------------------------------


def _nonretry_policy(node: ast.expr) -> bool:
    """Is ``node`` an ``FtPolicy(...)`` call that *provably* leaves
    retries off (``max_retries`` absent — the default is 0 — or a
    constant <= 0)?"""
    if not (
        isinstance(node, ast.Call)
        and _call_name(node) == "FtPolicy"
    ):
        return False
    retries = _keyword(node, "max_retries")
    if retries is None:
        return True
    return (
        isinstance(retries, ast.Constant)
        and isinstance(retries.value, int)
        and not isinstance(retries.value, bool)
        and retries.value <= 0
    )


def _check_group_bind(tree: ast.Module, path: str) -> list[Diagnostic]:
    """Group bindings whose failover is provably disabled.

    Failover only engages under a retrying :class:`FtPolicy`; a
    ``_group_bind`` with no policy, or with one provably leaving
    ``max_retries`` at 0, fails fast on the first dead replica.  As
    with PD209, only provable misconfigurations are reported: a
    policy of unknown provenance is assumed intentional.
    """
    out: list[Diagnostic] = []
    retry_names: set[str] = set()
    nonretry_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if _retry_policy(node.value):
                    retry_names.add(target.id)
                elif _nonretry_policy(node.value):
                    nonretry_names.add(target.id)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "_group_bind" or not node.args:
            continue
        bound = node.args[0]
        name = (
            repr(bound.value)
            if isinstance(bound, ast.Constant)
            else "the group"
        )
        policy = _keyword(node, "ft_policy")
        if policy is None:
            detail = "without an ft_policy"
        elif _nonretry_policy(policy) or (
            isinstance(policy, ast.Name)
            and policy.id in nonretry_names
        ):
            detail = "with an FtPolicy that leaves max_retries at 0"
        else:
            continue
        out.append(
            _diag(
                "PD213",
                path,
                node.lineno,
                f"{name} is a replicated-group binding {detail}: "
                f"failover never engages, so the first dead "
                f"replica fails the client despite the standbys",
                "bind with ft_policy=FtPolicy(max_retries > 0) so "
                "exhausted retries fail over to a sibling replica "
                "(and serve replicas with reply_cache_bytes > 0 "
                "so the replay dedups)",
            )
        )
    return out


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_python_source(
    source: str, path: str = "<python>"
) -> list[Diagnostic]:
    """Run every family-B rule (plus family A on embedded IDL)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            _diag(
                "PD200",
                path,
                exc.lineno or 1,
                f"python syntax error: {exc.msg}",
                "fix the syntax; no other checks ran",
            )
        ]

    diagnostics: list[Diagnostic] = []
    guard = _RankGuardVisitor(path)
    guard.visit(tree)
    diagnostics += guard.out
    proxies = _spmd_proxy_names(tree)
    if proxies:
        unagreed = _UnagreedInvocationVisitor(path, proxies)
        unagreed.visit(tree)
        diagnostics += unagreed.out
    diagnostics += _check_futures(tree, path)
    diagnostics += _check_touch_loops(tree, path)
    diagnostics += _check_transfer(tree, path)
    diagnostics += _check_retry_cache(tree, path)
    diagnostics += _check_group_bind(tree, path)

    # The interprocedural collective-flow rules (PD210–PD212).
    # Imported lazily: repro.lint.flow shares the token sets above,
    # so a top-level import would be cyclic.
    from repro.lint.flow import analyze_flow

    diagnostics += analyze_flow(tree, path)

    literals = find_embedded_idl(tree)
    if literals:
        context = context_without_idl(source, literals)
        for literal in literals:
            diagnostics += lint_idl_source(
                literal.text,
                path,
                line_offset=literal.line_offset,
                context_text=context,
            )

    suppressed = suppression_map(source)
    diagnostics = [
        d
        for d in diagnostics
        if not is_suppressed(suppressed, d.line, d.rule)
    ]
    diagnostics.sort(key=sort_key)
    return diagnostics
