"""``python -m repro.lint`` / ``repro-lint`` — the lint driver.

Walks the given files and directories, runs family A on ``.idl``
files, family B (which includes family A on embedded IDL) on ``.py``
files, and renders the diagnostics as text or JSON.

Exit status: 0 clean, 1 diagnostics reported, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, Iterator

from repro.lint.diagnostics import (
    Diagnostic,
    render_json,
    render_text,
    sort_key,
)
from repro.lint.idl_rules import lint_idl_source
from repro.lint.rules import RULES, resolve_rule
from repro.lint.spmd_rules import lint_python_source

_SKIP_DIRS = frozenset(
    ("__pycache__", ".git", ".hypothesis", "build", "dist")
)


def iter_files(paths: Iterable[str]) -> Iterator[str]:
    """Lintable files under ``paths``, in a deterministic order."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d
                for d in dirs
                if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(files):
                if name.endswith((".py", ".idl")):
                    yield os.path.join(root, name)


def lint_file(path: str) -> list[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    if path.endswith(".idl"):
        return lint_idl_source(source, path)
    return lint_python_source(source, path)


def _rule_set(spec: str, option: str) -> frozenset[str]:
    """A ``--select``/``--ignore`` value as a set of rule ids."""
    ids = set()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        rule = resolve_rule(token)
        if rule is None:
            raise SystemExit(
                f"repro.lint: unknown rule {token!r} in {option} "
                f"(see --list-rules)"
            )
        ids.add(rule.id)
    return frozenset(ids)


def lint_paths(
    paths: Iterable[str],
    *,
    select: frozenset[str] | None = None,
    ignore: frozenset[str] = frozenset(),
) -> list[Diagnostic]:
    """Lint every file under ``paths`` and merge the diagnostics."""
    diagnostics: list[Diagnostic] = []
    for path in iter_files(paths):
        diagnostics.extend(lint_file(path))
    if select is not None:
        diagnostics = [d for d in diagnostics if d.rule in select]
    if ignore:
        diagnostics = [
            d for d in diagnostics if d.rule not in ignore
        ]
    diagnostics.sort(key=sort_key)
    return diagnostics


def _list_rules() -> str:
    lines = []
    for rule in RULES.values():
        lines.append(
            f"{rule.id}  {rule.name:28s} [{rule.severity}] "
            f"{rule.summary}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    cli = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "PARDIS static analysis: IDL semantic lints and SPMD "
            "collective-correctness checks"
        ),
    )
    cli.add_argument(
        "paths",
        nargs="*",
        help="files or directories (.py and .idl) to lint",
    )
    cli.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    cli.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/names to run exclusively",
    )
    cli.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids/names to skip",
    )
    cli.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = cli.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        cli.print_usage(sys.stderr)
        print(
            "repro.lint: at least one path is required",
            file=sys.stderr,
        )
        return 2
    for path in args.paths:
        if not os.path.exists(path):
            print(
                f"repro.lint: no such file or directory: {path}",
                file=sys.stderr,
            )
            return 2

    try:
        select = (
            _rule_set(args.select, "--select")
            if args.select
            else None
        )
        ignore = (
            _rule_set(args.ignore, "--ignore")
            if args.ignore
            else frozenset()
        )
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    diagnostics = lint_paths(
        args.paths, select=select, ignore=ignore
    )
    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        from repro.lint.sarif import render_sarif

        print(render_sarif(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if diagnostics else 0
