"""Finding IDL embedded in python modules.

The repo keeps its interface definitions in python string literals
handed to :func:`repro.idl.compiler.compile_idl` and friends rather
than in ``.idl`` files, so family-A lints must find those literals.
A string is treated as IDL only when it flows into one of the known
compiler entry points — either directly as an argument or via a
module-level name — which keeps docstrings that merely mention
``interface`` out of the lint.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Call targets whose first argument is IDL source text.
IDL_SINKS = frozenset(
    (
        "compile_idl",
        "compile_idl_module",
        "analyze_idl",
        "generate_python",
        "lint_idl_source",
    )
)


@dataclass(frozen=True)
class EmbeddedIdl:
    """One IDL literal found in a python module."""

    text: str
    lineno: int  # line the string literal starts on (1-based)

    @property
    def line_offset(self) -> int:
        """Shift mapping IDL line 1 onto the literal's first line."""
        return self.lineno - 1


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def find_embedded_idl(tree: ast.Module) -> list[EmbeddedIdl]:
    """Every IDL literal in ``tree``, in source order."""
    # Pass 1: string constants bound to simple names.
    assigned: dict[str, ast.Constant] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                assigned[target.id] = node.value

    # Pass 2: arguments reaching an IDL compiler entry point.
    found: dict[int, EmbeddedIdl] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if _call_name(node) not in IDL_SINKS:
            continue
        arg = node.args[0]
        constant: ast.Constant | None = None
        if isinstance(arg, ast.Constant) and isinstance(
            arg.value, str
        ):
            constant = arg
        elif isinstance(arg, ast.Name):
            constant = assigned.get(arg.id)
        if constant is None:
            continue
        found.setdefault(
            constant.lineno,
            EmbeddedIdl(text=constant.value, lineno=constant.lineno),
        )
    return [found[line] for line in sorted(found)]


def context_without_idl(
    source: str, literals: list[EmbeddedIdl]
) -> str:
    """The python source with the IDL text cut out — what the
    dead-typedef check greps for host-side uses of a typedef name."""
    for literal in literals:
        source = source.replace(literal.text, "")
    return source
