"""repro.lint — PARDIS static analysis.

Two rule families:

* **PD1xx** lint PARDIS IDL (``.idl`` files and IDL embedded in
  python string literals): distribution and signature rules the
  stub compiler itself does not enforce.
* **PD2xx** lint SPMD client/server programs with python's ``ast``
  module: collective-correctness and future-hygiene checks.

Run ``python -m repro.lint <paths>`` (or the ``repro-lint``
console script); see ``docs/lint.md`` for the rule catalogue.
"""

from repro.lint.cli import lint_file, lint_paths, main
from repro.lint.diagnostics import Diagnostic
from repro.lint.idl_rules import lint_idl_source
from repro.lint.rules import RULES, Rule, resolve_rule
from repro.lint.sarif import render_sarif
from repro.lint.spmd_rules import lint_python_source

__all__ = [
    "Diagnostic",
    "RULES",
    "Rule",
    "lint_file",
    "lint_idl_source",
    "lint_paths",
    "lint_python_source",
    "main",
    "render_sarif",
    "resolve_rule",
]
