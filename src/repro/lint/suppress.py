"""Inline suppression comments: ``# pardis-lint: disable=PD101``.

A trailing suppression comment silences matching diagnostics on its
own line; a comment alone on a line silences the next line.  Tokens
may be rule ids, rule names, or ``all``, separated by commas.  The
``//`` comment form is recognised too so the same syntax works inside
IDL source.
"""

from __future__ import annotations

import re

from repro.lint.rules import resolve_rule

_DIRECTIVE = re.compile(
    r"(?:#|//)\s*pardis-lint:\s*disable=([A-Za-z0-9_,\s-]+)"
)


def _tokens(raw: str) -> frozenset[str]:
    """Normalise a directive's token list to rule ids (or 'all')."""
    resolved: set[str] = set()
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if token.lower() == "all":
            resolved.add("all")
            continue
        rule = resolve_rule(token)
        resolved.add(rule.id if rule else token.upper())
    return frozenset(resolved)


def suppression_map(source: str) -> dict[int, frozenset[str]]:
    """1-based line → set of suppressed rule ids for ``source``."""
    suppressed: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if not match:
            continue
        rules = _tokens(match.group(1))
        if not rules:
            continue
        before = text[: match.start()].strip()
        # A standalone comment line guards the line below it; a
        # trailing comment guards its own line.
        target = lineno + 1 if before in ("", "#", "//") else lineno
        suppressed[target] = suppressed.get(target, frozenset()) | rules
    return suppressed


def is_suppressed(
    suppressed: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    rules = suppressed.get(line)
    return bool(rules) and ("all" in rules or rule_id in rules)
