"""The PARDIS public API: the ORB facade and SPMD object model.

Typical use::

    import numpy as np
    from repro import ORB, compile_idl

    idl = compile_idl('''
        typedef dsequence<double, 1024> diff_array;
        interface diff_object {
            void diffusion(in long timestep, inout diff_array darray);
        };
    ''')

    class DiffServant(idl.diff_object_skel):
        def diffusion(self, timestep, darray):
            local = darray.local_data()
            ...  # SPMD computation on the local block

    orb = ORB()
    orb.serve("example", lambda ctx: DiffServant(), nthreads=4)

    def client(client_ctx):
        diff = idl.diff_object._spmd_bind("example", client_ctx.runtime)
        seq = idl.diff_array.from_global(np.zeros(1024),
                                         comm=client_ctx.comm)
        diff.diffusion(64, seq)

    orb.run_spmd_client(2, client)
    orb.shutdown()
"""

from repro.core.orb import ORB, ClientContext, SpmdClientGroup
from repro.core.spmd import SpmdServerGroup, TransferMethod

__all__ = [
    "ClientContext",
    "ORB",
    "SpmdClientGroup",
    "SpmdServerGroup",
    "TransferMethod",
]
