"""The ORB facade: one object wiring fabric, naming, adapter, clients.

The paper's Figure 1 shows the PARDIS ORB between the client's and the
server's stub+package stacks, flanked by the two RTS interfaces.  This
class is that box: it owns the transport fabric and naming domain,
activates SPMD objects (server side) and mints per-thread client
runtimes (client side).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.spmd import SpmdServerGroup
from repro.orb.adapter import ObjectAdapter, Servant, ServantContext
from repro.orb.naming import NamingService
from repro.orb.proxy import ClientRuntime
from repro.orb.transfer import Tracer
from repro.orb.transport import Fabric
from repro.rts.executor import SpmdExecutor
from repro.rts.mpi import Intracomm


@dataclass
class ClientContext:
    """What a parallel client's thread function receives."""

    rank: int
    size: int
    comm: Intracomm | None
    runtime: ClientRuntime


class ORB:
    """The request broker instance.

    One ORB per "distributed system"; in this reproduction all
    components share a process, so the ORB's fabric is the network.
    """

    def __init__(
        self,
        name: str = "pardis",
        *,
        tracer: Tracer | None = None,
        timeout: float = 60.0,
        fabric: Any = None,
        naming: Any = None,
    ) -> None:
        """``fabric``/``naming`` default to the in-process transport
        and registry; pass a :class:`~repro.orb.socketnet.SocketFabric`
        and :class:`~repro.orb.socketnet.RemoteNamingClient` to join a
        multi-process deployment over TCP."""
        self.name = name
        self.fabric = fabric if fabric is not None else Fabric(name)
        self.naming = naming if naming is not None else NamingService()
        self.tracer = tracer
        self.timeout = timeout
        self._adapter = ObjectAdapter(self.fabric, self.naming)
        self._runtimes: list[ClientRuntime] = []
        self._lock = threading.Lock()
        self._shut = False

    # -- server side ---------------------------------------------------------

    def serve(
        self,
        name: str,
        servant_factory: Callable[[ServantContext], Servant],
        nthreads: int = 1,
        *,
        host: str = "",
        multiport: bool = True,
        templates: dict[tuple[str, str], Any] | None = None,
        rts_style: str = "message-passing",
        dispatch_workers: int = 4,
        dispatch_policy: str = "client-fifo",
    ) -> SpmdServerGroup:
        """Activate an SPMD object and register it with naming.

        ``servant_factory(ctx)`` runs once on every computing thread
        and returns that thread's servant instance.  ``templates``
        maps ``(operation, parameter)`` to the distribution template
        the servant registers for that distributed parameter (§2.2's
        pre-registration assignment); unlisted parameters default to
        uniform blockwise.  ``multiport=False`` activates an object
        that only advertises the single centralized connection.
        ``dispatch_workers`` bounds how many requests a *serial*
        (``nthreads == 1``) object executes concurrently; 1 restores
        strictly serial dispatch.  ``dispatch_policy`` picks the
        ordering contract: the default ``"client-fifo"`` runs one
        client's requests in send order (different clients overlap),
        ``"concurrent"`` drops cross-request ordering entirely — like
        a CORBA ORB-controlled-threads POA — so even a single
        pipelined client's requests overlap (for stateless or
        internally synchronized servants).  Collective objects ignore
        both.
        """
        group = SpmdServerGroup(
            self.fabric,
            self.naming,
            name,
            servant_factory,
            nthreads,
            host=host,
            multiport=multiport,
            templates=templates,
            tracer=self.tracer,
            rts_style=rts_style,
            dispatch_workers=dispatch_workers,
            dispatch_policy=dispatch_policy,
        )
        group.start()
        self._adapter._groups.append(group)
        return group

    # -- client side ---------------------------------------------------------

    def client_runtime(
        self,
        comm: Intracomm | None = None,
        *,
        label: str = "client",
        rts_style: str = "message-passing",
        pipeline_depth: int = 8,
    ) -> ClientRuntime:
        """Create the per-thread client runtime (collective when
        ``comm`` is a group communicator; serial when ``None``).

        ``rts_style`` selects the run-time-system interface the ORB
        uses for gathers/scatters: the paper's ``"message-passing"``
        or its planned ``"one-sided"`` alternative.  ``pipeline_depth``
        caps how many non-blocking invocations this runtime keeps in
        flight at once (1 restores strictly serial round-trips).
        """
        runtime = ClientRuntime(
            self.fabric,
            self.naming,
            comm,
            tracer=self.tracer,
            timeout=self.timeout,
            label=label,
            rts_style=rts_style,
            pipeline_depth=pipeline_depth,
        )
        with self._lock:
            self._runtimes.append(runtime)
        return runtime

    def run_spmd_client(
        self,
        nthreads: int,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "client",
        timeout: float = 120.0,
    ) -> list[Any]:
        """Run a parallel client: ``fn(client_ctx, *args)`` on each of
        ``nthreads`` threads, with a ready-made runtime per thread.

        The convenience wrapper for the common pattern in the paper's
        example: a parallel application that binds to an SPMD object
        and invokes it collectively.
        """

        def body(rank_ctx: Any) -> Any:
            comm = rank_ctx.comm if nthreads > 1 else None
            runtime = self.client_runtime(comm, label=name)
            try:
                return fn(
                    ClientContext(
                        rank=rank_ctx.rank,
                        size=nthreads,
                        comm=comm,
                        runtime=runtime,
                    ),
                    *args,
                )
            finally:
                runtime.close()

        return SpmdExecutor(nthreads, name=name).run(
            body, timeout=timeout
        )

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Deactivate all objects and release client resources."""
        if self._shut:
            return
        self._shut = True
        self._adapter.shutdown()
        with self._lock:
            runtimes, self._runtimes = self._runtimes, []
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "ORB":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


class SpmdClientGroup:
    """A persistent parallel client: the same thread group performing
    several collective interactions (created once, reused).

    Where :meth:`ORB.run_spmd_client` is fork-join per call, this
    keeps the group alive so examples/benchmarks can time repeated
    invocations without thread startup costs.
    """

    def __init__(self, orb: ORB, nthreads: int, name: str = "client") -> None:
        if nthreads <= 0:
            raise ValueError("a client group needs at least one thread")
        self.orb = orb
        self.nthreads = nthreads
        self.name = name
        self._executor = SpmdExecutor(nthreads, name=name)

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        timeout: float = 120.0,
    ) -> list[Any]:
        """One collective session: ``fn(client_ctx, *args)`` per thread."""

        def body(rank_ctx: Any) -> Any:
            comm = rank_ctx.comm if self.nthreads > 1 else None
            runtime = self.orb.client_runtime(comm, label=self.name)
            try:
                return fn(
                    ClientContext(
                        rank=rank_ctx.rank,
                        size=self.nthreads,
                        comm=comm,
                        runtime=runtime,
                    ),
                    *args,
                )
            finally:
                runtime.close()

        return self._executor.run(body, timeout=timeout)
