"""The ORB facade: one object wiring fabric, naming, adapter, clients.

The paper's Figure 1 shows the PARDIS ORB between the client's and the
server's stub+package stacks, flanked by the two RTS interfaces.  This
class is that box: it owns the transport fabric and naming domain,
activates SPMD objects (server side) and mints per-thread client
runtimes (client side).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.cdr.accounting import (
    CopyAccount,
    register_account,
    unregister_account,
)
import repro.groups.stats as groups_stats
import repro.san as san
from repro.core.spmd import SpmdServerGroup
from repro.dist.schedule import schedule_cache_stats
from repro.orb.adapter import ObjectAdapter, Servant, ServantContext
from repro.orb.naming import NamingService
from repro.orb.proxy import ClientRuntime
from repro.orb.transfer import Tracer
from repro.orb.transport import Fabric
from repro.rts import backends as rts_backends
from repro.rts.executor import SpmdExecutor
from repro.rts.mpi import Intracomm
from repro.trace import TraceRecorder


@dataclass
class ClientContext:
    """What a parallel client's thread function receives."""

    rank: int
    size: int
    comm: Intracomm | None
    runtime: ClientRuntime


class ORB:
    """The request broker instance.

    One ORB per "distributed system"; in this reproduction all
    components share a process, so the ORB's fabric is the network.
    """

    def __init__(
        self,
        name: str = "pardis",
        *,
        tracer: Tracer | None = None,
        timeout: float = 60.0,
        fabric: Any = None,
        naming: Any = None,
        ft_policy: Any = None,
        trace: Any = None,
        sanitize: bool | None = None,
    ) -> None:
        """``fabric``/``naming`` default to the in-process transport
        and registry; pass a :class:`~repro.orb.socketnet.SocketFabric`
        and :class:`~repro.orb.socketnet.RemoteNamingClient` to join a
        multi-process deployment over TCP.  ``ft_policy`` is the
        ORB-wide default :class:`~repro.ft.policy.FtPolicy` applied by
        every client runtime this ORB mints (per-runtime and per-proxy
        policies override it).  ``trace`` turns on collective-aware
        tracing (:mod:`repro.trace`): pass ``True`` for a fresh
        :class:`~repro.trace.TraceRecorder` (exposed as
        :attr:`trace`), or an existing recorder to share one across
        ORBs; ``None`` (the default) keeps tracing off with no
        per-invocation cost.  ``sanitize`` turns on the runtime
        sanitizer (:mod:`repro.san`) for every client runtime this
        ORB mints — collective-alignment checks and future-lifecycle
        tracking; ``None`` (the default) defers to the ``PARDIS_SAN``
        environment variable.  See ``docs/sanitizer.md``."""
        self.name = name
        self.fabric = fabric if fabric is not None else Fabric(name)
        self.naming = naming if naming is not None else NamingService()
        self.tracer = tracer
        self.timeout = timeout
        self.ft_policy = ft_policy
        #: Runtime-sanitizer switch (None defers to ``PARDIS_SAN``);
        #: resolved once here so every runtime this ORB mints agrees.
        self.sanitize = (
            san.enabled() if sanitize is None else bool(sanitize)
        )
        #: The repro.trace recorder shared by every runtime and servant
        #: group this ORB creates (None = tracing off).
        # Identity tests, not truthiness: an *empty* recorder is falsy
        # (``__len__``) but still means tracing is on.
        if trace is True:
            self.trace: TraceRecorder | None = TraceRecorder()
        elif trace is False or trace is None:
            self.trace = None
        else:
            self.trace = trace
        self._adapter = ObjectAdapter(self.fabric, self.naming)
        self._runtimes: list[ClientRuntime] = []
        self._lock = threading.Lock()
        self._shut = False
        #: Lifetime wire-path copy tally behind :meth:`stats`.
        self._copy_account = CopyAccount()
        register_account(self._copy_account)
        self._fabric_meter: Any = None
        governor = getattr(self.fabric, "governor", None)
        if governor is not None and self.trace is not None:
            governor.attach_metrics(self.trace.metrics)
            governor.attach_trace(self.trace)
        if self.trace is not None:
            # Fold the ORB's own snapshot into the registry so
            # ``orb.trace.metrics.snapshot()`` is the one-stop view;
            # ``stats()`` asks for counters/histograms only
            # (include_sources=False), so the two never recurse.
            self.trace.metrics.register_source(f"orb.{name}", self.stats)
            add_meter = getattr(self.fabric, "add_meter", None)
            if callable(add_meter):
                self._fabric_meter = self.trace.fabric_meter()
                add_meter(self._fabric_meter)

    # -- server side ---------------------------------------------------------

    def serve(
        self,
        name: str,
        servant_factory: Callable[[ServantContext], Servant],
        nthreads: int = 1,
        *,
        host: str = "",
        multiport: bool = True,
        templates: dict[tuple[str, str], Any] | None = None,
        rts_style: str = "message-passing",
        dispatch_workers: int = 4,
        dispatch_policy: str = "client-fifo",
        reply_cache_bytes: int = 0,
        request_timeout: float | None = None,
    ) -> SpmdServerGroup:
        """Activate an SPMD object and register it with naming.

        ``servant_factory(ctx)`` runs once on every computing thread
        and returns that thread's servant instance.  ``templates``
        maps ``(operation, parameter)`` to the distribution template
        the servant registers for that distributed parameter (§2.2's
        pre-registration assignment); unlisted parameters default to
        uniform blockwise.  ``multiport=False`` activates an object
        that only advertises the single centralized connection.
        ``dispatch_workers`` bounds how many requests a *serial*
        (``nthreads == 1``) object executes concurrently; 1 restores
        strictly serial dispatch.  ``dispatch_policy`` picks the
        ordering contract: the default ``"client-fifo"`` runs one
        client's requests in send order (different clients overlap),
        ``"concurrent"`` drops cross-request ordering entirely — like
        a CORBA ORB-controlled-threads POA — so even a single
        pipelined client's requests overlap (for stateless or
        internally synchronized servants).  Collective objects ignore
        both.  ``reply_cache_bytes`` enables server-side request dedup
        for client retries: a positive byte budget records sent
        replies so a retried request whose reply was lost is answered
        from the cache instead of re-executed (see
        :mod:`repro.ft.dedup`; lint rule PD209 flags retrying
        clients of a cache-less server).  ``request_timeout`` bounds a
        dispatched request's server-side waits (chunk collection from
        a client whose data path died); ``None`` inherits the ORB
        timeout, so a short-deadline ORB also fails fast server-side.
        """
        group = SpmdServerGroup(
            self.fabric,
            self.naming,
            name,
            servant_factory,
            nthreads,
            host=host,
            multiport=multiport,
            templates=templates,
            tracer=self.tracer,
            trace=self.trace,
            rts_style=rts_style,
            dispatch_workers=dispatch_workers,
            dispatch_policy=dispatch_policy,
            reply_cache_bytes=reply_cache_bytes,
            request_timeout=(
                self.timeout if request_timeout is None else request_timeout
            ),
        )
        group.start()
        self._adapter._groups.append(group)
        return group

    def serve_replicated(
        self,
        name: str,
        servant_factory: Callable[[ServantContext], Servant],
        *,
        replicas: int = 3,
        nthreads: int = 1,
        **serve_kwargs: Any,
    ) -> Any:
        """Activate a *replicated object group*: ``replicas``
        independent activations of one servant behind one group name,
        registered with the group directory of this ORB's
        :class:`~repro.groups.shard.ShardedNaming` (required; see
        :func:`repro.groups.serve.serve_replicated` for details and
        the returned :class:`~repro.groups.serve.ReplicatedGroup`
        handle).  Clients bind with ``Proxy._group_bind`` and fail
        over between replicas under their
        :class:`~repro.ft.policy.FtPolicy`."""
        from repro.groups.serve import serve_replicated

        return serve_replicated(
            self,
            name,
            servant_factory,
            replicas=replicas,
            nthreads=nthreads,
            **serve_kwargs,
        )

    # -- client side ---------------------------------------------------------

    def client_runtime(
        self,
        comm: Intracomm | None = None,
        *,
        label: str = "client",
        rts_style: str = "message-passing",
        pipeline_depth: int = 8,
        ft_policy: Any = None,
    ) -> ClientRuntime:
        """Create the per-thread client runtime (collective when
        ``comm`` is a group communicator; serial when ``None``).

        ``rts_style`` selects the run-time-system interface the ORB
        uses for gathers/scatters: the paper's ``"message-passing"``
        or its planned ``"one-sided"`` alternative.  ``pipeline_depth``
        caps how many non-blocking invocations this runtime keeps in
        flight at once (1 restores strictly serial round-trips).
        ``ft_policy`` overrides the ORB-wide fault-tolerance policy
        for this runtime (``None`` inherits it).
        """
        runtime = ClientRuntime(
            self.fabric,
            self.naming,
            comm,
            tracer=self.tracer,
            trace=self.trace,
            timeout=self.timeout,
            label=label,
            rts_style=rts_style,
            pipeline_depth=pipeline_depth,
            ft_policy=ft_policy if ft_policy is not None else self.ft_policy,
            sanitize=self.sanitize,
        )
        with self._lock:
            self._runtimes.append(runtime)
        return runtime

    def run_spmd_client(
        self,
        nthreads: int,
        fn: Callable[..., Any],
        *args: Any,
        name: str = "client",
        timeout: float = 120.0,
    ) -> list[Any]:
        """Run a parallel client: ``fn(client_ctx, *args)`` on each of
        ``nthreads`` threads, with a ready-made runtime per thread.

        The convenience wrapper for the common pattern in the paper's
        example: a parallel application that binds to an SPMD object
        and invokes it collectively.
        """

        def body(rank_ctx: Any) -> Any:
            comm = rank_ctx.comm if nthreads > 1 else None
            runtime = self.client_runtime(comm, label=name)
            try:
                return fn(
                    ClientContext(
                        rank=rank_ctx.rank,
                        size=nthreads,
                        comm=comm,
                        runtime=runtime,
                    ),
                    *args,
                )
            finally:
                runtime.close()

        return SpmdExecutor(nthreads, name=name, backend="thread").run(
            body, timeout=timeout
        )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """One observability snapshot of the ORB's moving parts.

        Keys: ``fabric`` (transport counters — socket fabrics report
        ``dropped_frames``; a fault-injecting fabric adds its
        ``faults`` tally), ``transfer_schedule_cache`` (LRU hit/miss
        for §3.3 chunk schedules), ``cdr_copies`` (lifetime wire-path
        copy accounting), ``ft`` (client fault-tolerance counters
        summed over this ORB's runtimes), ``reply_caches``
        (server-side dedup counters per activated group), ``san``
        (the :mod:`repro.san` sanitizer's counters and findings —
        see ``docs/sanitizer.md``), ``rts`` (the RTS execution
        context — backend name, rank, size — plus shared-memory
        segment counters from the process backend's pool), ``groups``
        (replicated-group counters — binds, selections, failovers —
        plus the per-group membership/epoch board; see
        :mod:`repro.groups`), ``server`` (socket-fabric servers only:
        the event loop's admission/backpressure counters; see
        ``docs/scaling.md``), and — when
        tracing is on — ``trace`` (recorder occupancy plus the
        counters/histograms of the :mod:`repro.trace` metrics
        registry).  See ``docs/observability.md`` for the full schema.

        The returned dict is a deep copy taken at the snapshot
        boundary: callers may mutate it (or hold it across later ORB
        activity) without perturbing live state, and live state never
        mutates an already-returned snapshot.
        """
        fabric: dict[str, Any] = {}
        dropped = getattr(self.fabric, "dropped_frames", None)
        if dropped is not None:
            fabric["dropped_frames"] = dropped
        fault_stats = getattr(self.fabric, "fault_stats", None)
        if callable(fault_stats):
            fabric["faults"] = fault_stats()
        ft: dict[str, int] = {}
        with self._lock:
            runtimes = list(self._runtimes)
        for runtime in runtimes:
            ft_stats = getattr(runtime, "ft_stats", None)
            if ft_stats is None:
                continue
            for key, value in ft_stats.snapshot().items():
                ft[key] = ft.get(key, 0) + value
        reply_caches = {
            group.name: group.reply_cache.stats()
            for group in self._adapter._groups
            if getattr(group, "reply_cache", None) is not None
        }
        copied_bytes, copy_events = self._copy_account.snapshot()
        snapshot: dict[str, Any] = {
            "fabric": fabric,
            "transfer_schedule_cache": schedule_cache_stats(),
            "cdr_copies": {"bytes": copied_bytes, "events": copy_events},
            "ft": ft,
            "reply_caches": reply_caches,
            # Process-wide sanitizer snapshot (detector counters and
            # findings); {"enabled": False, ...} when the sanitizer
            # is off.
            "san": san.stats(),
            # RTS execution context (backend name, rank, size) plus
            # shared-memory segment accounting for the process
            # backend's data plane.
            "rts": rts_backends.rts_stats(),
            # Replicated-group counters (binds, selections, failovers)
            # and the per-group membership board.
            "groups": groups_stats.stats(),
        }
        server_stats = getattr(self.fabric, "server_stats", None)
        if callable(server_stats):
            # Socket-fabric servers: event-loop admission/backpressure
            # counters (connections, in-flight requests, paused
            # clients).  See docs/scaling.md.
            snapshot["server"] = server_stats()
        if self.trace is not None:
            snapshot["trace"] = {
                "recorder": self.trace.stats(),
                # Counters/histograms only: the registry's *sources*
                # include this very method (registered in __init__),
                # so folding them here would recurse.
                "metrics": self.trace.metrics.snapshot(
                    include_sources=False
                ),
            }
        return copy.deepcopy(snapshot)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Deactivate all objects and release client resources."""
        if self._shut:
            return
        self._shut = True
        unregister_account(self._copy_account)
        if self.trace is not None:
            self.trace.metrics.unregister_source(f"orb.{self.name}")
        if self._fabric_meter is not None:
            remove_meter = getattr(self.fabric, "remove_meter", None)
            if callable(remove_meter):
                remove_meter(self._fabric_meter)
            self._fabric_meter = None
        self._adapter.shutdown()
        with self._lock:
            runtimes, self._runtimes = self._runtimes, []
        for runtime in runtimes:
            runtime.close()

    def __enter__(self) -> "ORB":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


class SpmdClientGroup:
    """A persistent parallel client: the same thread group performing
    several collective interactions (created once, reused).

    Where :meth:`ORB.run_spmd_client` is fork-join per call, this
    keeps the group alive so examples/benchmarks can time repeated
    invocations without thread startup costs.
    """

    def __init__(self, orb: ORB, nthreads: int, name: str = "client") -> None:
        if nthreads <= 0:
            raise ValueError("a client group needs at least one thread")
        self.orb = orb
        self.nthreads = nthreads
        self.name = name
        self._executor = SpmdExecutor(nthreads, name=name, backend="thread")

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        timeout: float = 120.0,
    ) -> list[Any]:
        """One collective session: ``fn(client_ctx, *args)`` per thread."""

        def body(rank_ctx: Any) -> Any:
            comm = rank_ctx.comm if self.nthreads > 1 else None
            runtime = self.orb.client_runtime(comm, label=self.name)
            try:
                return fn(
                    ClientContext(
                        rank=rank_ctx.rank,
                        size=self.nthreads,
                        comm=comm,
                        runtime=runtime,
                    ),
                    *args,
                )
            finally:
                runtime.close()

        return self._executor.run(body, timeout=timeout)
