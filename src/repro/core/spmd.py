"""SPMD object model surface: server groups and transfer methods."""

from __future__ import annotations

import enum

from repro.orb.adapter import ServantGroup


class TransferMethod(enum.Enum):
    """The two distributed-argument transfer methods of paper §3."""

    CENTRALIZED = "centralized"
    MULTIPORT = "multiport"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def values(cls) -> frozenset[str]:
        """The valid spellings of a ``transfer=`` argument.

        Shared by the proxy layer and by ``repro.lint``'s
        transfer-method checks, so the accepted vocabulary has one
        home.
        """
        return frozenset(member.value for member in cls)


class SpmdServerGroup(ServantGroup):
    """An activated SPMD object (paper §2).

    A set of computing threads visible to the request broker; a
    request is satisfied if and only if it is delivered to all of
    them.  Construction and lifecycle live in
    :class:`repro.orb.adapter.ServantGroup`; this subclass names the
    concept at the public-API level.
    """
