"""The PARDIS request broker.

The ORB delivers requests from clients to objects.  For SPMD objects
it is aware of every computing thread and "can transfer distributed
arguments directly between the computing threads of the client and the
server" (paper §1).  Layers, bottom-up:

- :mod:`repro.orb.transport` — endpoints, ports and channels (the
  NexusLite role).
- :mod:`repro.orb.operation` — runtime descriptions of IDL operations,
  shared by generated proxies and skeletons.
- :mod:`repro.orb.request` — request/reply messages and their CDR
  encoding (the GIOP role).
- :mod:`repro.orb.reference` — object references (IORs) carrying the
  endpoint set of an SPMD object.
- :mod:`repro.orb.naming` — the naming domain used by ``_bind``.
- :mod:`repro.orb.transfer` — the two distributed-argument transfer
  methods evaluated in the paper (§3.2 centralized, §3.3 multi-port).
- :mod:`repro.orb.adapter` — the server-side object adapter: servant
  registration and the per-thread dispatch loop.
- :mod:`repro.orb.proxy` — the client side: ``_bind`` / ``_spmd_bind``
  and method invocation, blocking and future-returning.
"""

from __future__ import annotations

import importlib
from typing import Any

#: Public name → defining submodule, resolved lazily.  Lazy loading
#: keeps this package importable from the leaves of an import cycle:
#: :mod:`repro.ft.policy` needs :mod:`repro.orb.operation` while
#: :mod:`repro.orb.transfer` needs :mod:`repro.ft` — eager package
#: imports here would close that loop.
_EXPORTS = {
    "BindMode": "repro.orb.proxy",
    "CentralizedTransfer": "repro.orb.transfer",
    "Channel": "repro.orb.transport",
    "ClientProxy": "repro.orb.proxy",
    "Direction": "repro.orb.operation",
    "Endpoint": "repro.orb.transport",
    "MultiPortTransfer": "repro.orb.transfer",
    "NamingError": "repro.orb.naming",
    "NamingService": "repro.orb.naming",
    "ObjectAdapter": "repro.orb.adapter",
    "ObjectReference": "repro.orb.reference",
    "OperationSpec": "repro.orb.operation",
    "ParamSpec": "repro.orb.operation",
    "Port": "repro.orb.transport",
    "RemoteError": "repro.orb.operation",
    "ReplyMessage": "repro.orb.request",
    "RequestMessage": "repro.orb.request",
    "Servant": "repro.orb.adapter",
    "ServantGroup": "repro.orb.adapter",
    "TransferEngine": "repro.orb.transfer",
    "TransportError": "repro.orb.transport",
    "UserException": "repro.orb.operation",
    "decode_reply": "repro.orb.request",
    "decode_request": "repro.orb.request",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.orb' has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return __all__
