"""The PARDIS request broker.

The ORB delivers requests from clients to objects.  For SPMD objects
it is aware of every computing thread and "can transfer distributed
arguments directly between the computing threads of the client and the
server" (paper §1).  Layers, bottom-up:

- :mod:`repro.orb.transport` — endpoints, ports and channels (the
  NexusLite role).
- :mod:`repro.orb.operation` — runtime descriptions of IDL operations,
  shared by generated proxies and skeletons.
- :mod:`repro.orb.request` — request/reply messages and their CDR
  encoding (the GIOP role).
- :mod:`repro.orb.reference` — object references (IORs) carrying the
  endpoint set of an SPMD object.
- :mod:`repro.orb.naming` — the naming domain used by ``_bind``.
- :mod:`repro.orb.transfer` — the two distributed-argument transfer
  methods evaluated in the paper (§3.2 centralized, §3.3 multi-port).
- :mod:`repro.orb.adapter` — the server-side object adapter: servant
  registration and the per-thread dispatch loop.
- :mod:`repro.orb.proxy` — the client side: ``_bind`` / ``_spmd_bind``
  and method invocation, blocking and future-returning.
"""

from repro.orb.operation import (
    Direction,
    OperationSpec,
    ParamSpec,
    RemoteError,
    UserException,
)
from repro.orb.reference import ObjectReference
from repro.orb.naming import NamingService, NamingError
from repro.orb.transport import Channel, Endpoint, Port, TransportError
from repro.orb.request import (
    ReplyMessage,
    RequestMessage,
    decode_reply,
    decode_request,
)
from repro.orb.transfer import (
    CentralizedTransfer,
    MultiPortTransfer,
    TransferEngine,
)
from repro.orb.adapter import ObjectAdapter, Servant, ServantGroup
from repro.orb.proxy import ClientProxy, BindMode

__all__ = [
    "BindMode",
    "CentralizedTransfer",
    "Channel",
    "ClientProxy",
    "Direction",
    "Endpoint",
    "MultiPortTransfer",
    "NamingError",
    "NamingService",
    "ObjectAdapter",
    "ObjectReference",
    "OperationSpec",
    "ParamSpec",
    "Port",
    "RemoteError",
    "ReplyMessage",
    "RequestMessage",
    "Servant",
    "ServantGroup",
    "TransferEngine",
    "TransportError",
    "UserException",
    "decode_reply",
    "decode_request",
]
