"""Object references (IORs) for SPMD objects.

A reference names one object and carries everything a client-side ORB
needs to reach it:

- ``request_port``: the single connection of the centralized method —
  "the SPMD object makes available only one network connection to
  clients", waited on by the communicating thread (§3.2);
- ``data_ports``: one per computing thread for the multi-port method —
  "each computing thread of the SPMD object opens a network connection
  on a separate port; these connections become a part of object
  reference for this particular object" (§3.3);
- per-parameter distribution templates the server registered before
  activation (§2.2), so the client's threads can "calculate to which
  of the server's threads they should send data".

References stringify to an ``IOR:<hex>`` form and survive a
marshal/unmarshal roundtrip, mirroring CORBA stringified IORs.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass

from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError
from repro.orb.transport import PortAddress


def _write_address(enc: CdrEncoder, port) -> None:
    """Shared address codec (see docs/protocol.md, "port encoding")."""
    enc.write_ulong(port.port_id)
    enc.write_string(port.label)
    enc.write_string(getattr(port, "host", "") or "")
    enc.write_ulong(getattr(port, "tcp_port", 0) or 0)


def _read_address(dec: CdrDecoder):
    port_id = dec.read_ulong()
    label = dec.read_string()
    host = dec.read_string()
    tcp_port = dec.read_ulong()
    if host:
        from repro.orb.socketnet import SocketPortAddress

        return SocketPortAddress(host, tcp_port, port_id, label)
    return PortAddress(port_id, label)


@dataclass(frozen=True)
class ObjectReference:
    """An immutable, stringifiable reference to one (SPMD) object."""

    object_key: str
    repo_id: str
    request_port: PortAddress
    data_ports: tuple[PortAddress, ...] = ()
    #: (operation name, parameter name) → distribution template spec
    #: tuple, e.g. ``('proportions', (2, 4, 2, 4))``.  Parameters not
    #: listed default to uniform blockwise.
    param_templates: tuple[tuple[tuple[str, str], tuple], ...] = ()

    @property
    def nthreads(self) -> int:
        """Number of computing threads of the SPMD object (1 when the
        object only advertises the centralized connection)."""
        return len(self.data_ports) or 1

    @property
    def multiport_capable(self) -> bool:
        return bool(self.data_ports)

    def template_spec(self, operation: str, param: str) -> tuple | None:
        for key, spec in self.param_templates:
            if key == (operation, param):
                return spec
        return None

    def ior(self) -> str:
        """Stringified form: ``IOR:`` + hex of a CDR encoding.

        Pure CDR, no pickling: a reference received from an untrusted
        peer can at worst fail to parse.
        """
        enc = CdrEncoder()
        enc.write_string(self.object_key)
        enc.write_string(self.repo_id)
        _write_address(enc, self.request_port)
        enc.write_ulong(len(self.data_ports))
        for port in self.data_ports:
            _write_address(enc, port)
        enc.write_ulong(len(self.param_templates))
        for (operation, param), spec in self.param_templates:
            enc.write_string(operation)
            enc.write_string(param)
            enc.write_string(spec[0])
            weights = spec[1] if len(spec) > 1 else ()
            enc.write_ulong(len(weights))
            for weight in weights:
                enc.write_ulong(int(weight))
        return "IOR:" + binascii.hexlify(enc.getvalue()).decode("ascii")

    @staticmethod
    def from_ior(text: str) -> "ObjectReference":
        """Parse a stringified reference (inverse of :meth:`ior`)."""
        if not text.startswith("IOR:"):
            raise ValueError(f"not a stringified reference: {text[:20]!r}")
        try:
            dec = CdrDecoder(binascii.unhexlify(text[4:]))
            object_key = dec.read_string()
            repo_id = dec.read_string()
            request_port = _read_address(dec)
            nports = dec.read_ulong()
            data_ports = tuple(_read_address(dec) for _ in range(nports))
            ntemplates = dec.read_ulong()
            templates = []
            for _ in range(ntemplates):
                operation = dec.read_string()
                param = dec.read_string()
                kind = dec.read_string()
                nweights = dec.read_ulong()
                weights = tuple(
                    dec.read_ulong() for _ in range(nweights)
                )
                spec = (kind,) if not weights else (kind, weights)
                templates.append(((operation, param), spec))
        except (MarshalError, binascii.Error, ValueError) as exc:
            raise ValueError(f"malformed IOR: {exc}") from None
        return ObjectReference(
            object_key=object_key,
            repo_id=repo_id,
            request_port=request_port,
            data_ports=data_ports,
            param_templates=tuple(templates),
        )

    def __str__(self) -> str:
        return (
            f"<{self.repo_id} '{self.object_key}' at "
            f"{self.request_port}, {self.nthreads} threads>"
        )
