"""Object references (IORs) for SPMD objects.

A reference names one object and carries everything a client-side ORB
needs to reach it:

- ``request_port``: the single connection of the centralized method —
  "the SPMD object makes available only one network connection to
  clients", waited on by the communicating thread (§3.2);
- ``data_ports``: one per computing thread for the multi-port method —
  "each computing thread of the SPMD object opens a network connection
  on a separate port; these connections become a part of object
  reference for this particular object" (§3.3);
- per-parameter distribution templates the server registered before
  activation (§2.2), so the client's threads can "calculate to which
  of the server's threads they should send data".

References stringify to an ``IOR:<hex>`` form and survive a
marshal/unmarshal roundtrip, mirroring CORBA stringified IORs.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass

from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError
from repro.orb.transport import PortAddress


def _write_address(enc: CdrEncoder, port) -> None:
    """Shared address codec (see docs/protocol.md, "port encoding")."""
    enc.write_ulong(port.port_id)
    enc.write_string(port.label)
    enc.write_string(getattr(port, "host", "") or "")
    enc.write_ulong(getattr(port, "tcp_port", 0) or 0)


def _read_address(dec: CdrDecoder):
    port_id = dec.read_ulong()
    label = dec.read_string()
    host = dec.read_string()
    tcp_port = dec.read_ulong()
    if host:
        from repro.orb.socketnet import SocketPortAddress

        return SocketPortAddress(host, tcp_port, port_id, label)
    return PortAddress(port_id, label)


@dataclass(frozen=True)
class ObjectReference:
    """An immutable, stringifiable reference to one (SPMD) object."""

    object_key: str
    repo_id: str
    request_port: PortAddress
    data_ports: tuple[PortAddress, ...] = ()
    #: (operation name, parameter name) → distribution template spec
    #: tuple, e.g. ``('proportions', (2, 4, 2, 4))``.  Parameters not
    #: listed default to uniform blockwise.
    param_templates: tuple[tuple[tuple[str, str], tuple], ...] = ()

    @property
    def nthreads(self) -> int:
        """Number of computing threads of the SPMD object (1 when the
        object only advertises the centralized connection)."""
        return len(self.data_ports) or 1

    @property
    def multiport_capable(self) -> bool:
        return bool(self.data_ports)

    def template_spec(self, operation: str, param: str) -> tuple | None:
        for key, spec in self.param_templates:
            if key == (operation, param):
                return spec
        return None

    def ior(self) -> str:
        """Stringified form: ``IOR:`` + hex of a CDR encoding.

        Pure CDR, no pickling: a reference received from an untrusted
        peer can at worst fail to parse.
        """
        enc = CdrEncoder()
        enc.write_string(self.object_key)
        enc.write_string(self.repo_id)
        _write_address(enc, self.request_port)
        enc.write_ulong(len(self.data_ports))
        for port in self.data_ports:
            _write_address(enc, port)
        enc.write_ulong(len(self.param_templates))
        for (operation, param), spec in self.param_templates:
            enc.write_string(operation)
            enc.write_string(param)
            enc.write_string(spec[0])
            weights = spec[1] if len(spec) > 1 else ()
            enc.write_ulong(len(weights))
            for weight in weights:
                enc.write_ulong(int(weight))
        return "IOR:" + binascii.hexlify(enc.getvalue()).decode("ascii")

    @staticmethod
    def from_ior(text: str) -> "ObjectReference":
        """Parse a stringified reference (inverse of :meth:`ior`)."""
        if not text.startswith("IOR:"):
            raise ValueError(f"not a stringified reference: {text[:20]!r}")
        try:
            dec = CdrDecoder(binascii.unhexlify(text[4:]))
            object_key = dec.read_string()
            repo_id = dec.read_string()
            request_port = _read_address(dec)
            nports = dec.read_ulong()
            data_ports = tuple(_read_address(dec) for _ in range(nports))
            ntemplates = dec.read_ulong()
            templates = []
            for _ in range(ntemplates):
                operation = dec.read_string()
                param = dec.read_string()
                kind = dec.read_string()
                nweights = dec.read_ulong()
                weights = tuple(
                    dec.read_ulong() for _ in range(nweights)
                )
                spec = (kind,) if not weights else (kind, weights)
                templates.append(((operation, param), spec))
        except (MarshalError, binascii.Error, ValueError) as exc:
            raise ValueError(f"malformed IOR: {exc}") from None
        return ObjectReference(
            object_key=object_key,
            repo_id=repo_id,
            request_port=request_port,
            data_ports=data_ports,
            param_templates=tuple(templates),
        )

    def __str__(self) -> str:
        return (
            f"<{self.repo_id} '{self.object_key}' at "
            f"{self.request_port}, {self.nthreads} threads>"
        )


@dataclass(frozen=True)
class GroupReference:
    """A reference to a *replicated object group* (``repro.groups``).

    Where an :class:`ObjectReference` names one servant, a group
    reference names N interchangeable replicas behind one logical
    name.  It is what a sharded naming router hands out for a
    replicated binding: the membership snapshot at one *health epoch*
    (bumped whenever a replica is marked down, so clients can tell a
    stale view from a fresh one), plus the per-replica load readings
    the least-loaded selection policy feeds on.

    Group references stringify to ``GIOR:<hex>`` — pure CDR, like
    :meth:`ObjectReference.ior`, with each member carried as its own
    nested stringified reference — so a group binding can cross the
    wire (rank 0 resolves, the peers parse).
    """

    group_name: str
    repo_id: str
    #: Router health epoch at resolve time (monotonic per group).
    epoch: int
    #: ``(replica_id, member reference)`` pairs, ascending replica id.
    members: tuple[tuple[int, ObjectReference], ...]
    #: ``(replica_id, load)`` health readings known at resolve time;
    #: replicas that never reported are simply absent.
    loads: tuple[tuple[int, float], ...] = ()

    @property
    def replica_ids(self) -> tuple[int, ...]:
        return tuple(rid for rid, _ in self.members)

    def member(self, replica_id: int) -> ObjectReference:
        for rid, ref in self.members:
            if rid == replica_id:
                return ref
        raise KeyError(
            f"group '{self.group_name}' has no replica {replica_id}"
        )

    def load(self, replica_id: int) -> float | None:
        for rid, value in self.loads:
            if rid == replica_id:
                return value
        return None

    def ior(self) -> str:
        """Stringified form: ``GIOR:`` + hex of a CDR encoding."""
        enc = CdrEncoder()
        enc.write_string(self.group_name)
        enc.write_string(self.repo_id)
        enc.write_ulong(self.epoch)
        enc.write_ulong(len(self.members))
        for rid, ref in self.members:
            enc.write_ulong(rid)
            enc.write_string(ref.ior())
        enc.write_ulong(len(self.loads))
        for rid, value in self.loads:
            enc.write_ulong(rid)
            # Milli-units: loads are coarse health readings, not
            # accounting values, and CDR ulongs keep the stream pure.
            enc.write_ulong(min(int(value * 1000.0), 0xFFFFFFFF))
        return "GIOR:" + binascii.hexlify(enc.getvalue()).decode("ascii")

    @staticmethod
    def from_ior(text: str) -> "GroupReference":
        """Parse a stringified group reference (inverse of :meth:`ior`)."""
        if not text.startswith("GIOR:"):
            raise ValueError(
                f"not a stringified group reference: {text[:20]!r}"
            )
        try:
            dec = CdrDecoder(binascii.unhexlify(text[5:]))
            group_name = dec.read_string()
            repo_id = dec.read_string()
            epoch = dec.read_ulong()
            nmembers = dec.read_ulong()
            members = tuple(
                (dec.read_ulong(), ObjectReference.from_ior(dec.read_string()))
                for _ in range(nmembers)
            )
            nloads = dec.read_ulong()
            loads = tuple(
                (dec.read_ulong(), dec.read_ulong() / 1000.0)
                for _ in range(nloads)
            )
        except (MarshalError, binascii.Error, ValueError) as exc:
            raise ValueError(f"malformed GIOR: {exc}") from None
        return GroupReference(
            group_name=group_name,
            repo_id=repo_id,
            epoch=epoch,
            members=members,
            loads=loads,
        )

    def __str__(self) -> str:
        return (
            f"<group {self.repo_id} '{self.group_name}' epoch "
            f"{self.epoch}, {len(self.members)} replicas>"
        )


def parse_reference(text: str) -> "ObjectReference | GroupReference":
    """Parse either stringified form by its prefix."""
    if text.startswith("GIOR:"):
        return GroupReference.from_ior(text)
    return ObjectReference.from_ior(text)
