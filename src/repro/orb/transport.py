"""The transport fabric — PARDIS's NexusLite role.

An in-process "network": every computing thread that talks to the ORB
owns one or more :class:`Port` objects; a :class:`Fabric` routes byte
payloads between ports.  Delivery is reliable and FIFO per
(source, destination) pair, which is what the paper's synchronous
Nexus sends over a dedicated ATM link provided.

Everything crossing a port boundary must already be marshaled bytes —
the fabric refuses Python objects, so transport can never hide a
marshaling bug.  Messages carry a ``kind`` tag ('request', 'reply',
'data', 'control') so a receiver can wait for the traffic class it
expects; within a kind, matching is FIFO.

The optional ``meter`` hook observes every send (source, destination,
kind, size) — the functional plane's equivalent of the simulator's
link, used by the protocol-trace tests for Figures 2 and 3.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cdr.accounting import copied

#: Message kinds understood by the ORB layers.
KIND_REQUEST = "request"
KIND_REPLY = "reply"
KIND_DATA = "data"
KIND_CONTROL = "control"


class TransportError(RuntimeError):
    """Port closed, unknown address, timeout, or misuse."""


class TransportTimeout(TransportError):
    """A receive window expired with no message.

    A distinct subclass so fault-tolerant callers can classify a
    timeout (possibly-lost frame: retryable under a deadline budget)
    apart from structural transport failures, without matching
    message strings.
    """


def check_payload(payload: Any) -> int:
    """Validate a send payload and return its total byte length.

    Payloads are marshaled bytes: one buffer (bytes / bytearray /
    memoryview) or a list/tuple of such buffers — the segment form
    produced by the zero-copy encoders, which vectored transports send
    without joining.  The sender must not mutate a payload after
    handing it to the fabric (zero-copy contract).
    """
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)) and all(
        isinstance(p, (bytes, bytearray, memoryview)) for p in payload
    ):
        return sum(len(p) for p in payload)
    raise TransportError(
        "transport carries marshaled bytes only; got "
        f"{type(payload).__name__}"
    )


def flatten_payload(payload: Any) -> Any:
    """One contiguous buffer for in-process delivery (joins segment
    lists — the single copy of the in-process path)."""
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return payload
    if len(payload) == 1:
        return payload[0]
    copied(sum(len(p) for p in payload))
    return b"".join(
        p if isinstance(p, bytes) else bytes(p) for p in payload
    )


@dataclass(frozen=True, order=True)
class PortAddress:
    """A routable address: fabric-unique id plus a debugging label."""

    port_id: int
    label: str = field(compare=False, default="")

    def __repr__(self) -> str:
        return f"<port {self.port_id} {self.label!r}>"


@dataclass
class _Delivery:
    src: PortAddress
    kind: str
    payload: Any  # one contiguous bytes-like buffer


class Port:
    """A receiving endpoint.  Owned (received from) by one thread."""

    def __init__(self, fabric: "Fabric", address: PortAddress) -> None:
        self._fabric = fabric
        self.address = address
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: list[_Delivery] = []
        self._closed = False

    def _deposit(self, delivery: _Delivery) -> None:
        with self._cond:
            if self._closed:
                raise TransportError(
                    f"port {self.address} is closed"
                )
            self._queue.append(delivery)
            self._cond.notify_all()

    def recv(
        self,
        kind: str | None = None,
        timeout: float | None = 60.0,
    ) -> tuple[PortAddress, str, bytes]:
        """Blocking receive of the next message (of ``kind``, if given).

        Returns ``(source, kind, payload)``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise TransportError(
                        f"port {self.address} closed while receiving"
                    )
                for i, delivery in enumerate(self._queue):
                    if kind is None or delivery.kind == kind:
                        self._queue.pop(i)
                        return delivery.src, delivery.kind, delivery.payload
                if deadline is None:
                    self._cond.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"recv on port {self.address} timed out "
                        f"(kind={kind})"
                    )
                self._cond.wait(remaining)

    def try_recv(
        self, kind: str | None = None
    ) -> tuple[PortAddress, str, bytes] | None:
        """Non-blocking variant of :meth:`recv`."""
        with self._cond:
            for i, delivery in enumerate(self._queue):
                if kind is None or delivery.kind == kind:
                    self._queue.pop(i)
                    return delivery.src, delivery.kind, delivery.payload
        return None

    def pending(self) -> int:
        with self._cond:
            return len(self._queue)

    def send(
        self, dest: PortAddress, payload: Any, kind: str = KIND_DATA
    ) -> None:
        """Send from this port (the reply-to address) to ``dest``.

        ``payload`` is marshaled bytes: one buffer or a segment list
        (see :func:`check_payload`); segment lists let vectored
        transports ship encoder output without joining it.
        """
        self._fabric.send(self.address, dest, payload, kind)

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._fabric._unregister(self.address)

    @property
    def closed(self) -> bool:
        return self._closed


#: Observer signature: (src, dest, kind, nbytes).  Meters see every
#: frame crossing the fabric; :meth:`repro.trace.TraceRecorder.fabric_meter`
#: returns one that tallies per-kind ``fabric.frames.*`` /
#: ``fabric.bytes.*`` counters into its metrics registry (an ORB
#: constructed with tracing on attaches it automatically).
Meter = Callable[[PortAddress, PortAddress, str, int], None]


class Channel:
    """A convenience pairing of two ports — a bidirectional link.

    The request path of the centralized method is naturally a channel
    between the two communicating threads; both ends read from their
    own port and send to the peer's.
    """

    def __init__(self, a: Port, b: Port) -> None:
        self.a = a
        self.b = b

    def ends(self) -> tuple[Port, Port]:
        return self.a, self.b


class Fabric:
    """The in-process network: a registry of ports plus routing."""

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._ports: dict[int, Port] = {}
        self._ids = itertools.count(1)
        self._meters: list[Meter] = []

    def open_port(self, label: str = "") -> Port:
        with self._lock:
            address = PortAddress(next(self._ids), label)
            port = Port(self, address)
            self._ports[address.port_id] = port
        return port

    def channel(self, label_a: str = "a", label_b: str = "b") -> Channel:
        return Channel(self.open_port(label_a), self.open_port(label_b))

    def send(
        self,
        src: PortAddress,
        dest: PortAddress,
        payload: Any,
        kind: str = KIND_DATA,
    ) -> None:
        nbytes = check_payload(payload)
        with self._lock:
            port = self._ports.get(dest.port_id)
            meters = list(self._meters)
        if port is None:
            raise TransportError(f"no port at {dest}")
        for meter in meters:
            meter(src, dest, kind, nbytes)
        port._deposit(_Delivery(src, kind, flatten_payload(payload)))

    def add_meter(self, meter: Meter) -> None:
        """Observe every message crossing the fabric."""
        with self._lock:
            self._meters.append(meter)

    def remove_meter(self, meter: Meter) -> None:
        with self._lock:
            self._meters.remove(meter)

    def _unregister(self, address: PortAddress) -> None:
        with self._lock:
            self._ports.pop(address.port_id, None)

    def open_port_count(self) -> int:
        with self._lock:
            return len(self._ports)


#: Endpoint is the (fabric, port) pair a thread uses to talk; kept as
#: a light alias since Port already carries its fabric.
Endpoint = Port
