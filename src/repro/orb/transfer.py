"""The two distributed-argument transfer methods (paper §3).

Both engines implement the same invocation contract over different
message patterns:

**Centralized** (§3.2, Figure 2) — each side designates a
*communicating thread* (rank 0).  On invocation the client's threads
synchronize, distributed arguments are *gathered* to the communicating
thread over the RTS, and the whole request — header plus all argument
data — crosses the network as **one message**.  The server's
communicating thread unmarshals, *scatters* distributed arguments over
the RTS, all threads execute, results are gathered back and returned
in one reply message.

**Multi-port** (§3.3, Figure 3) — every computing thread of the object
opens its own network port (advertised in the object reference).  The
invocation header still travels centralized — "sending the invocation
to every computing thread … could lead to contention between different
invoking clients" — but argument data flows directly thread-to-thread:
each client thread computes, from the client-side and server-side
distribution templates, exactly which server threads its local block
overlaps, and ships those chunks straight to the owning threads.

Servant/result convention shared by both engines
------------------------------------------------

A servant method receives one value per ``in``/``inout`` parameter, in
declaration order; distributed sequences arrive as
:class:`~repro.dist.DistributedSequence` local views on every thread.
It *produces*, in order: the return value (unless void), then a value
for each ``out`` parameter and each non-distributed ``inout``
parameter.  ``inout`` distributed sequences are mutated in place — on
the server by the servant, on the client by the engine once the reply
arrives.  Zero produced values → return ``None``; one → return it
bare; several → return the tuple.  The client-side composed result
follows the identical rule.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cdr.accounting import copied
from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import DSequenceTC, MarshalError, TypeCode, TC_VOID
from repro.dist import (
    BlockTemplate,
    DistributedSequence,
    Layout,
    transfer_schedule,
)
from repro.dist.schedule import TransferStep
from repro.idl.runtime import template_from_spec
from repro.orb import request as wire
from repro.orb.operation import (
    OperationSpec,
    ParamSpec,
    RemoteError,
    UserException,
    find_exception_class,
)
from repro.orb.reference import ObjectReference
from repro.orb.request import DataChunk, ReplyMessage, RequestMessage
from repro.orb.transport import (
    KIND_DATA,
    KIND_REPLY,
    KIND_REQUEST,
    Port,
    TransportError,
)

_NATIVE_LITTLE = sys.byteorder == "little"

#: Name used for a distributed return value in layouts and chunks.
RETURN_SLOT = "__return__"


class Tracer:
    """Collects protocol events for the Figure 2/3 pattern tests.

    Events are tuples ``(event, *detail)``; see the engines for the
    vocabulary ('rts-gather', 'rts-scatter', 'net-request',
    'net-reply', 'net-chunk', 'sync').
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[tuple] = []

    def emit(self, *event: Any) -> None:
        with self._lock:
            self.events.append(tuple(event))

    def of_kind(self, kind: str) -> list[tuple]:
        with self._lock:
            return [e for e in self.events if e[0] == kind]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


def _single_rank_layout(length: int) -> Layout:
    return Layout(((0, length),))


def server_layout(
    spec_tuple: tuple | None, length: int, nthreads: int
) -> Layout:
    """The server-side layout of a distributed parameter: the template
    the servant registered, or uniform blockwise (§2.2 default)."""
    template = template_from_spec(spec_tuple) or BlockTemplate()
    return template.layout(length, nthreads)


# ---------------------------------------------------------------------------
# Argument slots: what travels where
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Slot:
    """One value position in a request or reply."""

    name: str
    typecode: TypeCode
    param: ParamSpec | None  # None for the return value

    @property
    def distributed(self) -> bool:
        return isinstance(self.typecode, DSequenceTC)


def request_slots(spec: OperationSpec) -> list[Slot]:
    """Client→server values, in declaration order."""
    return [Slot(p.name, p.typecode, p) for p in spec.sent_params]


def reply_slots(spec: OperationSpec) -> list[Slot]:
    """Server→client values: return first, then out/inout params."""
    slots = []
    if spec.return_tc is not TC_VOID:
        slots.append(Slot(RETURN_SLOT, spec.return_tc, None))
    for p in spec.returned_params:
        slots.append(Slot(p.name, p.typecode, p))
    return slots


def produced_slots(spec: OperationSpec) -> list[Slot]:
    """Reply slots a servant must *produce* (inout distributed
    sequences are mutated in place instead)."""
    produced = []
    for slot in reply_slots(spec):
        if (
            slot.distributed
            and slot.param is not None
            and slot.param.direction.sends
        ):
            continue  # inout dsequence: in-place
        produced.append(slot)
    return produced


def compose(values: list[Any]) -> Any:
    """Apply the 0/1/n composition rule."""
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    return tuple(values)


def decompose(result: Any, nslots: int, where: str) -> list[Any]:
    """Inverse of :func:`compose`, validating arity."""
    if nslots == 0:
        if result is not None:
            raise RemoteError(
                f"{where} produced a value but the operation returns "
                f"nothing",
                category="BAD_OPERATION",
            )
        return []
    if nslots == 1:
        return [result]
    if not isinstance(result, tuple) or len(result) != nslots:
        raise RemoteError(
            f"{where} must produce a tuple of {nslots} values",
            category="BAD_OPERATION",
        )
    return list(result)


# ---------------------------------------------------------------------------
# Chunk collection (multi-port receive side)
# ---------------------------------------------------------------------------


class ChunkCollector:
    """Receives data chunks on a port, holding unmatched ones.

    Chunks for different requests and parameters interleave freely on
    a port (several clients may be mid-transfer, and a pipelined
    client has several requests in flight); the collector files each
    by ``(request id, param, phase)`` so an engine can wait for
    exactly the set its transfer schedule predicts.

    Thread-safe: several threads may collect different keys
    concurrently (the server's dispatch pool does).  At most one of
    them receives from the port at a time, filing chunks for every
    waiter; the others block on the condition until their key fills
    or the receiver role frees up.

    A failed ``collect`` (timeout, closed port, decode error) evicts
    its partial entry, and :meth:`discard` retires a request id so
    late chunks for an abandoned request are dropped on arrival
    instead of accumulating forever.
    """

    #: How many discarded request ids to remember.
    MAX_RETIRED = 1024

    def __init__(self, port: Port) -> None:
        self._port = port
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: dict[tuple[int, str, int], list[DataChunk]] = {}
        self._receiving = False
        self._retired: OrderedDict[int, None] = OrderedDict()

    @property
    def port(self) -> Port:
        return self._port

    def pending_entries(self) -> int:
        """How many (request, param, phase) entries are held."""
        with self._lock:
            return len(self._pending)

    def discard(self, request_id: int) -> None:
        """Evict all chunks of an abandoned request and drop its late
        arrivals from now on."""
        with self._cond:
            for key in [k for k in self._pending if k[0] == request_id]:
                del self._pending[key]
            self._retired[request_id] = None
            self._retired.move_to_end(request_id)
            while len(self._retired) > self.MAX_RETIRED:
                self._retired.popitem(last=False)

    def collect(
        self,
        request_id: int,
        param: str,
        phase: int,
        expected: int,
        timeout: float = 60.0,
    ) -> list[DataChunk]:
        """Block until ``expected`` chunks for the key have arrived.

        On failure the key's partial entry is evicted, so a timed-out
        request can never strand chunks in the collector."""
        key = (request_id, param, phase)
        deadline = time.monotonic() + timeout
        try:
            while True:
                with self._cond:
                    have = self._pending.get(key)
                    if have is not None and len(have) >= expected:
                        return self._pending.pop(key)
                    if expected <= 0:
                        return []
                    if self._receiving:
                        # Someone else is on the port; it will file our
                        # chunks and notify.
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportError(
                                f"timed out collecting chunks for "
                                f"request {request_id} ('{param}')"
                            )
                        self._cond.wait(remaining)
                        continue
                    self._receiving = True
                try:
                    self._receive_one(deadline, request_id, param)
                finally:
                    with self._cond:
                        self._receiving = False
                        self._cond.notify_all()
        except BaseException:
            with self._cond:
                self._pending.pop(key, None)
            raise

    def _receive_one(
        self, deadline: float, request_id: int, param: str
    ) -> None:
        """Receive and file the next chunk off the port."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TransportError(
                f"timed out collecting chunks for request "
                f"{request_id} ('{param}')"
            )
        _src, _kind, payload = self._port.recv(
            kind=KIND_DATA, timeout=remaining
        )
        chunk = wire.decode_chunk(payload)
        with self._cond:
            if chunk.request_id not in self._retired:
                self._pending.setdefault(
                    (chunk.request_id, chunk.param, chunk.phase), []
                ).append(chunk)
            self._cond.notify_all()


class ReplyDemux:
    """Files replies by request id so several can be in flight (§2.1).

    The pipelined client keeps multiple requests outstanding on one
    reply port; their replies may come back in any order (different
    objects answer at different speeds).  ``wait(request_id)``
    receives from the port, returning the reply for the asked id and
    filing every other one for its own later ``wait``.

    The invocation worker is the single consumer, so no receiver
    arbitration is needed; the lock protects ``discard`` calls from
    other threads (close/error paths).  Discarded ids are remembered
    so an abandoned request's late reply is dropped, not leaked.
    """

    #: How many discarded request ids to remember.
    MAX_RETIRED = 1024

    def __init__(self, port: Port) -> None:
        self._port = port
        self._lock = threading.Lock()
        self._filed: dict[int, ReplyMessage] = {}
        self._retired: OrderedDict[int, None] = OrderedDict()

    @property
    def port(self) -> Port:
        return self._port

    def outstanding(self) -> int:
        """How many unclaimed replies are filed."""
        with self._lock:
            return len(self._filed)

    def poll(self, request_id: int) -> ReplyMessage | None:
        """The filed reply for ``request_id``, if it already arrived."""
        with self._lock:
            return self._filed.pop(request_id, None)

    def wait(
        self, request_id: int, timeout: float | None = 60.0
    ) -> ReplyMessage:
        """Block until the reply for ``request_id`` arrives, filing
        replies for other in-flight requests along the way."""
        with self._lock:
            reply = self._filed.pop(request_id, None)
        if reply is not None:
            return reply
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            remaining = (
                None if deadline is None
                else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TransportError(
                    f"timed out waiting for the reply to request "
                    f"{request_id}"
                )
            _src, _kind, payload = self._port.recv(
                kind=KIND_REPLY, timeout=remaining
            )
            reply = wire.decode_reply(payload)
            if reply.request_id == request_id:
                return reply
            with self._lock:
                if reply.request_id not in self._retired:
                    self._filed[reply.request_id] = reply

    def discard(self, request_id: int) -> None:
        """Forget an abandoned request; drop its late reply."""
        with self._lock:
            self._filed.pop(request_id, None)
            self._retired[request_id] = None
            self._retired.move_to_end(request_id)
            while len(self._retired) > self.MAX_RETIRED:
                self._retired.popitem(last=False)


def assemble_chunks(
    chunks: list[DataChunk],
    layout: Layout,
    rank: int,
    dtype: np.dtype,
    out: np.ndarray,
) -> None:
    """Write received chunks into the local block ``out`` of ``rank``."""
    lo, hi = layout.local_range(rank)
    for chunk in chunks:
        if not (lo <= chunk.global_lo <= chunk.global_hi <= hi):
            raise MarshalError(
                f"chunk [{chunk.global_lo}, {chunk.global_hi}) for "
                f"'{chunk.param}' lies outside rank {rank}'s block "
                f"[{lo}, {hi})"
            )
        elements = chunk.elements(dtype)
        # The landing store: straight from the chunk payload view into
        # the destination block, the receive side's one copy.
        copied(elements.nbytes)
        out[chunk.global_lo - lo : chunk.global_hi - lo] = elements


def send_chunks(
    port: Port,
    dest_ports: tuple,
    steps: list[TransferStep],
    my_rank: int,
    local: np.ndarray,
    request_id: int,
    param: str,
    phase: int,
    tracer: Tracer | None = None,
) -> None:
    """Ship this rank's outgoing chunks of one parameter."""
    for step in steps:
        if step.src_rank != my_rank:
            continue
        block = local[step.src_slice]
        if not block.flags.c_contiguous:
            block = np.ascontiguousarray(block)
            copied(block.nbytes)
        # Ship a view of the sender's block — the chunk rides to the
        # transport by reference, no flatten.
        payload = memoryview(block).cast("B")
        chunk = DataChunk(
            request_id=request_id,
            param=param,
            phase=phase,
            src_rank=step.src_rank,
            dst_rank=step.dst_rank,
            global_lo=step.global_lo,
            global_hi=step.global_hi,
            payload=payload,
        )
        if tracer is not None:
            tracer.emit(
                "net-chunk",
                phase,
                param,
                step.src_rank,
                step.dst_rank,
                step.nelems,
            )
        port.send(
            dest_ports[step.dst_rank], chunk.encode_segments(), KIND_DATA
        )


# ---------------------------------------------------------------------------
# Body marshaling
# ---------------------------------------------------------------------------


def plain_body_encoder(
    slots: list[Slot], values: dict[str, Any]
) -> CdrEncoder:
    """Marshal the non-distributed slots of a message body.

    Returns the encoder itself so a message can append its segments by
    reference (zero-copy send path)."""
    enc = CdrEncoder()
    for slot in slots:
        if slot.distributed:
            continue
        enc.write(slot.typecode, values[slot.name])
    return enc


def encode_plain_body(slots: list[Slot], values: dict[str, Any]) -> bytes:
    """Flattened form of :func:`plain_body_encoder`."""
    return plain_body_encoder(slots, values).getvalue()


def decode_plain_body(slots: list[Slot], body: Any) -> dict[str, Any]:
    """Inverse of :func:`encode_plain_body`."""
    dec = CdrDecoder(body)
    values: dict[str, Any] = {}
    for slot in slots:
        if slot.distributed:
            continue
        values[slot.name] = dec.read(slot.typecode)
    return values


def full_body_encoder(
    slots: list[Slot], values: dict[str, Any]
) -> CdrEncoder:
    """Centralized method: everything inline, distributed sequences as
    materialized arrays (appended by reference — the encoder borrows
    them until the message is sent)."""
    enc = CdrEncoder()
    for slot in slots:
        if slot.distributed:
            enc.write(slot.typecode, np.asarray(values[slot.name]))
        else:
            enc.write(slot.typecode, values[slot.name])
    return enc


def encode_full_body(
    slots: list[Slot], values: dict[str, Any]
) -> bytes:
    """Flattened form of :func:`full_body_encoder`."""
    return full_body_encoder(slots, values).getvalue()


def decode_full_body(slots: list[Slot], body: Any) -> dict[str, Any]:
    """Inverse of :func:`encode_full_body`.  Numeric sequences come
    back as read-only views into ``body``'s buffer."""
    dec = CdrDecoder(body)
    return {slot.name: dec.read(slot.typecode) for slot in slots}


def detach_plain_values(
    slots: list[Slot], values: dict[str, Any]
) -> None:
    """Replace read-only decoder-view arrays in the plain slots with
    writable copies.

    User code receives (and servants may mutate) these values, so they
    must not alias a transport buffer; plain slots are small, the copy
    is part of the accounted budget."""
    for slot in slots:
        if slot.distributed:
            continue
        value = values.get(slot.name)
        if isinstance(value, np.ndarray) and not value.flags.writeable:
            copied(value.nbytes)
            values[slot.name] = value.copy()


def encode_user_exception(exc: UserException) -> bytes:
    """Marshal a declared exception for a user-exception reply."""
    if exc._tc is None:
        raise RemoteError(
            f"user exception {type(exc).__name__} carries no typecode",
            category="MARSHAL",
        )
    enc = CdrEncoder()
    enc.write(exc._tc, exc)
    return enc.getvalue()


def decode_user_exception(
    spec: OperationSpec, body: bytes
) -> UserException:
    """Rebuild the concrete exception a servant raised, matching the
    repository id against the operation's raises clause."""
    probe = CdrDecoder(body)
    repo_id = probe.read_string()
    exc_tc = spec.exception_by_id(repo_id)
    if exc_tc is None:
        raise RemoteError(
            f"server raised undeclared exception {repo_id!r}",
            category="UNKNOWN",
        )
    members = CdrDecoder(body).read(exc_tc)
    cls = find_exception_class(repo_id)
    if cls is not None:
        return cls(**members)
    exc = UserException(**members)
    exc._tc = exc_tc
    return exc


def encode_system_exception(category: str, message: str) -> bytes:
    """Marshal a system-exception reply body."""
    enc = CdrEncoder()
    enc.write_string(category)
    enc.write_string(message)
    return enc.getvalue()


def decode_system_exception(body: bytes) -> RemoteError:
    """Rebuild the RemoteError a system-exception reply carries."""
    dec = CdrDecoder(body)
    category = dec.read_string()
    message = dec.read_string()
    return RemoteError(message, category=category)


# ---------------------------------------------------------------------------
# Gather staging (centralized method)
# ---------------------------------------------------------------------------

_staging_pool = threading.local()


def staging_array(name: str, length: int, dtype: np.dtype) -> np.ndarray:
    """A reusable per-thread landing buffer for the centralized gather.

    The communicating thread gathers every distributed parameter into
    a full-length staging array before marshaling; one grow-only
    buffer per parameter name, reused across requests, replaces a
    fresh full-sequence allocation per invocation.  Safe because the
    send path finishes with the buffer (vectored write, or the
    in-process flatten) before ``invoke`` returns to this thread.
    """
    buffers = getattr(_staging_pool, "buffers", None)
    if buffers is None:
        buffers = _staging_pool.buffers = {}
    nbytes = max(length * dtype.itemsize, 1)
    buf = buffers.get(name)
    if buf is None or buf.nbytes < nbytes:
        buf = buffers[name] = np.empty(nbytes, dtype=np.uint8)
    return buf[: length * dtype.itemsize].view(dtype)


# ---------------------------------------------------------------------------
# Client-side engines
# ---------------------------------------------------------------------------


class TransferEngine:
    """Common client-side machinery; subclasses set the mode and the
    argument paths."""

    mode: str = ""

    # -- helpers shared by both methods ----------------------------------

    @staticmethod
    def _check_dseq_arg(
        slot: Slot, value: Any, runtime: "ClientRuntimeLike"
    ) -> DistributedSequence:
        if not isinstance(value, DistributedSequence):
            raise TypeError(
                f"parameter '{slot.name}' is a distributed sequence; "
                f"pass a DistributedSequence, not {type(value).__name__}"
            )
        expected = runtime.size
        actual = 1 if value.comm is None else value.comm.size
        if actual != expected:
            raise ValueError(
                f"argument '{slot.name}' is distributed over {actual} "
                f"threads but the client group has {expected}"
            )
        tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
        if tc.bound is not None and value.length() > tc.bound:
            raise MarshalError(
                f"argument '{slot.name}' has {value.length()} elements, "
                f"over the IDL bound {tc.bound}"
            )
        if value.dtype != tc.element_dtype:
            raise MarshalError(
                f"argument '{slot.name}' has dtype {value.dtype}, the "
                f"IDL element type is {tc.element_dtype}"
            )
        return value

    @staticmethod
    def _client_reply_layout(
        slot: Slot,
        new_length: int,
        args_by_name: dict[str, Any],
        runtime: "ClientRuntimeLike",
        out_templates: dict[str, tuple],
    ) -> Layout:
        """Where a returned distributed value lands on the client.

        An inout keeps its layout (resized if the server changed the
        length); an out or return value follows the template the
        caller preset, defaulting to uniform blockwise (§2.2: "an
        'out' argument should be initialized by a distribution
        template before calling the operation which returns it;
        otherwise a uniform blockwise distribution will be assumed").
        """
        if slot.param is not None and slot.param.direction.sends:
            original: DistributedSequence = args_by_name[slot.name]
            return original.layout.resized(new_length)
        template = template_from_spec(out_templates.get(slot.name))
        return (template or BlockTemplate()).layout(
            new_length, runtime.size
        )

    @staticmethod
    def _install_reply_sequence(
        slot: Slot,
        layout: Layout,
        local: np.ndarray,
        args_by_name: dict[str, Any],
        runtime: "ClientRuntimeLike",
    ) -> DistributedSequence | None:
        """In-place update for inout; fresh sequence for out/return."""
        tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
        if slot.param is not None and slot.param.direction.sends:
            seq: DistributedSequence = args_by_name[slot.name]
            seq._layout = layout
            seq._local = np.ascontiguousarray(local, dtype=tc.element_dtype)
            return None
        return DistributedSequence(
            layout.length,
            dtype=tc.element_dtype,
            comm=runtime.app_comm,
            _layout=layout,
            _local=np.ascontiguousarray(local, dtype=tc.element_dtype),
        )

    @staticmethod
    def _raise_for_status(
        spec: OperationSpec, status: int, body: bytes
    ) -> None:
        if status == wire.STATUS_OK:
            return
        if status == wire.STATUS_USER_EXCEPTION:
            raise decode_user_exception(spec, body)
        raise decode_system_exception(body)

    def invoke(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
    ) -> Any:
        """One complete invocation: send, then wait for the reply."""
        kind, payload = self.invoke_begin(
            runtime, ref, spec, args, out_templates
        )
        if kind == "done":
            return payload
        return payload()

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
    ) -> tuple[str, Any]:
        """Put the request on the wire; defer the reply.

        Returns ``("done", value)`` when the invocation finished
        outright (oneway), else ``("pending", complete)`` where
        ``complete()`` receives the reply and composes the result.
        The pipelined invocation worker calls ``invoke_begin`` for
        request N+1 as soon as request N's send phase returned,
        overlapping the network round-trips; completions run in launch
        order, so the collective phases inside ``complete`` stay in
        program order on every rank.
        """
        raise NotImplementedError


class CentralizedTransfer(TransferEngine):
    """§3.2: gather → one network message → scatter."""

    mode = wire.MODE_CENTRALIZED

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
    ) -> tuple[str, Any]:
        tracer = runtime.tracer
        req_slots = request_slots(spec)
        if len(args) != len(req_slots):
            raise TypeError(
                f"{spec.name}() takes {len(req_slots)} arguments, got "
                f"{len(args)}"
            )
        args_by_name = dict(zip((s.name for s in req_slots), args))
        rts = runtime.rts
        # "On invocation, the computing threads of the client first
        # synchronize, marshal arguments and then the request is sent
        # to the server as one message."
        if rts is not None:
            if tracer:
                tracer.emit("sync", "client", "pre-invoke")
            rts.synchronize()
        request_id = runtime.next_request_id()

        # Gather distributed arguments onto the communicating thread.
        gathered: dict[str, np.ndarray | None] = {}
        for slot in req_slots:
            if not slot.distributed:
                continue
            seq = self._check_dseq_arg(slot, args_by_name[slot.name], runtime)
            if rts is None:
                gathered[slot.name] = seq.local_data()
                continue
            steps = transfer_schedule(
                seq.layout, _single_rank_layout(seq.length())
            )
            if tracer:
                for step in steps:
                    if step.src_rank != 0:
                        tracer.emit(
                            "rts-gather", "client", step.src_rank, 0,
                            step.nelems,
                        )
            gathered[slot.name] = rts.gather_chunks(
                seq.local_data(),
                steps,
                root=0,
                out=(
                    staging_array(slot.name, seq.length(), seq.dtype)
                    if runtime.rank == 0
                    else None
                ),
            )

        if runtime.rank == 0:
            values = {
                s.name: (
                    gathered[s.name] if s.distributed
                    else args_by_name[s.name]
                )
                for s in req_slots
            }
            body = full_body_encoder(req_slots, values)
            message = RequestMessage(
                request_id=request_id,
                object_key=ref.object_key,
                operation=spec.name,
                mode=self.mode,
                oneway=spec.oneway,
                reply_port=(
                    None if spec.oneway else runtime.reply_port.address
                ),
                client_nthreads=runtime.size,
                body=body,
            )
            if tracer:
                tracer.emit("net-request", self.mode, spec.name, len(body))
            runtime.reply_port.send(
                ref.request_port, message.encode_segments(), KIND_REQUEST
            )
        if spec.oneway:
            if rts is not None:
                rts.synchronize()
            return ("done", None)

        def complete() -> Any:
            reply = None
            if runtime.rank == 0:
                try:
                    reply = runtime.demux.wait(
                        request_id, timeout=runtime.timeout
                    )
                except BaseException:
                    runtime.demux.discard(request_id)
                    raise
                if tracer:
                    tracer.emit("net-reply", self.mode, len(reply.body))
            return self._deliver_reply(
                runtime, spec, reply, args_by_name, tracer,
                out_templates or {},
            )

        return ("pending", complete)

    def _deliver_reply(
        self,
        runtime: "ClientRuntimeLike",
        spec: OperationSpec,
        reply: ReplyMessage | None,
        args_by_name: dict[str, Any],
        tracer: Tracer | None,
        out_templates: dict[str, tuple],
    ) -> Any:
        rts = runtime.rts
        rep_slots = reply_slots(spec)
        # The communicating thread decodes; peers learn status and
        # plain values by broadcast, distributed values by scatter.
        # Only the status (and, on failure, the small exception body)
        # is broadcast — the bulk reply body stays on rank 0 as a view
        # into the receive buffer; views do not survive pickling.
        if runtime.rank == 0:
            assert reply is not None
            status = reply.status
            error_body = (
                None
                if status == wire.STATUS_OK
                else bytes(reply.body)
            )
            header: tuple[int, bytes | None] = (status, error_body)
        else:
            header = None  # type: ignore[assignment]
        if rts is not None:
            header = rts.broadcast(header, root=0)
        status, error_body = header
        if status != wire.STATUS_OK:
            self._raise_for_status(spec, status, error_body)
        if runtime.rank == 0:
            values = decode_full_body(rep_slots, reply.body)
            detach_plain_values(rep_slots, values)
        else:
            values = {}

        composed: list[Any] = []
        for slot in rep_slots:
            if not slot.distributed:
                continue
            full = values.get(slot.name)
            length = len(full) if runtime.rank == 0 else 0
            if rts is not None:
                length = rts.broadcast(length, root=0)
            layout = self._client_reply_layout(
                slot, length, args_by_name, runtime, out_templates
            )
            local = np.zeros(
                layout.local_length(runtime.rank),
                dtype=slot.typecode.element_dtype,  # type: ignore[attr-defined]
            )
            if rts is None:
                copied(local.nbytes)
                local[:] = full
            else:
                steps = transfer_schedule(
                    _single_rank_layout(length), layout
                )
                if tracer and runtime.rank == 0:
                    for step in steps:
                        if step.dst_rank != 0:
                            tracer.emit(
                                "rts-scatter", "client", 0, step.dst_rank,
                                step.nelems,
                            )
                rts.scatter_chunks(
                    np.asarray(full) if runtime.rank == 0 else None,
                    steps,
                    root=0,
                    out=local,
                )
            values[slot.name] = self._install_reply_sequence(
                slot, layout, local, args_by_name, runtime
            )

        if rts is not None:
            plain = {
                s.name: values.get(s.name)
                for s in rep_slots
                if not s.distributed
            }
            plain = rts.broadcast(plain, root=0)
            values.update(plain)
            if tracer:
                tracer.emit("sync", "client", "post-invoke")
            rts.synchronize()
        return compose(
            [values[s.name] for s in produced_slots(spec)]
        )


class MultiPortTransfer(TransferEngine):
    """§3.3: centralized header, direct thread-to-thread data."""

    mode = wire.MODE_MULTIPORT

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
    ) -> tuple[str, Any]:
        if not ref.multiport_capable:
            raise RemoteError(
                f"object '{ref.object_key}' does not advertise data "
                f"ports; multi-port transfer is unavailable",
                category="NO_RESOURCES",
            )
        tracer = runtime.tracer
        req_slots = request_slots(spec)
        if len(args) != len(req_slots):
            raise TypeError(
                f"{spec.name}() takes {len(req_slots)} arguments, got "
                f"{len(args)}"
            )
        args_by_name = dict(zip((s.name for s in req_slots), args))
        rts = runtime.rts
        if rts is not None:
            if tracer:
                tracer.emit("sync", "client", "pre-invoke")
            rts.synchronize()
        request_id = runtime.next_request_id()

        # Validate distributed arguments and record their layouts in
        # the header, so the server can compute the same schedules.
        dist_layouts = []
        for slot in req_slots:
            if not slot.distributed:
                continue
            seq = self._check_dseq_arg(slot, args_by_name[slot.name], runtime)
            dist_layouts.append((slot.name, seq.layout.local_lengths()))

        # The invocation header is delivered using the centralized
        # method (§3.3): the communicating thread sends it.
        if runtime.rank == 0:
            body = plain_body_encoder(req_slots, args_by_name)
            message = RequestMessage(
                request_id=request_id,
                object_key=ref.object_key,
                operation=spec.name,
                mode=self.mode,
                oneway=spec.oneway,
                reply_port=(
                    None if spec.oneway else runtime.reply_port.address
                ),
                client_nthreads=runtime.size,
                client_data_ports=runtime.data_port_addresses,
                dist_layouts=tuple(dist_layouts),
                out_templates=tuple(
                    sorted((out_templates or {}).items())
                ),
                body=body,
            )
            if tracer:
                tracer.emit("net-request", self.mode, spec.name, len(body))
            runtime.reply_port.send(
                ref.request_port, message.encode_segments(), KIND_REQUEST
            )

        # Each thread ships its own chunks straight to the owning
        # server threads.
        for slot in req_slots:
            if not slot.distributed:
                continue
            seq: DistributedSequence = args_by_name[slot.name]
            dst_layout = server_layout(
                ref.template_spec(spec.name, slot.name),
                seq.length(),
                ref.nthreads,
            )
            steps = transfer_schedule(seq.layout, dst_layout)
            send_chunks(
                runtime.data_port,
                ref.data_ports,
                steps,
                runtime.rank,
                seq.local_data(),
                request_id,
                slot.name,
                wire.PHASE_REQUEST,
                tracer,
            )

        if spec.oneway:
            if rts is not None:
                rts.synchronize()
            return ("done", None)

        def complete() -> Any:
            try:
                return self._complete(
                    runtime, spec, request_id, args_by_name, tracer
                )
            except BaseException:
                # Abandoned request: evict its chunks and drop any
                # late reply so nothing accumulates.
                if runtime.rank == 0:
                    runtime.demux.discard(request_id)
                runtime.collector.discard(request_id)
                raise

        return ("pending", complete)

    def _complete(
        self,
        runtime: "ClientRuntimeLike",
        spec: OperationSpec,
        request_id: int,
        args_by_name: dict[str, Any],
        tracer: Tracer | None,
    ) -> Any:
        # Reply: header centralized, data chunks direct.
        rts = runtime.rts
        if runtime.rank == 0:
            reply = runtime.demux.wait(
                request_id, timeout=runtime.timeout
            )
            if tracer:
                tracer.emit("net-reply", self.mode, len(reply.body))
            # The multi-port reply body holds plain values only (bulk
            # data travels as chunks); a small bytes copy makes it
            # broadcastable to the peer ranks.
            body = bytes(reply.body)
            copied(len(body))
            header = (reply.status, body, reply.dist_layouts)
        else:
            header = None  # type: ignore[assignment]
        if rts is not None:
            header = rts.broadcast(header, root=0)
        status, body, reply_layouts = header
        if status != wire.STATUS_OK:
            self._raise_for_status(spec, status, body)

        values = decode_plain_body(reply_slots(spec), body)
        detach_plain_values(reply_slots(spec), values)
        reply_layout_map = {
            name: (client_lengths, server_lengths)
            for name, client_lengths, server_lengths in reply_layouts
        }
        for slot in reply_slots(spec):
            if not slot.distributed:
                continue
            lengths = reply_layout_map.get(slot.name)
            if lengths is None:
                raise RemoteError(
                    f"reply is missing the layout of '{slot.name}'",
                    category="MARSHAL",
                )
            client_lengths, server_lengths = lengths
            layout = Layout.from_local_lengths(client_lengths)
            src_layout = Layout.from_local_lengths(server_lengths)
            if layout.nranks != runtime.size:
                raise RemoteError(
                    f"reply layout of '{slot.name}' spans "
                    f"{layout.nranks} threads, client has {runtime.size}",
                    category="MARSHAL",
                )
            if src_layout.length != layout.length:
                raise RemoteError(
                    f"reply layouts of '{slot.name}' disagree on length",
                    category="MARSHAL",
                )
            dtype = slot.typecode.element_dtype  # type: ignore[attr-defined]
            local = np.zeros(layout.local_length(runtime.rank), dtype=dtype)
            # Both sides compute the same reply schedule (the server's
            # final layout → the client layout in the reply), so the
            # expected chunk count is exact.
            steps = transfer_schedule(src_layout, layout)
            expected = sum(
                1 for s in steps if s.dst_rank == runtime.rank
            )
            chunks = runtime.collector.collect(
                request_id,
                slot.name,
                wire.PHASE_REPLY,
                expected,
                timeout=runtime.timeout,
            )
            assemble_chunks(chunks, layout, runtime.rank, dtype, local)
            values[slot.name] = self._install_reply_sequence(
                slot, layout, local, args_by_name, runtime
            )

        if rts is not None:
            if tracer:
                tracer.emit("sync", "client", "post-invoke")
            rts.synchronize()
        return compose(
            [values[s.name] for s in produced_slots(spec)]
        )

class ClientRuntimeLike:
    """Structural documentation of what engines need from a runtime.

    The real implementation is :class:`repro.orb.proxy.ClientRuntime`;
    this stub exists so the engine signatures are self-describing.
    """

    rank: int
    size: int
    rts: Any
    app_comm: Any
    reply_port: Port
    data_port: Port
    data_port_addresses: tuple
    collector: ChunkCollector
    demux: ReplyDemux
    tracer: Tracer | None
    timeout: float

    def next_request_id(self) -> int:
        raise NotImplementedError
