"""The two distributed-argument transfer methods (paper §3).

Both engines implement the same invocation contract over different
message patterns:

**Centralized** (§3.2, Figure 2) — each side designates a
*communicating thread* (rank 0).  On invocation the client's threads
synchronize, distributed arguments are *gathered* to the communicating
thread over the RTS, and the whole request — header plus all argument
data — crosses the network as **one message**.  The server's
communicating thread unmarshals, *scatters* distributed arguments over
the RTS, all threads execute, results are gathered back and returned
in one reply message.

**Multi-port** (§3.3, Figure 3) — every computing thread of the object
opens its own network port (advertised in the object reference).  The
invocation header still travels centralized — "sending the invocation
to every computing thread … could lead to contention between different
invoking clients" — but argument data flows directly thread-to-thread:
each client thread computes, from the client-side and server-side
distribution templates, exactly which server threads its local block
overlaps, and ships those chunks straight to the owning threads.

Servant/result convention shared by both engines
------------------------------------------------

A servant method receives one value per ``in``/``inout`` parameter, in
declaration order; distributed sequences arrive as
:class:`~repro.dist.DistributedSequence` local views on every thread.
It *produces*, in order: the return value (unless void), then a value
for each ``out`` parameter and each non-distributed ``inout``
parameter.  ``inout`` distributed sequences are mutated in place — on
the server by the servant, on the client by the engine once the reply
arrives.  Zero produced values → return ``None``; one → return it
bare; several → return the tuple.  The client-side composed result
follows the identical rule.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cdr.accounting import copied
from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import DSequenceTC, MarshalError, TypeCode, TC_VOID
from repro.dist import (
    BlockTemplate,
    DistributedSequence,
    Layout,
    transfer_schedule,
)
from repro.dist.schedule import TransferStep
from repro.ft.agreement import agree, agree_failure
from repro.ft.policy import (
    DeadlineExceeded,
    Failure,
    effective_policy,
    failure_to_exception,
    reconstruct_error,
)
from repro.idl.runtime import template_from_spec
from repro.orb import request as wire
from repro.orb.operation import (
    OperationSpec,
    ParamSpec,
    RemoteError,
    UserException,
    find_exception_class,
)
from repro.orb.reference import ObjectReference
from repro.orb.request import DataChunk, ReplyMessage, RequestMessage
from repro.orb.transport import (
    KIND_DATA,
    KIND_REPLY,
    KIND_REQUEST,
    Port,
    TransportError,
    TransportTimeout,
)
from repro.trace.span import span_or_null

_NATIVE_LITTLE = sys.byteorder == "little"

#: Name used for a distributed return value in layouts and chunks.
RETURN_SLOT = "__return__"


class Tracer:
    """Collects protocol events for the Figure 2/3 pattern tests.

    Events are tuples ``(event, *detail)``; see the engines for the
    vocabulary ('rts-gather', 'rts-scatter', 'net-request',
    'net-reply', 'net-chunk', 'sync').
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: list[tuple] = []

    def emit(self, *event: Any) -> None:
        with self._lock:
            self.events.append(tuple(event))

    def of_kind(self, kind: str) -> list[tuple]:
        with self._lock:
            return [e for e in self.events if e[0] == kind]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


def _single_rank_layout(length: int) -> Layout:
    return Layout(((0, length),))


def server_layout(
    spec_tuple: tuple | None, length: int, nthreads: int
) -> Layout:
    """The server-side layout of a distributed parameter: the template
    the servant registered, or uniform blockwise (§2.2 default)."""
    template = template_from_spec(spec_tuple) or BlockTemplate()
    return template.layout(length, nthreads)


# ---------------------------------------------------------------------------
# Argument slots: what travels where
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Slot:
    """One value position in a request or reply."""

    name: str
    typecode: TypeCode
    param: ParamSpec | None  # None for the return value

    @property
    def distributed(self) -> bool:
        return isinstance(self.typecode, DSequenceTC)


def request_slots(spec: OperationSpec) -> list[Slot]:
    """Client→server values, in declaration order."""
    return [Slot(p.name, p.typecode, p) for p in spec.sent_params]


def reply_slots(spec: OperationSpec) -> list[Slot]:
    """Server→client values: return first, then out/inout params."""
    slots = []
    if spec.return_tc is not TC_VOID:
        slots.append(Slot(RETURN_SLOT, spec.return_tc, None))
    for p in spec.returned_params:
        slots.append(Slot(p.name, p.typecode, p))
    return slots


def produced_slots(spec: OperationSpec) -> list[Slot]:
    """Reply slots a servant must *produce* (inout distributed
    sequences are mutated in place instead)."""
    produced = []
    for slot in reply_slots(spec):
        if (
            slot.distributed
            and slot.param is not None
            and slot.param.direction.sends
        ):
            continue  # inout dsequence: in-place
        produced.append(slot)
    return produced


def compose(values: list[Any]) -> Any:
    """Apply the 0/1/n composition rule."""
    if not values:
        return None
    if len(values) == 1:
        return values[0]
    return tuple(values)


def decompose(result: Any, nslots: int, where: str) -> list[Any]:
    """Inverse of :func:`compose`, validating arity."""
    if nslots == 0:
        if result is not None:
            raise RemoteError(
                f"{where} produced a value but the operation returns "
                f"nothing",
                category="BAD_OPERATION",
            )
        return []
    if nslots == 1:
        return [result]
    if not isinstance(result, tuple) or len(result) != nslots:
        raise RemoteError(
            f"{where} must produce a tuple of {nslots} values",
            category="BAD_OPERATION",
        )
    return list(result)


# ---------------------------------------------------------------------------
# Chunk collection (multi-port receive side)
# ---------------------------------------------------------------------------


class ChunkCollector:
    """Receives data chunks on a port, holding unmatched ones.

    Chunks for different requests and parameters interleave freely on
    a port (several clients may be mid-transfer, and a pipelined
    client has several requests in flight); the collector files each
    by ``(request id, param, phase)`` so an engine can wait for
    exactly the set its transfer schedule predicts.

    Thread-safe: several threads may collect different keys
    concurrently (the server's dispatch pool does).  At most one of
    them receives from the port at a time, filing chunks for every
    waiter; the others block on the condition until their key fills
    or the receiver role frees up.

    A failed ``collect`` (timeout, closed port, decode error) evicts
    its partial entry, and :meth:`discard` retires a request id so
    late chunks for an abandoned request are dropped on arrival
    instead of accumulating forever.

    Within an entry, chunks are filed by their schedule coordinates
    ``(src rank, global range)`` — the ranges of one (request, param,
    phase) partition the destination block, so the coordinates are
    unique and a re-delivered chunk (a duplicated frame, or a retry
    re-sending data that already landed) replaces its original instead
    of inflating the count toward ``expected``.  Undecodable frames
    (truncation faults) are dropped and counted, never raised into an
    innocent collector's ``collect``.
    """

    #: How many discarded request ids to remember.
    MAX_RETIRED = 1024

    def __init__(self, port: Port) -> None:
        self._port = port
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: dict[
            tuple[int, str, int], dict[tuple[int, int, int], DataChunk]
        ] = {}
        self._receiving = False
        self._retired: OrderedDict[int, None] = OrderedDict()
        self._counts = {
            "duplicates_dropped": 0,
            "late_dropped": 0,
            "garbage_dropped": 0,
        }

    @property
    def port(self) -> Port:
        return self._port

    def pending_entries(self) -> int:
        """How many (request, param, phase) entries are held."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict[str, int]:
        """Drop counters: duplicate, post-retirement, undecodable."""
        with self._lock:
            return dict(self._counts)

    def discard(self, request_id: int) -> None:
        """Evict all chunks of an abandoned request and drop its late
        arrivals from now on."""
        with self._cond:
            for key in [k for k in self._pending if k[0] == request_id]:
                del self._pending[key]
            self._retired[request_id] = None
            self._retired.move_to_end(request_id)
            while len(self._retired) > self.MAX_RETIRED:
                self._retired.popitem(last=False)

    def collect(
        self,
        request_id: int,
        param: str,
        phase: int,
        expected: int,
        timeout: float = 60.0,
    ) -> list[DataChunk]:
        """Block until ``expected`` chunks for the key have arrived.

        On failure the key's partial entry is evicted, so a timed-out
        request can never strand chunks in the collector."""
        key = (request_id, param, phase)
        deadline = time.monotonic() + timeout
        try:
            while True:
                with self._cond:
                    have = self._pending.get(key)
                    if have is not None and len(have) >= expected:
                        return list(self._pending.pop(key).values())
                    if expected <= 0:
                        return []
                    if self._receiving:
                        # Someone else is on the port; it will file our
                        # chunks and notify.
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TransportTimeout(
                                f"timed out collecting chunks for "
                                f"request {request_id} ('{param}')"
                            )
                        self._cond.wait(remaining)
                        continue
                    self._receiving = True
                try:
                    self._receive_one(deadline, request_id, param)
                finally:
                    with self._cond:
                        self._receiving = False
                        self._cond.notify_all()
        except BaseException:
            with self._cond:
                self._pending.pop(key, None)
            raise

    def _receive_one(
        self, deadline: float, request_id: int, param: str
    ) -> None:
        """Receive and file the next chunk off the port."""
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TransportTimeout(
                f"timed out collecting chunks for request "
                f"{request_id} ('{param}')"
            )
        _src, _kind, payload = self._port.recv(
            kind=KIND_DATA, timeout=remaining
        )
        try:
            chunk = wire.decode_chunk(payload)
        except MarshalError:
            # A corrupt frame (e.g. an injected truncation) belongs to
            # one sender's request, not to whoever happens to hold the
            # receiver role — drop it and keep collecting.
            with self._cond:
                self._counts["garbage_dropped"] += 1
                self._cond.notify_all()
            return
        with self._cond:
            if chunk.request_id in self._retired:
                self._counts["late_dropped"] += 1
            else:
                entry = self._pending.setdefault(
                    (chunk.request_id, chunk.param, chunk.phase), {}
                )
                coord = (chunk.src_rank, chunk.global_lo, chunk.global_hi)
                if coord in entry:
                    self._counts["duplicates_dropped"] += 1
                entry[coord] = chunk
            self._cond.notify_all()


class ReplyDemux:
    """Files replies by request id so several can be in flight (§2.1).

    The pipelined client keeps multiple requests outstanding on one
    reply port; their replies may come back in any order (different
    objects answer at different speeds).  ``wait(request_id)``
    receives from the port, returning the reply for the asked id and
    filing every other one for its own later ``wait``.

    The invocation worker is the single consumer, so no receiver
    arbitration is needed; the lock protects ``discard`` calls from
    other threads (close/error paths).  Discarded ids are remembered
    so an abandoned request's late reply is dropped, not leaked.
    """

    #: How many discarded request ids to remember.
    MAX_RETIRED = 1024

    def __init__(self, port: Port) -> None:
        self._port = port
        self._lock = threading.Lock()
        self._filed: dict[int, ReplyMessage] = {}
        self._retired: OrderedDict[int, None] = OrderedDict()
        self._counts = {"late_dropped": 0, "garbage_dropped": 0}

    @property
    def port(self) -> Port:
        return self._port

    def outstanding(self) -> int:
        """How many unclaimed replies are filed."""
        with self._lock:
            return len(self._filed)

    def stats(self) -> dict[str, int]:
        """Drop counters: post-retirement and undecodable replies."""
        with self._lock:
            return dict(self._counts)

    def poll(self, request_id: int) -> ReplyMessage | None:
        """The filed reply for ``request_id``, if it already arrived."""
        with self._lock:
            return self._filed.pop(request_id, None)

    def wait(
        self, request_id: int, timeout: float | None = 60.0
    ) -> ReplyMessage:
        """Block until the reply for ``request_id`` arrives, filing
        replies for other in-flight requests along the way."""
        with self._lock:
            reply = self._filed.pop(request_id, None)
        if reply is not None:
            return reply
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            remaining = (
                None if deadline is None
                else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise TransportTimeout(
                    f"timed out waiting for the reply to request "
                    f"{request_id}"
                )
            _src, _kind, payload = self._port.recv(
                kind=KIND_REPLY, timeout=remaining
            )
            try:
                reply = wire.decode_reply(payload)
            except MarshalError:
                # A corrupt frame (injected truncation); drop it — the
                # retry machinery re-requests, not the demux.
                with self._lock:
                    self._counts["garbage_dropped"] += 1
                continue
            if reply.request_id == request_id:
                return reply
            with self._lock:
                if reply.request_id not in self._retired:
                    self._filed[reply.request_id] = reply
                else:
                    self._counts["late_dropped"] += 1

    def discard(self, request_id: int) -> None:
        """Forget an abandoned request; drop its late reply."""
        with self._lock:
            self._filed.pop(request_id, None)
            self._retired[request_id] = None
            self._retired.move_to_end(request_id)
            while len(self._retired) > self.MAX_RETIRED:
                self._retired.popitem(last=False)


def assemble_chunks(
    chunks: list[DataChunk],
    layout: Layout,
    rank: int,
    dtype: np.dtype,
    out: np.ndarray,
) -> None:
    """Write received chunks into the local block ``out`` of ``rank``."""
    lo, hi = layout.local_range(rank)
    for chunk in chunks:
        if not (lo <= chunk.global_lo <= chunk.global_hi <= hi):
            raise MarshalError(
                f"chunk [{chunk.global_lo}, {chunk.global_hi}) for "
                f"'{chunk.param}' lies outside rank {rank}'s block "
                f"[{lo}, {hi})"
            )
        elements = chunk.elements(dtype)
        # The landing store: straight from the chunk payload view into
        # the destination block, the receive side's one copy.
        copied(elements.nbytes)
        out[chunk.global_lo - lo : chunk.global_hi - lo] = elements


def send_chunks(
    port: Port,
    dest_ports: tuple,
    steps: list[TransferStep],
    my_rank: int,
    local: np.ndarray,
    request_id: int,
    param: str,
    phase: int,
    tracer: Tracer | None = None,
    record: Any = None,
) -> None:
    """Ship this rank's outgoing chunks of one parameter.

    ``record(dst_rank, frame_bytes)``, when given, receives every
    encoded chunk frame as it goes out — the server's reply cache
    records reply chunks this way so a retried request can be answered
    by replaying the exact frames.  Recording flattens each frame (a
    copy), so it is reserved for the opt-in dedup path; the default
    path ships segment views untouched.
    """
    for step in steps:
        if step.src_rank != my_rank:
            continue
        block = local[step.src_slice]
        if not block.flags.c_contiguous:
            block = np.ascontiguousarray(block)
            copied(block.nbytes)
        # Ship a view of the sender's block — the chunk rides to the
        # transport by reference, no flatten.
        payload = memoryview(block).cast("B")
        chunk = DataChunk(
            request_id=request_id,
            param=param,
            phase=phase,
            src_rank=step.src_rank,
            dst_rank=step.dst_rank,
            global_lo=step.global_lo,
            global_hi=step.global_hi,
            payload=payload,
        )
        if tracer is not None:
            tracer.emit(
                "net-chunk",
                phase,
                param,
                step.src_rank,
                step.dst_rank,
                step.nelems,
            )
        if record is not None:
            frame = b"".join(
                bytes(s) for s in chunk.encode_segments()
            )
            record(step.dst_rank, frame)
            port.send(dest_ports[step.dst_rank], frame, KIND_DATA)
        else:
            port.send(
                dest_ports[step.dst_rank],
                chunk.encode_segments(),
                KIND_DATA,
            )


# ---------------------------------------------------------------------------
# Body marshaling
# ---------------------------------------------------------------------------


def plain_body_encoder(
    slots: list[Slot], values: dict[str, Any]
) -> CdrEncoder:
    """Marshal the non-distributed slots of a message body.

    Returns the encoder itself so a message can append its segments by
    reference (zero-copy send path)."""
    enc = CdrEncoder()
    for slot in slots:
        if slot.distributed:
            continue
        enc.write(slot.typecode, values[slot.name])
    return enc


def encode_plain_body(slots: list[Slot], values: dict[str, Any]) -> bytes:
    """Flattened form of :func:`plain_body_encoder`."""
    return plain_body_encoder(slots, values).getvalue()


def decode_plain_body(slots: list[Slot], body: Any) -> dict[str, Any]:
    """Inverse of :func:`encode_plain_body`."""
    dec = CdrDecoder(body)
    values: dict[str, Any] = {}
    for slot in slots:
        if slot.distributed:
            continue
        values[slot.name] = dec.read(slot.typecode)
    return values


def full_body_encoder(
    slots: list[Slot], values: dict[str, Any]
) -> CdrEncoder:
    """Centralized method: everything inline, distributed sequences as
    materialized arrays (appended by reference — the encoder borrows
    them until the message is sent)."""
    enc = CdrEncoder()
    for slot in slots:
        if slot.distributed:
            enc.write(slot.typecode, np.asarray(values[slot.name]))
        else:
            enc.write(slot.typecode, values[slot.name])
    return enc


def encode_full_body(
    slots: list[Slot], values: dict[str, Any]
) -> bytes:
    """Flattened form of :func:`full_body_encoder`."""
    return full_body_encoder(slots, values).getvalue()


def decode_full_body(slots: list[Slot], body: Any) -> dict[str, Any]:
    """Inverse of :func:`encode_full_body`.  Numeric sequences come
    back as read-only views into ``body``'s buffer."""
    dec = CdrDecoder(body)
    return {slot.name: dec.read(slot.typecode) for slot in slots}


def detach_plain_values(
    slots: list[Slot], values: dict[str, Any]
) -> None:
    """Replace read-only decoder-view arrays in the plain slots with
    writable copies.

    User code receives (and servants may mutate) these values, so they
    must not alias a transport buffer; plain slots are small, the copy
    is part of the accounted budget."""
    for slot in slots:
        if slot.distributed:
            continue
        value = values.get(slot.name)
        if isinstance(value, np.ndarray) and not value.flags.writeable:
            copied(value.nbytes)
            values[slot.name] = value.copy()


def encode_user_exception(exc: UserException) -> bytes:
    """Marshal a declared exception for a user-exception reply."""
    if exc._tc is None:
        raise RemoteError(
            f"user exception {type(exc).__name__} carries no typecode",
            category="MARSHAL",
        )
    enc = CdrEncoder()
    enc.write(exc._tc, exc)
    return enc.getvalue()


def decode_user_exception(
    spec: OperationSpec, body: bytes
) -> UserException:
    """Rebuild the concrete exception a servant raised, matching the
    repository id against the operation's raises clause."""
    probe = CdrDecoder(body)
    repo_id = probe.read_string()
    exc_tc = spec.exception_by_id(repo_id)
    if exc_tc is None:
        raise RemoteError(
            f"server raised undeclared exception {repo_id!r}",
            category="UNKNOWN",
        )
    members = CdrDecoder(body).read(exc_tc)
    cls = find_exception_class(repo_id)
    if cls is not None:
        return cls(**members)
    exc = UserException(**members)
    exc._tc = exc_tc
    return exc


def encode_system_exception(category: str, message: str) -> bytes:
    """Marshal a system-exception reply body."""
    enc = CdrEncoder()
    enc.write_string(category)
    enc.write_string(message)
    return enc.getvalue()


def decode_system_exception(body: bytes) -> RemoteError:
    """Rebuild the RemoteError a system-exception reply carries."""
    dec = CdrDecoder(body)
    category = dec.read_string()
    message = dec.read_string()
    return RemoteError(message, category=category)


# ---------------------------------------------------------------------------
# Gather staging (centralized method)
# ---------------------------------------------------------------------------

_staging_pool = threading.local()


def staging_array(name: str, length: int, dtype: np.dtype) -> np.ndarray:
    """A reusable per-thread landing buffer for the centralized gather.

    The communicating thread gathers every distributed parameter into
    a full-length staging array before marshaling; one grow-only
    buffer per parameter name, reused across requests, replaces a
    fresh full-sequence allocation per invocation.  Safe because the
    send path finishes with the buffer (vectored write, or the
    in-process flatten) before ``invoke`` returns to this thread.
    """
    buffers = getattr(_staging_pool, "buffers", None)
    if buffers is None:
        buffers = _staging_pool.buffers = {}
    nbytes = max(length * dtype.itemsize, 1)
    buf = buffers.get(name)
    if buf is None or buf.nbytes < nbytes:
        buf = buffers[name] = np.empty(nbytes, dtype=np.uint8)
    return buf[: length * dtype.itemsize].view(dtype)


# ---------------------------------------------------------------------------
# Fault-tolerant invocation control
# ---------------------------------------------------------------------------


class _FtInvocation:
    """Per-invocation retry/deadline state shared by both engines.

    Every decision here is a pure function of (canonical failure,
    attempt count, policy) — plus this rank's clock only for *filing*
    a deadline flag before the vote — so the ranks of a collective
    binding stay in lockstep through every retry, degradation and
    raise without extra communication.
    """

    def __init__(
        self,
        runtime: "ClientRuntimeLike",
        spec: OperationSpec,
        policy: Any,
        request_id: int,
        trace_id: int | None = None,
    ) -> None:
        self.runtime = runtime
        self.spec = spec
        self.policy = policy
        self.request_id = request_id
        #: Trace correlation (``repro.trace``): the recorder, or None
        #: when tracing is off.  The trace id defaults to the *first*
        #: attempt's request id — rank-identical by construction,
        #: since all ranks share one request-id sequence — and is
        #: passed through explicitly when degradation re-issues the
        #: invocation under a fresh request id.
        self.trace = getattr(runtime, "trace", None)
        if trace_id is None:
            trace_id = request_id if self.trace is not None else 0
        self.trace_id = trace_id
        self.start = time.monotonic()
        #: Retries performed so far (0 = still on the first attempt).
        self.attempts = 0
        # The invocation's position in the runtime's collective
        # sequence; drawn at launch, in program order, so it is
        # identical on every rank and stable across retries.
        draw = getattr(runtime, "next_collective_index", None)
        self.collective_index = draw() if draw is not None else 0
        self.stats = getattr(runtime, "ft_stats", None)

    # -- local clock (pre-vote only) -------------------------------------

    def _remaining_deadline(self) -> float | None:
        if self.policy is None or self.policy.deadline_ms is None:
            return None
        return self.policy.deadline_ms / 1e3 - (
            time.monotonic() - self.start
        )

    def attempt_timeout(self) -> float | None:
        """The receive window of the current attempt: the runtime
        timeout, clamped to what is left of the deadline (never below
        1ms, so an overrun surfaces as a fast timeout — at the normal
        protocol point — instead of a divergent local raise)."""
        base = self.runtime.timeout
        remaining = self._remaining_deadline()
        if remaining is None:
            return base
        remaining = max(remaining, 1e-3)
        return remaining if base is None else min(base, remaining)

    def timeout_failure(self, exc: Exception) -> Failure:
        """File a receive timeout, stamping the deadline verdict *now*
        so the post-vote decision never reads a local clock."""
        remaining = self._remaining_deadline()
        return Failure(
            "timeout",
            "TIMEOUT",
            str(exc),
            rank=self.runtime.rank,
            deadline_exhausted=(
                remaining is not None and remaining <= 1e-3
            ),
        )

    # -- post-vote decisions (pure) --------------------------------------

    def next_action(self, failure: Failure) -> str:
        """``"retry"`` / ``"degrade"`` / ``"raise"`` for the canonical
        failure — identical on every rank by construction."""
        policy = self.policy
        if (
            failure.kind == "unreachable"
            and policy is not None
            and policy.degrade_to_centralized
        ):
            return "degrade"
        if (
            policy is None
            or failure.deadline_exhausted
            or self.attempts >= policy.max_retries
            or not policy.is_retryable(failure)
        ):
            return "raise"
        return "retry"

    def before_retry(self) -> None:
        self.attempts += 1
        if self.stats is not None:
            self.stats.bump("retries")
        delay = self.policy.backoff_seconds(
            self.attempts, self.request_id
        )
        if delay > 0:
            time.sleep(delay)

    def note_agreement(self) -> None:
        if self.stats is not None and self.runtime.rts is not None:
            self.stats.bump("agreements")

    def note_degraded(self) -> None:
        if self.stats is not None:
            self.stats.bump("degraded")

    def raise_failure(self, failure: Failure) -> None:
        if self.policy is None:
            raise reconstruct_error(failure)
        exc = failure_to_exception(
            failure,
            self.policy,
            operation=self.spec.name,
            collective_index=self.collective_index,
            attempts=self.attempts,
        )
        if self.stats is not None:
            self.stats.bump(
                "deadline_exceeded"
                if isinstance(exc, DeadlineExceeded)
                else "retries_exhausted"
            )
        raise exc


def _retryable_remote(
    policy: Any, status: int, body: bytes | None
) -> Failure | None:
    """A system-exception reply worth retrying, as a filed failure —
    or ``None`` to let the reply propagate normally."""
    if policy is None or status != wire.STATUS_SYSTEM_EXCEPTION:
        return None
    err = decode_system_exception(body)
    failure = Failure("remote", err.category, str(err))
    return failure if policy.is_retryable(failure) else None


# ---------------------------------------------------------------------------
# Client-side engines
# ---------------------------------------------------------------------------


class TransferEngine:
    """Common client-side machinery; subclasses set the mode and the
    argument paths."""

    mode: str = ""

    # -- helpers shared by both methods ----------------------------------

    @staticmethod
    def _check_dseq_arg(
        slot: Slot, value: Any, runtime: "ClientRuntimeLike"
    ) -> DistributedSequence:
        if not isinstance(value, DistributedSequence):
            raise TypeError(
                f"parameter '{slot.name}' is a distributed sequence; "
                f"pass a DistributedSequence, not {type(value).__name__}"
            )
        expected = runtime.size
        actual = 1 if value.comm is None else value.comm.size
        if actual != expected:
            raise ValueError(
                f"argument '{slot.name}' is distributed over {actual} "
                f"threads but the client group has {expected}"
            )
        tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
        if tc.bound is not None and value.length() > tc.bound:
            raise MarshalError(
                f"argument '{slot.name}' has {value.length()} elements, "
                f"over the IDL bound {tc.bound}"
            )
        if value.dtype != tc.element_dtype:
            raise MarshalError(
                f"argument '{slot.name}' has dtype {value.dtype}, the "
                f"IDL element type is {tc.element_dtype}"
            )
        return value

    @staticmethod
    def _client_reply_layout(
        slot: Slot,
        new_length: int,
        args_by_name: dict[str, Any],
        runtime: "ClientRuntimeLike",
        out_templates: dict[str, tuple],
    ) -> Layout:
        """Where a returned distributed value lands on the client.

        An inout keeps its layout (resized if the server changed the
        length); an out or return value follows the template the
        caller preset, defaulting to uniform blockwise (§2.2: "an
        'out' argument should be initialized by a distribution
        template before calling the operation which returns it;
        otherwise a uniform blockwise distribution will be assumed").
        """
        if slot.param is not None and slot.param.direction.sends:
            original: DistributedSequence = args_by_name[slot.name]
            return original.layout.resized(new_length)
        template = template_from_spec(out_templates.get(slot.name))
        return (template or BlockTemplate()).layout(
            new_length, runtime.size
        )

    @staticmethod
    def _install_reply_sequence(
        slot: Slot,
        layout: Layout,
        local: np.ndarray,
        args_by_name: dict[str, Any],
        runtime: "ClientRuntimeLike",
    ) -> DistributedSequence | None:
        """In-place update for inout; fresh sequence for out/return."""
        tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
        if slot.param is not None and slot.param.direction.sends:
            seq: DistributedSequence = args_by_name[slot.name]
            seq._layout = layout
            seq._local = np.ascontiguousarray(local, dtype=tc.element_dtype)
            return None
        return DistributedSequence(
            layout.length,
            dtype=tc.element_dtype,
            comm=runtime.app_comm,
            _layout=layout,
            _local=np.ascontiguousarray(local, dtype=tc.element_dtype),
        )

    @staticmethod
    def _raise_for_status(
        spec: OperationSpec, status: int, body: bytes
    ) -> None:
        if status == wire.STATUS_OK:
            return
        if status == wire.STATUS_USER_EXCEPTION:
            raise decode_user_exception(spec, body)
        raise decode_system_exception(body)

    def invoke(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
        ft_policy: Any = None,
        on_degrade: Any = None,
        trace_id: int | None = None,
    ) -> Any:
        """One complete invocation: send, then wait for the reply."""
        kind, payload = self.invoke_begin(
            runtime,
            ref,
            spec,
            args,
            out_templates,
            ft_policy=ft_policy,
            on_degrade=on_degrade,
            trace_id=trace_id,
        )
        if kind == "done":
            return payload
        return payload()

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
        ft_policy: Any = None,
        on_degrade: Any = None,
        trace_id: int | None = None,
    ) -> tuple[str, Any]:
        """Put the request on the wire; defer the reply.

        Returns ``("done", value)`` when the invocation finished
        outright (oneway), else ``("pending", complete)`` where
        ``complete()`` receives the reply and composes the result.
        The pipelined invocation worker calls ``invoke_begin`` for
        request N+1 as soon as request N's send phase returned,
        overlapping the network round-trips; completions run in launch
        order, so the collective phases inside ``complete`` stay in
        program order on every rank.

        ``ft_policy`` overrides the runtime's fault-tolerance policy
        for this invocation; ``on_degrade`` is called (once, on every
        rank) if the multi-port engine falls back to the centralized
        method mid-invocation.
        """
        raise NotImplementedError


class CentralizedTransfer(TransferEngine):
    """§3.2: gather → one network message → scatter."""

    mode = wire.MODE_CENTRALIZED

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
        ft_policy: Any = None,
        on_degrade: Any = None,
        trace_id: int | None = None,
    ) -> tuple[str, Any]:
        tracer = runtime.tracer
        req_slots = request_slots(spec)
        if len(args) != len(req_slots):
            raise TypeError(
                f"{spec.name}() takes {len(req_slots)} arguments, got "
                f"{len(args)}"
            )
        args_by_name = dict(zip((s.name for s in req_slots), args))
        rts = runtime.rts
        # "On invocation, the computing threads of the client first
        # synchronize, marshal arguments and then the request is sent
        # to the server as one message."
        if rts is not None:
            if tracer:
                tracer.emit("sync", "client", "pre-invoke")
            rts.synchronize()
        request_id = runtime.next_request_id()
        ctl = _FtInvocation(
            runtime, spec, effective_policy(ft_policy, runtime), request_id,
            trace_id=trace_id,
        )
        trace, trace_id = ctl.trace, ctl.trace_id
        inv_span = span_or_null(
            trace, "invoke", trace_id=trace_id, side="client",
            rank=runtime.rank, op=spec.name, engine=self.mode,
            request_id=request_id,
        )

        def send_phase() -> Failure | None:
            """One full send: gathers plus the network message.

            Re-run verbatim on retry (under the same request id).  A
            send-side transport error is *filed*, not raised — it
            surfaces at the agreement vote in ``complete`` so all
            ranks handle it at the same collective point.
            """
            enc_span = span_or_null(
                trace, "encode", trace_id=trace_id, side="client",
                rank=runtime.rank, op=spec.name,
            )
            # Gather distributed arguments onto the communicating
            # thread.
            gathered: dict[str, np.ndarray | None] = {}
            for slot in req_slots:
                if not slot.distributed:
                    continue
                seq = self._check_dseq_arg(
                    slot, args_by_name[slot.name], runtime
                )
                if rts is None:
                    gathered[slot.name] = seq.local_data()
                    continue
                steps = transfer_schedule(
                    seq.layout, _single_rank_layout(seq.length())
                )
                if tracer:
                    for step in steps:
                        if step.src_rank != 0:
                            tracer.emit(
                                "rts-gather", "client", step.src_rank, 0,
                                step.nelems,
                            )
                gathered[slot.name] = rts.gather_chunks(
                    seq.local_data(),
                    steps,
                    root=0,
                    out=(
                        staging_array(slot.name, seq.length(), seq.dtype)
                        if runtime.rank == 0
                        else None
                    ),
                )

            if runtime.rank != 0:
                enc_span.end()
                return None
            values = {
                s.name: (
                    gathered[s.name] if s.distributed
                    else args_by_name[s.name]
                )
                for s in req_slots
            }
            body = full_body_encoder(req_slots, values)
            enc_span.note(nbytes=len(body)).end()
            message = RequestMessage(
                request_id=request_id,
                trace_id=trace_id,
                object_key=ref.object_key,
                operation=spec.name,
                mode=self.mode,
                oneway=spec.oneway,
                reply_port=(
                    None if spec.oneway else runtime.reply_port.address
                ),
                client_nthreads=runtime.size,
                body=body,
            )
            if tracer:
                tracer.emit("net-request", self.mode, spec.name, len(body))
            xfer_span = span_or_null(
                trace, "transfer", trace_id=trace_id, side="client",
                rank=runtime.rank, nbytes=len(body),
            )
            try:
                runtime.reply_port.send(
                    ref.request_port,
                    message.encode_segments(),
                    KIND_REQUEST,
                )
            except TransportError as exc:
                xfer_span.note(error=str(exc)).end()
                if spec.oneway:
                    raise
                return Failure(
                    "transport", "COMM_FAILURE", str(exc),
                    rank=runtime.rank,
                )
            xfer_span.end()
            return None

        first_failure = send_phase()
        if spec.oneway:
            if rts is not None:
                rts.synchronize()
            inv_span.end()
            return ("done", None)

        def complete() -> Any:
            try:
                result = self._complete_ft(
                    runtime, spec, request_id, args_by_name, tracer,
                    out_templates or {}, ctl, first_failure, send_phase,
                )
            except BaseException as exc:
                runtime.demux.discard(request_id)
                inv_span.note(error=repr(exc)).end()
                raise
            inv_span.note(attempts=ctl.attempts).end()
            return result

        return ("pending", complete)

    def _complete_ft(
        self,
        runtime: "ClientRuntimeLike",
        spec: OperationSpec,
        request_id: int,
        args_by_name: dict[str, Any],
        tracer: Tracer | None,
        out_templates: dict[str, tuple],
        ctl: _FtInvocation,
        first_failure: Failure | None,
        send_phase: Any,
    ) -> Any:
        """The retrying reply loop: wait, vote, deliver or re-send."""
        rts = runtime.rts
        pending = first_failure
        while True:
            local = pending
            pending = None
            reply = None
            header = None
            reply_span = span_or_null(
                ctl.trace, "reply", trace_id=ctl.trace_id, side="client",
                rank=runtime.rank, attempt=ctl.attempts,
            )
            if local is None and runtime.rank == 0:
                try:
                    reply = runtime.demux.wait(
                        request_id, timeout=ctl.attempt_timeout()
                    )
                except TransportTimeout as exc:
                    local = ctl.timeout_failure(exc)
                except TransportError as exc:
                    local = Failure(
                        "transport", "COMM_FAILURE", str(exc), rank=0
                    )
                else:
                    if tracer:
                        tracer.emit(
                            "net-reply", self.mode, len(reply.body)
                        )
                    status = reply.status
                    error_body = (
                        None
                        if status == wire.STATUS_OK
                        else bytes(reply.body)
                    )
                    local = _retryable_remote(
                        ctl.policy, status, error_body
                    )
                    if local is None:
                        header = (status, error_body)
            # Agreement: the vote that carries rank 0's header on
            # success, and elects the canonical failure otherwise, so
            # all ranks leave this point with the same next move.
            failure, header = agree(rts, local, header)
            ctl.note_agreement()
            if failure is None:
                result = self._deliver_reply(
                    runtime, spec, reply, header, args_by_name, tracer,
                    out_templates,
                )
                # Retire the id: a duplicated late reply frame must
                # not pile up in the demux forever.
                runtime.demux.discard(request_id)
                reply_span.end()
                return result
            reply_span.note(failure=failure.kind).end()
            if ctl.next_action(failure) == "retry":
                with span_or_null(
                    ctl.trace, "retry", trace_id=ctl.trace_id,
                    side="client", rank=runtime.rank,
                    attempt=ctl.attempts + 1, failure=failure.kind,
                ):
                    ctl.before_retry()
                    pending = send_phase()
                continue
            ctl.raise_failure(failure)

    def _deliver_reply(
        self,
        runtime: "ClientRuntimeLike",
        spec: OperationSpec,
        reply: ReplyMessage | None,
        header: tuple[int, bytes | None],
        args_by_name: dict[str, Any],
        tracer: Tracer | None,
        out_templates: dict[str, tuple],
    ) -> Any:
        rts = runtime.rts
        rep_slots = reply_slots(spec)
        # The communicating thread decodes; peers learned the status
        # (and, on failure, the small exception body) from the
        # agreement vote — the bulk reply body stays on rank 0 as a
        # view into the receive buffer and reaches the peers by
        # scatter; views do not survive pickling.
        status, error_body = header
        if status != wire.STATUS_OK:
            self._raise_for_status(spec, status, error_body)
        if runtime.rank == 0:
            values = decode_full_body(rep_slots, reply.body)
            detach_plain_values(rep_slots, values)
        else:
            values = {}

        composed: list[Any] = []
        for slot in rep_slots:
            if not slot.distributed:
                continue
            full = values.get(slot.name)
            length = len(full) if runtime.rank == 0 else 0
            if rts is not None:
                length = rts.broadcast(length, root=0)
            layout = self._client_reply_layout(
                slot, length, args_by_name, runtime, out_templates
            )
            local = np.zeros(
                layout.local_length(runtime.rank),
                dtype=slot.typecode.element_dtype,  # type: ignore[attr-defined]
            )
            if rts is None:
                copied(local.nbytes)
                local[:] = full
            else:
                steps = transfer_schedule(
                    _single_rank_layout(length), layout
                )
                if tracer and runtime.rank == 0:
                    for step in steps:
                        if step.dst_rank != 0:
                            tracer.emit(
                                "rts-scatter", "client", 0, step.dst_rank,
                                step.nelems,
                            )
                rts.scatter_chunks(
                    np.asarray(full) if runtime.rank == 0 else None,
                    steps,
                    root=0,
                    out=local,
                )
            values[slot.name] = self._install_reply_sequence(
                slot, layout, local, args_by_name, runtime
            )

        if rts is not None:
            plain = {
                s.name: values.get(s.name)
                for s in rep_slots
                if not s.distributed
            }
            plain = rts.broadcast(plain, root=0)
            values.update(plain)
            if tracer:
                tracer.emit("sync", "client", "post-invoke")
            rts.synchronize()
        return compose(
            [values[s.name] for s in produced_slots(spec)]
        )


class MultiPortTransfer(TransferEngine):
    """§3.3: centralized header, direct thread-to-thread data."""

    mode = wire.MODE_MULTIPORT

    def invoke_begin(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        out_templates: dict[str, tuple] | None = None,
        ft_policy: Any = None,
        on_degrade: Any = None,
        trace_id: int | None = None,
    ) -> tuple[str, Any]:
        if not ref.multiport_capable:
            raise RemoteError(
                f"object '{ref.object_key}' does not advertise data "
                f"ports; multi-port transfer is unavailable",
                category="NO_RESOURCES",
            )
        tracer = runtime.tracer
        req_slots = request_slots(spec)
        if len(args) != len(req_slots):
            raise TypeError(
                f"{spec.name}() takes {len(req_slots)} arguments, got "
                f"{len(args)}"
            )
        args_by_name = dict(zip((s.name for s in req_slots), args))
        rts = runtime.rts
        if rts is not None:
            if tracer:
                tracer.emit("sync", "client", "pre-invoke")
            rts.synchronize()
        request_id = runtime.next_request_id()
        ctl = _FtInvocation(
            runtime, spec, effective_policy(ft_policy, runtime), request_id,
            trace_id=trace_id,
        )
        trace, trace_id = ctl.trace, ctl.trace_id
        inv_span = span_or_null(
            trace, "invoke", trace_id=trace_id, side="client",
            rank=runtime.rank, op=spec.name, engine=self.mode,
            request_id=request_id,
        )

        # Validate distributed arguments and record their layouts in
        # the header, so the server can compute the same schedules.
        dist_layouts = []
        for slot in req_slots:
            if not slot.distributed:
                continue
            seq = self._check_dseq_arg(slot, args_by_name[slot.name], runtime)
            dist_layouts.append((slot.name, seq.layout.local_lengths()))

        def send_phase() -> Failure | None:
            """One full send: header plus this rank's chunks.

            Re-run verbatim on retry (same request id — the server's
            collector dedups re-delivered chunk ranges, its reply
            cache dedups the header).  Failures are *filed* for the
            agreement vote in ``complete``, with one distinction: a
            chunk-send failure is ``"unreachable"`` — the data never
            reached the owning server thread, so the group may degrade
            to the centralized method under a fresh id without risking
            double execution.
            """
            # The invocation header is delivered using the centralized
            # method (§3.3): the communicating thread sends it.
            message = None
            if runtime.rank == 0:
                enc_span = span_or_null(
                    trace, "encode", trace_id=trace_id, side="client",
                    rank=runtime.rank, op=spec.name,
                )
                body = plain_body_encoder(req_slots, args_by_name)
                message = RequestMessage(
                    request_id=request_id,
                    trace_id=trace_id,
                    object_key=ref.object_key,
                    operation=spec.name,
                    mode=self.mode,
                    oneway=spec.oneway,
                    reply_port=(
                        None
                        if spec.oneway
                        else runtime.reply_port.address
                    ),
                    client_nthreads=runtime.size,
                    client_data_ports=runtime.data_port_addresses,
                    dist_layouts=tuple(dist_layouts),
                    out_templates=tuple(
                        sorted((out_templates or {}).items())
                    ),
                    body=body,
                )
                enc_span.note(nbytes=len(body)).end()
            xfer_span = span_or_null(
                trace, "transfer", trace_id=trace_id, side="client",
                rank=runtime.rank,
            )
            if runtime.rank == 0:
                if tracer:
                    tracer.emit(
                        "net-request", self.mode, spec.name,
                        len(message.body),
                    )
                try:
                    runtime.reply_port.send(
                        ref.request_port,
                        message.encode_segments(),
                        KIND_REQUEST,
                    )
                except TransportError as exc:
                    xfer_span.note(error=str(exc)).end()
                    if spec.oneway:
                        raise
                    return Failure(
                        "transport", "COMM_FAILURE", str(exc), rank=0
                    )

            # Each thread ships its own chunks straight to the owning
            # server threads.
            try:
                for slot in req_slots:
                    if not slot.distributed:
                        continue
                    seq: DistributedSequence = args_by_name[slot.name]
                    dst_layout = server_layout(
                        ref.template_spec(spec.name, slot.name),
                        seq.length(),
                        ref.nthreads,
                    )
                    steps = transfer_schedule(seq.layout, dst_layout)
                    send_chunks(
                        runtime.data_port,
                        ref.data_ports,
                        steps,
                        runtime.rank,
                        seq.local_data(),
                        request_id,
                        slot.name,
                        wire.PHASE_REQUEST,
                        tracer,
                    )
            except TransportError as exc:
                xfer_span.note(error=str(exc)).end()
                if spec.oneway:
                    raise
                return Failure(
                    "unreachable", "COMM_FAILURE", str(exc),
                    rank=runtime.rank,
                )
            xfer_span.end()
            return None

        first_failure = send_phase()
        if spec.oneway:
            if rts is not None:
                rts.synchronize()
            inv_span.end()
            return ("done", None)

        def complete() -> Any:
            try:
                result = self._complete_ft(
                    runtime, ref, spec, args, request_id, args_by_name,
                    tracer, out_templates or {}, ctl, first_failure,
                    send_phase, on_degrade,
                )
            except BaseException as exc:
                # Abandoned request: evict its chunks and drop any
                # late reply so nothing accumulates.
                runtime.demux.discard(request_id)
                runtime.collector.discard(request_id)
                inv_span.note(error=repr(exc)).end()
                raise
            inv_span.note(attempts=ctl.attempts).end()
            return result

        return ("pending", complete)

    def _complete_ft(
        self,
        runtime: "ClientRuntimeLike",
        ref: ObjectReference,
        spec: OperationSpec,
        args: tuple,
        request_id: int,
        args_by_name: dict[str, Any],
        tracer: Tracer | None,
        out_templates: dict[str, tuple],
        ctl: _FtInvocation,
        first_failure: Failure | None,
        send_phase: Any,
        on_degrade: Any,
    ) -> Any:
        """The retrying reply loop: two agreement stages per attempt.

        Stage 1 votes on the reply header (rank 0's receive), stage 2
        on chunk collection (every rank receives on its own data
        port).  Received chunk data is staged and only installed into
        argument sequences after stage 2 succeeds, so a failed attempt
        never leaves a rank's ``inout`` arguments half-updated.
        """
        rts = runtime.rts
        rep_slots = reply_slots(spec)
        pending = first_failure
        while True:
            local = pending
            pending = None
            reply = None
            header_payload = None
            reply_span = span_or_null(
                ctl.trace, "reply", trace_id=ctl.trace_id, side="client",
                rank=runtime.rank, attempt=ctl.attempts,
            )
            if local is None and runtime.rank == 0:
                try:
                    reply = runtime.demux.wait(
                        request_id, timeout=ctl.attempt_timeout()
                    )
                except TransportTimeout as exc:
                    local = ctl.timeout_failure(exc)
                except TransportError as exc:
                    local = Failure(
                        "transport", "COMM_FAILURE", str(exc), rank=0
                    )
                else:
                    if tracer:
                        tracer.emit(
                            "net-reply", self.mode, len(reply.body)
                        )
                    # The multi-port reply body holds plain values
                    # only (bulk data travels as chunks); a small
                    # bytes copy makes it voteable to the peer ranks.
                    body = bytes(reply.body)
                    copied(len(body))
                    local = _retryable_remote(
                        ctl.policy, reply.status, body
                    )
                    if local is None:
                        header_payload = (
                            reply.status, body, reply.dist_layouts
                        )
            failure, header = agree(rts, local, header_payload)
            ctl.note_agreement()
            if failure is None:
                status, body, reply_layouts = header
                if status != wire.STATUS_OK:
                    self._raise_for_status(spec, status, body)
                values = decode_plain_body(rep_slots, body)
                detach_plain_values(rep_slots, values)
                reply_layout_map = {
                    name: (client_lengths, server_lengths)
                    for name, client_lengths, server_lengths
                    in reply_layouts
                }
                # Stage 2: collect this rank's chunks into staged
                # buffers (installed only after the vote below).
                staged: list[tuple[Slot, Layout, np.ndarray]] = []
                local2: Failure | None = None
                try:
                    for slot in rep_slots:
                        if not slot.distributed:
                            continue
                        lengths = reply_layout_map.get(slot.name)
                        if lengths is None:
                            raise RemoteError(
                                f"reply is missing the layout of "
                                f"'{slot.name}'",
                                category="MARSHAL",
                            )
                        client_lengths, server_lengths = lengths
                        layout = Layout.from_local_lengths(client_lengths)
                        src_layout = Layout.from_local_lengths(
                            server_lengths
                        )
                        if layout.nranks != runtime.size:
                            raise RemoteError(
                                f"reply layout of '{slot.name}' spans "
                                f"{layout.nranks} threads, client has "
                                f"{runtime.size}",
                                category="MARSHAL",
                            )
                        if src_layout.length != layout.length:
                            raise RemoteError(
                                f"reply layouts of '{slot.name}' "
                                f"disagree on length",
                                category="MARSHAL",
                            )
                        dtype = slot.typecode.element_dtype  # type: ignore[attr-defined]
                        local_arr = np.zeros(
                            layout.local_length(runtime.rank), dtype=dtype
                        )
                        # Both sides compute the same reply schedule
                        # (the server's final layout → the client
                        # layout in the reply), so the expected chunk
                        # count is exact.
                        steps = transfer_schedule(src_layout, layout)
                        expected = sum(
                            1 for s in steps
                            if s.dst_rank == runtime.rank
                        )
                        chunks = runtime.collector.collect(
                            request_id,
                            slot.name,
                            wire.PHASE_REPLY,
                            expected,
                            timeout=ctl.attempt_timeout() or 60.0,
                        )
                        assemble_chunks(
                            chunks, layout, runtime.rank, dtype,
                            local_arr,
                        )
                        staged.append((slot, layout, local_arr))
                except TransportTimeout as exc:
                    local2 = ctl.timeout_failure(exc)
                except (TransportError, MarshalError) as exc:
                    local2 = Failure(
                        "transport", "COMM_FAILURE", str(exc),
                        rank=runtime.rank,
                    )
                failure = agree_failure(rts, local2)
                ctl.note_agreement()
                if failure is None:
                    for slot, layout, local_arr in staged:
                        values[slot.name] = self._install_reply_sequence(
                            slot, layout, local_arr, args_by_name,
                            runtime,
                        )
                    if rts is not None:
                        if tracer:
                            tracer.emit("sync", "client", "post-invoke")
                        rts.synchronize()
                    # Retire the id: late/duplicated frames for it are
                    # dropped on arrival from now on.
                    runtime.demux.discard(request_id)
                    runtime.collector.discard(request_id)
                    reply_span.end()
                    return compose(
                        [values[s.name] for s in produced_slots(spec)]
                    )
            reply_span.note(failure=failure.kind).end()
            action = ctl.next_action(failure)
            if action == "retry":
                with span_or_null(
                    ctl.trace, "retry", trace_id=ctl.trace_id,
                    side="client", rank=runtime.rank,
                    attempt=ctl.attempts + 1, failure=failure.kind,
                ):
                    ctl.before_retry()
                    pending = send_phase()
                continue
            if action == "degrade":
                # The data path to some server thread is gone but the
                # header path works: collectively fall back to the
                # centralized method.  The failed attempt's data never
                # reached the owning thread, so the server cannot have
                # executed it — a fresh-id centralized invocation is
                # exactly-once safe.  The original trace id rides into
                # the fallback, so the degraded attempt's spans stay in
                # the same logical trace.
                ctl.note_degraded()
                runtime.demux.discard(request_id)
                runtime.collector.discard(request_id)
                if on_degrade is not None:
                    on_degrade()
                with span_or_null(
                    ctl.trace, "degrade", trace_id=ctl.trace_id,
                    side="client", rank=runtime.rank,
                    from_engine=wire.MODE_MULTIPORT,
                    to_engine=wire.MODE_CENTRALIZED,
                ):
                    return CentralizedTransfer().invoke(
                        runtime, ref, spec, args, out_templates,
                        ft_policy=ctl.policy,
                        trace_id=ctl.trace_id,
                    )
            ctl.raise_failure(failure)

class ClientRuntimeLike:
    """Structural documentation of what engines need from a runtime.

    The real implementation is :class:`repro.orb.proxy.ClientRuntime`;
    this stub exists so the engine signatures are self-describing.
    """

    rank: int
    size: int
    rts: Any
    app_comm: Any
    reply_port: Port
    data_port: Port
    data_port_addresses: tuple
    collector: ChunkCollector
    demux: ReplyDemux
    tracer: Tracer | None
    #: ``repro.trace`` recorder (None = tracing off, the default).
    trace: Any = None
    timeout: float
    #: Optional fault-tolerance surface (engines fall back gracefully
    #: when a runtime stub lacks these): the ORB-wide FtPolicy, the
    #: per-runtime FtStats, and the collective-sequence counter.
    ft_policy: Any = None
    ft_stats: Any = None

    def next_request_id(self) -> int:
        raise NotImplementedError

    def next_collective_index(self) -> int:
        raise NotImplementedError
