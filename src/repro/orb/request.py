"""Request, reply and data-chunk wire messages (the GIOP role).

Every message is a CDR stream.  The request header frames the opaque
argument body produced by the transfer engine; for the multi-port
method the header additionally carries, per distributed parameter, the
client-side layout (local lengths), from which both sides compute the
identical transfer schedule — this is the "information contained in
the transfer header" of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError, TC_ULONGLONG as _TC_ULONGLONG
from repro.orb.transport import PortAddress

#: Transfer modes on the wire.
MODE_CENTRALIZED = "centralized"
MODE_MULTIPORT = "multiport"

#: Reply status codes.
STATUS_OK = 0
STATUS_USER_EXCEPTION = 1
STATUS_SYSTEM_EXCEPTION = 2

#: Data-chunk phases.
PHASE_REQUEST = 0
PHASE_REPLY = 1


def _write_port(enc: CdrEncoder, port) -> None:
    """Encode an address: in-process (:class:`PortAddress`) or TCP
    (:class:`~repro.orb.socketnet.SocketPortAddress`); a null address
    travels as port id 0."""
    enc.write_ulong(0 if port is None else port.port_id)
    enc.write_string("" if port is None else port.label)
    enc.write_string(getattr(port, "host", "") or "")
    enc.write_ulong(getattr(port, "tcp_port", 0) or 0)


def _read_port(dec: CdrDecoder):
    port_id = dec.read_ulong()
    label = dec.read_string()
    host = dec.read_string()
    tcp_port = dec.read_ulong()
    if port_id == 0:
        return None
    if host:
        from repro.orb.socketnet import SocketPortAddress

        return SocketPortAddress(host, tcp_port, port_id, label)
    return PortAddress(port_id, label)


def _append_body(enc: CdrEncoder, body: Any) -> None:
    """Length-prefix ``body`` and append it without copying: encoder
    bodies contribute their segments, buffers travel by reference."""
    enc.write_ulong(len(body))
    if isinstance(body, CdrEncoder):
        enc.append_encoder(body)
    else:
        enc.write_octets_view(body)


def _flatten(segments: list[Any]) -> bytes:
    if len(segments) == 1 and isinstance(segments[0], bytes):
        return segments[0]
    return b"".join(
        s if isinstance(s, bytes) else bytes(s) for s in segments
    )


@dataclass(frozen=True)
class RequestMessage:
    """One operation invocation as it crosses the network."""

    request_id: int
    object_key: str
    operation: str
    #: Trace correlation id (``repro.trace``): equal to the *first*
    #: attempt's request id and preserved across retries and
    #: multiport→centralized degradation, so client- and server-side
    #: spans of every attempt of a collective invocation correlate.
    #: Zero when tracing is off.
    trace_id: int = 0
    mode: str = MODE_CENTRALIZED
    oneway: bool = False
    reply_port: PortAddress | None = None
    client_nthreads: int = 1
    client_data_ports: tuple[PortAddress, ...] = ()
    #: (param name, per-rank local lengths) for each distributed
    #: parameter the client sends or expects back.
    dist_layouts: tuple[tuple[str, tuple[int, ...]], ...] = ()
    #: (param name, template spec) for out/return distributed values
    #: whose client-side distribution the caller preset (§2.2: "an
    #: 'out' argument should be initialized by a distribution template
    #: before calling the operation which returns it").
    out_templates: tuple[tuple[str, tuple], ...] = ()
    #: Marshaled argument body: bytes-like, or a CdrEncoder whose
    #: segments are appended by reference (zero-copy send path).
    body: Any = b""

    def encode_segments(self) -> list[Any]:
        """The wire form as a buffer list (no payload flatten)."""
        enc = CdrEncoder()
        enc.write(_TC_ULONGLONG, self.request_id)
        enc.write(_TC_ULONGLONG, self.trace_id)
        enc.write_string(self.object_key)
        enc.write_string(self.operation)
        enc.write_string(self.mode)
        enc.write_boolean(self.oneway)
        _write_port(enc, self.reply_port)
        enc.write_ulong(self.client_nthreads)
        enc.write_ulong(len(self.client_data_ports))
        for port in self.client_data_ports:
            _write_port(enc, port)
        enc.write_ulong(len(self.dist_layouts))
        for name, lengths in self.dist_layouts:
            enc.write_string(name)
            enc.write_ulong(len(lengths))
            for length in lengths:
                enc.write(_TC_ULONGLONG, int(length))
        enc.write_ulong(len(self.out_templates))
        for name, spec in self.out_templates:
            enc.write_string(name)
            enc.write_string(spec[0])
            weights = spec[1] if len(spec) > 1 else ()
            enc.write_ulong(len(weights))
            for weight in weights:
                enc.write_ulong(int(weight))
        _append_body(enc, self.body)
        return enc.segments()

    def encode(self) -> bytes:
        return _flatten(self.encode_segments())

    def without_body(self) -> "RequestMessage":
        """A copy safe to broadcast to peer ranks: the (possibly huge,
        possibly buffer-view) body is dropped — only rank 0 decodes
        it, and views do not survive pickling."""
        return replace(self, body=b"")

    def out_template_of(self, param: str) -> tuple | None:
        for name, spec in self.out_templates:
            if name == param:
                return spec
        return None

    def layout_of(self, param: str) -> tuple[int, ...] | None:
        for name, lengths in self.dist_layouts:
            if name == param:
                return lengths
        return None


@dataclass(frozen=True)
class RequestRouting:
    """The head of a request frame — just the fields server-side
    admission control and backpressure need, decoded without touching
    the data ports, layouts, templates or body."""

    request_id: int
    trace_id: int
    operation: str
    oneway: bool
    reply_port: PortAddress | None

    @property
    def client_identity(self) -> int:
        """The 64-bit id's high half: the sending client runtime."""
        return self.request_id >> 32


def peek_request(data: Any) -> RequestRouting | None:
    """Partially decode a request frame for admission decisions.

    Reads only through the reply port — a few dozen bytes — so the
    event loop can attribute a frame to a client identity and decide
    admission before the full (possibly large) message is decoded by
    the dispatch layer.  Returns ``None`` for anything that is not a
    well-formed request head; such frames are delivered unaccounted
    and dropped downstream like any other garbage.
    """
    try:
        dec = CdrDecoder(data)
        request_id = int(dec.read(_TC_ULONGLONG))
        trace_id = int(dec.read(_TC_ULONGLONG))
        dec.read_string()  # object_key
        operation = dec.read_string()
        mode = dec.read_string()
        if mode not in (MODE_CENTRALIZED, MODE_MULTIPORT):
            return None
        oneway = dec.read_boolean()
        reply_port = _read_port(dec)
    except Exception:
        return None
    return RequestRouting(
        request_id=request_id,
        trace_id=trace_id,
        operation=operation,
        oneway=oneway,
        reply_port=reply_port,
    )


def decode_request(data: bytes) -> RequestMessage:
    """Parse a request message off the wire."""
    dec = CdrDecoder(data)
    request_id = int(dec.read(_TC_ULONGLONG))
    trace_id = int(dec.read(_TC_ULONGLONG))
    object_key = dec.read_string()
    operation = dec.read_string()
    mode = dec.read_string()
    if mode not in (MODE_CENTRALIZED, MODE_MULTIPORT):
        raise MarshalError(f"unknown transfer mode {mode!r}")
    oneway = dec.read_boolean()
    reply_port = _read_port(dec)
    client_nthreads = dec.read_ulong()
    nports = dec.read_ulong()
    ports = []
    for _ in range(nports):
        port = _read_port(dec)
        if port is None:
            raise MarshalError("null client data port")
        ports.append(port)
    nlayouts = dec.read_ulong()
    layouts = []
    for _ in range(nlayouts):
        name = dec.read_string()
        count = dec.read_ulong()
        lengths = tuple(int(dec.read(_TC_ULONGLONG)) for _ in range(count))
        layouts.append((name, lengths))
    ntemplates = dec.read_ulong()
    out_templates = []
    for _ in range(ntemplates):
        name = dec.read_string()
        kind = dec.read_string()
        nweights = dec.read_ulong()
        weights = tuple(dec.read_ulong() for _ in range(nweights))
        out_templates.append(
            (name, (kind,) if not weights else (kind, weights))
        )
    body_len = dec.read_ulong()
    body = dec.read_octets(body_len)
    return RequestMessage(
        request_id=request_id,
        trace_id=trace_id,
        object_key=object_key,
        operation=operation,
        mode=mode,
        oneway=oneway,
        reply_port=reply_port,
        client_nthreads=client_nthreads,
        client_data_ports=tuple(ports),
        dist_layouts=tuple(layouts),
        out_templates=tuple(out_templates),
        body=body,
    )


@dataclass(frozen=True)
class ReplyMessage:
    """The server's answer to a request."""

    request_id: int
    status: int = STATUS_OK
    #: Marshaled result body: bytes-like, or a CdrEncoder appended by
    #: reference on the send path.
    body: Any = b""
    #: Per returned distributed parameter: (name, client-side local
    #: lengths, server-side local lengths).  The client needs both to
    #: place the data and to predict the chunk schedule — the server's
    #: *final* layout can differ from the registered template when the
    #: servant resized the sequence.
    dist_layouts: tuple[tuple[str, tuple[int, ...], tuple[int, ...]], ...] = ()

    def encode_segments(self) -> list[Any]:
        """The wire form as a buffer list (no payload flatten)."""
        enc = CdrEncoder()
        enc.write(_TC_ULONGLONG, self.request_id)
        enc.write_ulong(self.status)
        enc.write_ulong(len(self.dist_layouts))
        for name, client_lengths, server_lengths in self.dist_layouts:
            enc.write_string(name)
            for lengths in (client_lengths, server_lengths):
                enc.write_ulong(len(lengths))
                for length in lengths:
                    enc.write(_TC_ULONGLONG, int(length))
        _append_body(enc, self.body)
        return enc.segments()

    def encode(self) -> bytes:
        return _flatten(self.encode_segments())

    def layout_of(
        self, param: str
    ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        for name, client_lengths, server_lengths in self.dist_layouts:
            if name == param:
                return client_lengths, server_lengths
        return None


def decode_reply(data: bytes) -> ReplyMessage:
    """Parse a reply message off the wire."""
    dec = CdrDecoder(data)
    request_id = int(dec.read(_TC_ULONGLONG))
    status = dec.read_ulong()
    if status not in (
        STATUS_OK,
        STATUS_USER_EXCEPTION,
        STATUS_SYSTEM_EXCEPTION,
    ):
        raise MarshalError(f"unknown reply status {status}")
    nlayouts = dec.read_ulong()
    layouts = []
    for _ in range(nlayouts):
        name = dec.read_string()
        pair = []
        for _side in range(2):
            count = dec.read_ulong()
            pair.append(
                tuple(int(dec.read(_TC_ULONGLONG)) for _ in range(count))
            )
        layouts.append((name, pair[0], pair[1]))
    body_len = dec.read_ulong()
    body = dec.read_octets(body_len)
    return ReplyMessage(
        request_id=request_id,
        status=status,
        body=body,
        dist_layouts=tuple(layouts),
    )


@dataclass(frozen=True)
class DataChunk:
    """One contiguous slice of a distributed argument in flight
    (multi-port method) — the unit of thread-to-thread transfer."""

    request_id: int
    param: str
    phase: int  # PHASE_REQUEST or PHASE_REPLY
    src_rank: int
    dst_rank: int
    global_lo: int
    global_hi: int
    #: Raw element bytes: bytes-like, including a memoryview of the
    #: sender's local block (shipped by reference, never flattened).
    payload: Any = b""

    def encode_segments(self) -> list[Any]:
        """The wire form as a buffer list — the payload view rides
        along by reference, so a chunk send never copies the data."""
        enc = CdrEncoder()
        enc.write(_TC_ULONGLONG, self.request_id)
        enc.write_string(self.param)
        enc.write_ulong(self.phase)
        enc.write_ulong(self.src_rank)
        enc.write_ulong(self.dst_rank)
        enc.write(_TC_ULONGLONG, self.global_lo)
        enc.write(_TC_ULONGLONG, self.global_hi)
        enc.write_ulong(len(self.payload))
        enc.write_octets_view(self.payload)
        return enc.segments()

    def encode(self) -> bytes:
        return _flatten(self.encode_segments())

    def elements(self, dtype: np.dtype) -> np.ndarray:
        """Decode the payload as elements of ``dtype`` (native order;
        chunk payloads are produced by the same CDR element rules).

        Returns a view over the payload buffer — no copy; read-only
        when the payload is a decoder view."""
        expected = (self.global_hi - self.global_lo) * dtype.itemsize
        if len(self.payload) != expected:
            raise MarshalError(
                f"chunk for '{self.param}' carries {len(self.payload)} "
                f"bytes, expected {expected}"
            )
        return np.frombuffer(self.payload, dtype=dtype)


def decode_chunk(data: bytes) -> DataChunk:
    """Parse a data-chunk message off the wire."""
    dec = CdrDecoder(data)
    request_id = int(dec.read(_TC_ULONGLONG))
    param = dec.read_string()
    phase = dec.read_ulong()
    if phase not in (PHASE_REQUEST, PHASE_REPLY):
        raise MarshalError(f"unknown chunk phase {phase}")
    src_rank = dec.read_ulong()
    dst_rank = dec.read_ulong()
    global_lo = int(dec.read(_TC_ULONGLONG))
    global_hi = int(dec.read(_TC_ULONGLONG))
    if global_hi < global_lo:
        raise MarshalError("chunk range is inverted")
    payload_len = dec.read_ulong()
    payload = dec.read_octets(payload_len)
    return DataChunk(
        request_id=request_id,
        param=param,
        phase=phase,
        src_rank=src_rank,
        dst_rank=dst_rank,
        global_lo=global_lo,
        global_hi=global_hi,
        payload=payload,
    )
