"""TCP transport: the fabric over real sockets.

The in-process :class:`~repro.orb.transport.Fabric` carries everything
inside one interpreter.  This module provides the same contract over
loopback/LAN TCP, so PARDIS components can live in *separate OS
processes* (or machines): a :class:`SocketFabric` listens on one TCP
endpoint and demultiplexes frames onto its local ports; addresses
(:class:`SocketPortAddress`) carry the TCP endpoint, so they remain
routable after travelling inside an IOR.

A companion naming protocol (:class:`NamingServer`,
:class:`RemoteNamingClient`) exposes one process's
:class:`~repro.orb.naming.NamingService` to the others, completing the
minimum needed for a true multi-process deployment — see
``examples/two_process_demo.py``.

Wire framing (per message, after a 4-byte big-endian length prefix) is
a CDR stream: destination port id, source address (host, tcp port,
port id, label), kind, payload octets.  Naming requests/replies use
the same framing with a small op/string vocabulary.  Nothing here is
pickled off the wire, so a hostile peer can at worst produce a
:class:`~repro.cdr.typecodes.MarshalError`.
"""

from __future__ import annotations

import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError
from repro.orb.naming import NamingError, NamingService
from repro.orb.reference import ObjectReference
from repro.orb.transport import Meter, Port, TransportError, _Delivery

_LENGTH = struct.Struct(">I")
#: Refuse frames above this size (sanity bound, 256 MiB).
_MAX_FRAME = 256 * 1024 * 1024


@dataclass(frozen=True, order=True)
class SocketPortAddress:
    """A routable address: TCP endpoint plus local port id."""

    host: str
    tcp_port: int
    port_id: int
    label: str = field(compare=False, default="")

    def __repr__(self) -> str:
        return (
            f"<port {self.host}:{self.tcp_port}/{self.port_id} "
            f"{self.label!r}>"
        )


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(min(n, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _read_frame(sock: socket.socket) -> bytes:
    (length,) = _LENGTH.unpack(_recv_exact(sock, 4))
    if length > _MAX_FRAME:
        raise MarshalError(f"frame of {length} bytes exceeds the bound")
    return _recv_exact(sock, length)


def _write_frame(sock: socket.socket, frame: bytes) -> None:
    sock.sendall(_LENGTH.pack(len(frame)) + frame)


class SocketFabric:
    """Drop-in Fabric whose sends travel over TCP.

    One instance per process; ``bind_host``/``bind_port`` choose the
    listening endpoint (port 0 lets the OS pick).  Ports opened here
    behave exactly like in-process ports — same :class:`Port` class,
    blocking ``recv`` with kind filtering — and their addresses are
    valid on any peer that can reach this endpoint.
    """

    def __init__(
        self,
        name: str = "socket-fabric",
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._ports: dict[int, Port] = {}
        self._next_port_id = 1
        self._meters: list[Meter] = []
        self._connections: dict[tuple[str, int], socket.socket] = {}
        self._conn_locks: dict[tuple[str, int], threading.Lock] = {}
        self._closed = False
        self._server = socket.create_server(
            (bind_host, bind_port), reuse_port=False
        )
        self.host, self.tcp_port = self._server.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name=f"{name}-accept",
            daemon=True,
        )
        self._acceptor.start()

    # -- fabric contract ---------------------------------------------------

    def open_port(self, label: str = "") -> Port:
        with self._lock:
            if self._closed:
                raise TransportError("fabric is closed")
            port_id = self._next_port_id
            self._next_port_id += 1
            address = SocketPortAddress(
                self.host, self.tcp_port, port_id, label
            )
            port = Port(self, address)
            self._ports[port_id] = port
        return port

    def send(
        self,
        src: SocketPortAddress,
        dest: SocketPortAddress,
        payload: bytes,
        kind: str = "data",
    ) -> None:
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TransportError(
                "transport carries marshaled bytes only; got "
                f"{type(payload).__name__}"
            )
        payload = bytes(payload)
        with self._lock:
            meters = list(self._meters)
        for meter in meters:
            meter(src, dest, kind, len(payload))
        if (dest.host, dest.tcp_port) == (self.host, self.tcp_port):
            self._deliver_local(dest.port_id, src, kind, payload)
            return
        frame = self._encode_frame(src, dest, kind, payload)
        self._send_remote((dest.host, dest.tcp_port), frame)

    def add_meter(self, meter: Meter) -> None:
        """Observe every outgoing message (same hook as Fabric)."""
        with self._lock:
            self._meters.append(meter)

    def remove_meter(self, meter: Meter) -> None:
        with self._lock:
            self._meters.remove(meter)

    def _unregister(self, address: Any) -> None:
        with self._lock:
            self._ports.pop(address.port_id, None)

    def open_port_count(self) -> int:
        with self._lock:
            return len(self._ports)

    # -- wiring ------------------------------------------------------------

    @staticmethod
    def _encode_frame(
        src: SocketPortAddress,
        dest: SocketPortAddress,
        kind: str,
        payload: bytes,
    ) -> bytes:
        enc = CdrEncoder()
        enc.write_ulong(dest.port_id)
        enc.write_string(src.host)
        enc.write_ulong(src.tcp_port)
        enc.write_ulong(src.port_id)
        enc.write_string(src.label)
        enc.write_string(kind)
        enc.write_ulong(len(payload))
        enc.write_octets(payload)
        return enc.getvalue()

    def _deliver_local(
        self,
        dest_port_id: int,
        src: SocketPortAddress,
        kind: str,
        payload: bytes,
    ) -> None:
        with self._lock:
            port = self._ports.get(dest_port_id)
        if port is None:
            raise TransportError(
                f"no port {dest_port_id} at {self.host}:{self.tcp_port}"
            )
        port._deposit(_Delivery(src, kind, payload))

    def _send_remote(
        self, endpoint: tuple[str, int], frame: bytes
    ) -> None:
        with self._lock:
            sock = self._connections.get(endpoint)
            if sock is None:
                try:
                    sock = socket.create_connection(endpoint, timeout=10)
                except OSError as exc:
                    raise TransportError(
                        f"cannot reach {endpoint[0]}:{endpoint[1]}: {exc}"
                    ) from None
                self._connections[endpoint] = sock
                self._conn_locks[endpoint] = threading.Lock()
            conn_lock = self._conn_locks[endpoint]
        with conn_lock:
            try:
                _write_frame(sock, frame)
            except OSError as exc:
                with self._lock:
                    self._connections.pop(endpoint, None)
                raise TransportError(
                    f"send to {endpoint[0]}:{endpoint[1]} failed: {exc}"
                ) from None

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._server.accept()
            except OSError:
                return  # server socket closed
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"{self.name}-reader",
                daemon=True,
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = _read_frame(conn)
                try:
                    self._dispatch_frame(frame)
                except (MarshalError, TransportError):
                    continue  # drop garbage, keep the connection
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    def _dispatch_frame(self, frame: bytes) -> None:
        dec = CdrDecoder(frame)
        dest_port_id = dec.read_ulong()
        src = SocketPortAddress(
            host=dec.read_string(),
            tcp_port=dec.read_ulong(),
            port_id=dec.read_ulong(),
            label=dec.read_string(),
        )
        kind = dec.read_string()
        payload = dec.read_octets(dec.read_ulong())
        self._deliver_local(dest_port_id, src, kind, payload)

    def close(self) -> None:
        """Stop accepting, close all connections and local ports."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections.values())
            self._connections.clear()
            ports = list(self._ports.values())
        self._server.close()
        for sock in connections:
            sock.close()
        for port in ports:
            if not port.closed:
                port.close()

    def __enter__(self) -> "SocketFabric":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Remote naming
# ---------------------------------------------------------------------------

_OP_BIND = "bind"
_OP_REBIND = "rebind"
_OP_RESOLVE = "resolve"
_OP_UNBIND = "unbind"
_OP_NAMES = "names"


class NamingServer:
    """Serves a :class:`NamingService` over TCP.

    One per deployment, typically in the same process as the first
    server.  Each request is one frame; the reply is one frame.
    """

    def __init__(
        self,
        naming: NamingService | None = None,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ) -> None:
        self.naming = naming or NamingService()
        self._server = socket.create_server((bind_host, bind_port))
        self.host, self.tcp_port = self._server.getsockname()[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, name="naming-server", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle,
                args=(conn,),
                daemon=True,
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            while True:
                request = _read_frame(conn)
                _write_frame(conn, self._answer(request))
        except (ConnectionError, OSError, MarshalError):
            pass
        finally:
            conn.close()

    def _answer(self, request: bytes) -> bytes:
        enc = CdrEncoder()
        try:
            dec = CdrDecoder(request)
            op = dec.read_string()
            if op in (_OP_BIND, _OP_REBIND):
                name = dec.read_string()
                host = dec.read_string()
                ref = ObjectReference.from_ior(dec.read_string())
                method = (
                    self.naming.bind if op == _OP_BIND
                    else self.naming.rebind
                )
                method(name, ref, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_RESOLVE:
                name = dec.read_string()
                host = dec.read_string()
                ref = self.naming.resolve(name, host or None)
                enc.write_boolean(True)
                enc.write_string(ref.ior())
            elif op == _OP_UNBIND:
                name = dec.read_string()
                host = dec.read_string()
                self.naming.unbind(name, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_NAMES:
                entries = self.naming.names()
                enc.write_boolean(True)
                enc.write_ulong(len(entries))
                for name, host in entries:
                    enc.write_string(name)
                    enc.write_string(host)
            else:
                raise NamingError(f"unknown naming operation {op!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            enc = CdrEncoder()
            enc.write_boolean(False)
            enc.write_string(f"{type(exc).__name__}: {exc}")
        return enc.getvalue()

    def close(self) -> None:
        self._closed = True
        self._server.close()

    def __enter__(self) -> "NamingServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteNamingClient:
    """A NamingService façade forwarding to a :class:`NamingServer`.

    Implements the subset the ORB uses (bind/rebind/resolve/unbind/
    names) with one round trip per call.
    """

    def __init__(self, host: str, tcp_port: int) -> None:
        self.host = host
        self.tcp_port = tcp_port
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def _roundtrip(self, frame: bytes) -> CdrDecoder:
        with self._lock:
            if self._sock is None:
                try:
                    self._sock = socket.create_connection(
                        (self.host, self.tcp_port), timeout=10
                    )
                except OSError as exc:
                    raise NamingError(
                        f"naming server {self.host}:{self.tcp_port} "
                        f"unreachable: {exc}"
                    ) from None
            try:
                _write_frame(self._sock, frame)
                reply = _read_frame(self._sock)
            except (OSError, ConnectionError) as exc:
                self._sock.close()
                self._sock = None
                raise NamingError(
                    f"naming round trip failed: {exc}"
                ) from None
        dec = CdrDecoder(reply)
        if not dec.read_boolean():
            raise NamingError(dec.read_string())
        return dec

    def bind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register a reference with the remote naming domain."""
        self._request_with_ref(_OP_BIND, name, host, ref)

    def rebind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register, replacing any existing registration."""
        self._request_with_ref(_OP_REBIND, name, host, ref)

    def _request_with_ref(
        self, op: str, name: str, host: str, ref: ObjectReference
    ) -> None:
        enc = CdrEncoder()
        enc.write_string(op)
        enc.write_string(name)
        enc.write_string(host)
        enc.write_string(ref.ior())
        self._roundtrip(enc.getvalue())

    def resolve(
        self, name: str, host: str | None = None
    ) -> ObjectReference:
        """Look a name up in the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_RESOLVE)
        enc.write_string(name)
        enc.write_string(host or "")
        dec = self._roundtrip(enc.getvalue())
        return ObjectReference.from_ior(dec.read_string())

    def unbind(self, name: str, host: str = "") -> None:
        """Remove a registration from the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_UNBIND)
        enc.write_string(name)
        enc.write_string(host)
        self._roundtrip(enc.getvalue())

    def names(self) -> list[tuple[str, str]]:
        """All (name, host) registrations, sorted."""
        enc = CdrEncoder()
        enc.write_string(_OP_NAMES)
        dec = self._roundtrip(enc.getvalue())
        count = dec.read_ulong()
        return [
            (dec.read_string(), dec.read_string()) for _ in range(count)
        ]

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                self._sock.close()
                self._sock = None
