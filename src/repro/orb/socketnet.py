"""TCP transport: the fabric over real sockets.

The in-process :class:`~repro.orb.transport.Fabric` carries everything
inside one interpreter.  This module provides the same contract over
loopback/LAN TCP, so PARDIS components can live in *separate OS
processes* (or machines): a :class:`SocketFabric` listens on one TCP
endpoint and demultiplexes frames onto its local ports; addresses
(:class:`SocketPortAddress`) carry the TCP endpoint, so they remain
routable after travelling inside an IOR.

The receive side is a single-threaded event loop
(:class:`_ServerLoop`): one ``selectors`` loop owns the listening
socket and every accepted connection, multiplexing any number of
clients without a thread per connection.  A
:class:`~repro.orb.server.ServerGovernor` gates what the loop admits —
connection and request admission control, and per-client backpressure
(the loop stops reading a client's socket while its dispatch queue is
over budget) — see ``docs/scaling.md``.

A companion naming protocol (:class:`NamingServer`,
:class:`RemoteNamingClient`) exposes one process's
:class:`~repro.orb.naming.NamingService` to the others, completing the
minimum needed for a true multi-process deployment — see
``examples/two_process_demo.py``.

Wire framing (per message, after a 4-byte big-endian length prefix) is
a CDR stream: destination port id, source address (host, tcp port,
port id, label), kind, payload octets.  Naming requests/replies use
the same framing with a small op/string vocabulary.  Nothing here is
pickled off the wire, so a hostile peer can at worst produce a
:class:`~repro.cdr.typecodes.MarshalError`.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.cdr.accounting import copied
from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError
from repro.orb import request as wire
from repro.orb.naming import NamingError, NamingService
from repro.orb.reference import ObjectReference
from repro.orb.server import KIND_BUSY, ServerConfig, ServerGovernor
from repro.san import enabled as _san_enabled
from repro.orb.transport import (
    KIND_REQUEST,
    Meter,
    Port,
    TransportError,
    _Delivery,
    check_payload,
    flatten_payload,
)

_LENGTH = struct.Struct(">I")
#: Refuse frames above this size (sanity bound, 256 MiB).
_MAX_FRAME = 256 * 1024 * 1024


@dataclass(frozen=True, order=True)
class SocketPortAddress:
    """A routable address: TCP endpoint plus local port id."""

    host: str
    tcp_port: int
    port_id: int
    label: str = field(compare=False, default="")

    def __repr__(self) -> str:
        return (
            f"<port {self.host}:{self.tcp_port}/{self.port_id} "
            f"{self.label!r}>"
        )


#: Synthetic address meters see for frames dropped before any port is
#: known (oversized / malformed framing on the reader side).
DROP_ADDRESS = SocketPortAddress("", 0, 0, "dropped-frame")

#: Frames at or below this size are read into pooled buffers and their
#: payload copied out, so the buffer can be reused immediately; larger
#: frames get a dedicated buffer owned by the payload views.
_POOL_BUFFER_SIZE = 1 << 16


class _FrameTooLarge(MarshalError):
    """An incoming frame declares a length above :data:`_MAX_FRAME`."""

    def __init__(self, length: int) -> None:
        super().__init__(
            f"frame of {length} bytes exceeds the bound"
        )
        self.length = length


def _tune_socket(sock: socket.socket) -> None:
    """Disable Nagle: frames mix small headers with large payloads,
    and a delayed-ACK/Nagle interaction stalls a pipelined stream for
    tens of milliseconds per small frame."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (tests may hand in a pipe/mock)


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (one buffer, no
    chunk-list or join — the single kernel→user copy of the receive
    path)."""
    filled = 0
    total = len(view)
    while filled < total:
        n = sock.recv_into(view[filled:])
        if n == 0:
            raise ConnectionError("peer closed the connection")
        filled += n
    copied(total)


class _ConnBuffers:
    """Per-connection receive buffers.

    The 4-byte length prefix always lands in one reusable header
    buffer; small frames reuse a tiny pool of fixed-size buffers
    (payloads are copied out before the buffer is recycled), large
    frames get an exact-size buffer whose lifetime is handed to the
    decoded payload views.
    """

    def __init__(self, pool_size: int = 4) -> None:
        self.header = bytearray(_LENGTH.size)
        self._free: list[bytearray] = []
        self._pool_size = pool_size
        # repro.san buffer-escape detection (PARDIS_SAN=1): recycle
        # refuses buffers with live memoryview exports and poisons
        # clean ones.  Env-gated here — connections outlive any one
        # ORB, so there is no per-ORB switch to consult.
        if _san_enabled():
            from repro.san.buffers import BufferGuard

            self._guard: Any = BufferGuard()
        else:
            self._guard = None

    def take(self, length: int) -> tuple[bytearray, bool]:
        """A buffer of at least ``length`` bytes plus whether it is
        pooled (must be released, payload must be copied out)."""
        if length <= _POOL_BUFFER_SIZE:
            if self._free:
                return self._free.pop(), True
            return bytearray(_POOL_BUFFER_SIZE), True
        return bytearray(length), False

    def give(self, buf: bytearray) -> None:
        if self._guard is not None and not self._guard.check_and_poison(
            buf
        ):
            return  # escaped view reported; quarantine the buffer
        if len(self._free) < self._pool_size:
            self._free.append(buf)


def _read_frame_length(
    sock: socket.socket, header: bytearray
) -> int:
    _recv_exact_into(sock, memoryview(header))
    (length,) = _LENGTH.unpack(header)
    return length


def _drain(sock: socket.socket, n: int) -> None:
    """Discard ``n`` bytes so the stream stays framed after a frame we
    refuse to buffer."""
    scratch = bytearray(min(n, 1 << 16))
    view = memoryview(scratch)
    while n:
        got = sock.recv_into(view[: min(n, len(scratch))])
        if got == 0:
            raise ConnectionError("peer closed the connection")
        n -= got


def _read_frame(sock: socket.socket) -> memoryview:
    """One frame into a fresh buffer, as a read-only view.

    Used by the naming protocol's strictly request/reply connections;
    the fabric reader loop uses the pooled fast path instead.
    """
    header = bytearray(_LENGTH.size)
    length = _read_frame_length(sock, header)
    if length == 0:
        raise MarshalError("zero-length frame is malformed")
    if length > _MAX_FRAME:
        raise _FrameTooLarge(length)
    buf = bytearray(length)
    _recv_exact_into(sock, memoryview(buf))
    return memoryview(buf).toreadonly()


def _write_frame(sock: socket.socket, *buffers: Any) -> None:
    """Vectored frame write: length prefix + buffers via ``sendmsg``,
    never joined into one allocation."""
    total = sum(len(b) for b in buffers)
    views = [memoryview(_LENGTH.pack(total))]
    for buf in buffers:
        if len(buf) == 0:
            continue
        view = memoryview(buf)
        views.append(view.cast("B") if view.format != "B" else view)
    while views:
        sent = sock.sendmsg(views)
        if sent <= 0:
            raise ConnectionError("peer stopped accepting data")
        while sent:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


class SocketFabric:
    """Drop-in Fabric whose sends travel over TCP.

    One instance per process; ``bind_host``/``bind_port`` choose the
    listening endpoint (port 0 lets the OS pick).  Ports opened here
    behave exactly like in-process ports — same :class:`Port` class,
    blocking ``recv`` with kind filtering — and their addresses are
    valid on any peer that can reach this endpoint.
    """

    def __init__(
        self,
        name: str = "socket-fabric",
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        server: ServerConfig | None = None,
    ) -> None:
        """``server`` tunes fan-in admission control and backpressure
        (:class:`~repro.orb.server.ServerConfig`); the default admits
        everything but keeps per-client backpressure on."""
        self.name = name
        self._lock = threading.Lock()
        self._ports: dict[int, Port] = {}
        self._next_port_id = 1
        self._meters: list[Meter] = []
        self._connections: dict[tuple[str, int], socket.socket] = {}
        self._conn_locks: dict[tuple[str, int], threading.Lock] = {}
        #: Incoming frames refused by the receive path (zero-length or
        #: above :data:`_MAX_FRAME`); also reported to meters under the
        #: synthetic :data:`DROP_ADDRESS` with kind ``"drop"``.
        self.dropped_frames = 0
        self._closed = False
        self._server = socket.create_server(
            (bind_host, bind_port), reuse_port=False
        )
        self.host, self.tcp_port = self._server.getsockname()[:2]
        #: Fan-in governance (admission + backpressure); the dispatch
        #: layer discovers it via ``getattr(fabric, "governor", None)``.
        self.governor = ServerGovernor(
            server if server is not None else ServerConfig(), name=name
        )
        self.governor.attach_fabric(self)
        self._loop = _ServerLoop(self, self._server, self.governor, name)
        self.governor.attach_loop(self._loop)

    def server_stats(self) -> dict[str, Any]:
        """The governor's counters — ``orb.stats()["server"]``."""
        return self.governor.snapshot()

    # -- fabric contract ---------------------------------------------------

    def open_port(self, label: str = "") -> Port:
        with self._lock:
            if self._closed:
                raise TransportError("fabric is closed")
            port_id = self._next_port_id
            self._next_port_id += 1
            address = SocketPortAddress(
                self.host, self.tcp_port, port_id, label
            )
            port = Port(self, address)
            self._ports[port_id] = port
        return port

    def send(
        self,
        src: SocketPortAddress,
        dest: SocketPortAddress,
        payload: Any,
        kind: str = "data",
    ) -> None:
        nbytes = check_payload(payload)
        with self._lock:
            meters = list(self._meters)
        for meter in meters:
            meter(src, dest, kind, nbytes)
        if (dest.host, dest.tcp_port) == (self.host, self.tcp_port):
            self._deliver_local(
                dest.port_id, src, kind, flatten_payload(payload)
            )
            return
        segments = self._encode_frame(src, dest, kind, payload, nbytes)
        self._send_remote((dest.host, dest.tcp_port), segments)

    def add_meter(self, meter: Meter) -> None:
        """Observe every outgoing message (same hook as Fabric)."""
        with self._lock:
            self._meters.append(meter)

    def remove_meter(self, meter: Meter) -> None:
        with self._lock:
            self._meters.remove(meter)

    def _unregister(self, address: Any) -> None:
        with self._lock:
            self._ports.pop(address.port_id, None)

    def open_port_count(self) -> int:
        with self._lock:
            return len(self._ports)

    # -- wiring ------------------------------------------------------------

    @staticmethod
    def _encode_frame(
        src: SocketPortAddress,
        dest: SocketPortAddress,
        kind: str,
        payload: Any,
        nbytes: int,
    ) -> list[Any]:
        """The frame as a buffer list: large payload segments ride
        along by reference for the vectored write."""
        enc = CdrEncoder()
        enc.write_ulong(dest.port_id)
        enc.write_string(src.host)
        enc.write_ulong(src.tcp_port)
        enc.write_ulong(src.port_id)
        enc.write_string(src.label)
        enc.write_string(kind)
        enc.write_ulong(nbytes)
        if isinstance(payload, (list, tuple)):
            for segment in payload:
                enc.write_octets_view(segment)
        else:
            enc.write_octets_view(payload)
        return enc.segments()

    def _deliver_local(
        self,
        dest_port_id: int,
        src: SocketPortAddress,
        kind: str,
        payload: Any,
    ) -> None:
        with self._lock:
            port = self._ports.get(dest_port_id)
        if port is None:
            raise TransportError(
                f"no port {dest_port_id} at {self.host}:{self.tcp_port}"
            )
        port._deposit(_Delivery(src, kind, payload))

    def _send_remote(
        self, endpoint: tuple[str, int], buffers: list[Any]
    ) -> None:
        with self._lock:
            sock = self._connections.get(endpoint)
            conn_lock = self._conn_locks.get(endpoint)
        if sock is None:
            # Connect outside the fabric lock — a slow or unreachable
            # peer must not stall every other sender on this fabric.
            try:
                fresh = socket.create_connection(endpoint, timeout=10)
                _tune_socket(fresh)
            except OSError as exc:
                raise TransportError(
                    f"cannot reach {endpoint[0]}:{endpoint[1]}: {exc}"
                ) from None
            with self._lock:
                sock = self._connections.get(endpoint)
                if sock is None:
                    self._connections[endpoint] = fresh
                    self._conn_locks[endpoint] = threading.Lock()
                    sock = fresh
                    fresh = None
                conn_lock = self._conn_locks[endpoint]
            if fresh is not None:
                fresh.close()  # lost the insertion race; use the winner
        with conn_lock:
            try:
                _write_frame(sock, *buffers)
            except OSError as exc:
                with self._lock:
                    self._connections.pop(endpoint, None)
                    self._conn_locks.pop(endpoint, None)
                raise TransportError(
                    f"send to {endpoint[0]}:{endpoint[1]} failed: {exc}"
                ) from None

    def _record_drop(self, length: int) -> None:
        with self._lock:
            self.dropped_frames += 1
            meters = list(self._meters)
        for meter in meters:
            meter(DROP_ADDRESS, DROP_ADDRESS, "drop", length)

    def _dispatch_frame(
        self, frame: memoryview, copy_payload: bool = True
    ) -> None:
        """Route one frame.  ``copy_payload`` detaches the payload
        from pooled receive buffers about to be reused; large frames
        pass ``False`` — their buffer's lifetime is handed to the
        deposited view."""
        dec = CdrDecoder(frame)
        dest_port_id = dec.read_ulong()
        src = SocketPortAddress(
            host=dec.read_string(),
            tcp_port=dec.read_ulong(),
            port_id=dec.read_ulong(),
            label=dec.read_string(),
        )
        kind = dec.read_string()
        payload: Any = dec.read_octets(dec.read_ulong())
        if copy_payload:
            copied(len(payload))
            payload = bytes(payload)
        self._deliver_local(dest_port_id, src, kind, payload)

    def close(self) -> None:
        """Stop the event loop, close all connections and local ports."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections.values())
            self._connections.clear()
            ports = list(self._ports.values())
        self._loop.close()
        self._loop.join()
        self._server.close()
        self.governor.close()
        for sock in connections:
            sock.close()
        for port in ports:
            if not port.closed:
                port.close()

    def __enter__(self) -> "SocketFabric":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The server event loop
# ---------------------------------------------------------------------------


class _ServerConnection:
    """Per-connection receive state for the event loop: the framing
    state machine (header → body → header, with a drain detour for
    refused frames) plus the pooled buffers and the client identities
    seen on this connection."""

    __slots__ = (
        "sock",
        "buffers",
        "phase",
        "have",
        "length",
        "body",
        "view",
        "pooled",
        "drain_left",
        "scratch",
        "identities",
        "pause_depth",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffers = _ConnBuffers()
        self.phase = "header"
        self.have = 0
        self.length = 0
        self.body: bytearray | None = None
        self.view: memoryview | None = None
        self.pooled = False
        self.drain_left = 0
        self.scratch: memoryview | None = None
        #: Client identities (request id high bits) whose requests
        #: arrived here — the unit backpressure pauses.
        self.identities: set[int] = set()
        #: How many of those identities are currently paused; the
        #: socket leaves the selector while this is non-zero.
        self.pause_depth = 0


class _ServerLoop:
    """One thread, every client socket: the fan-in receive path.

    Replaces the thread-per-connection reader model: a ``selectors``
    loop owns the listening socket and all accepted connections,
    running the same framing state machine the blocking readers ran —
    pooled buffers for small frames, dedicated buffers handed to the
    payload views for large ones, drop accounting for refused frames —
    but across any number of sockets.  Request frames are peeked
    (:func:`repro.orb.request.peek_request`) so the attached
    :class:`~repro.orb.server.ServerGovernor` can attribute them to a
    client identity, refuse them, or pause the socket.

    Thread contract: everything touching the selector or connection
    state runs on the loop thread.  Cross-thread requests (resume,
    close) go through a command queue woken by a socketpair.
    """

    #: Frames serviced per connection per wakeup before yielding to
    #: other ready sockets (fairness under a busy stream).
    _FRAMES_PER_WAKE = 16

    #: How often paused sockets are probed for a silent disconnect
    #: (they are out of the selector, so EOF needs polling), and the
    #: idle ``select`` timeout.
    _SWEEP_INTERVAL = 0.5

    def __init__(
        self,
        fabric: SocketFabric,
        server_sock: socket.socket,
        governor: ServerGovernor | None,
        name: str,
    ) -> None:
        self._fabric = fabric
        self._governor = governor
        self._server = server_sock
        server_sock.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._commands: deque[tuple[str, Any]] = deque()
        self._conns: set[_ServerConnection] = set()
        self._by_identity: dict[int, set[_ServerConnection]] = {}
        self._closed = False
        self._busy_frame = self._make_busy_frame()
        self._selector.register(
            server_sock, selectors.EVENT_READ, ("accept", None)
        )
        self._selector.register(
            self._wake_r, selectors.EVENT_READ, ("wake", None)
        )
        self._thread = threading.Thread(
            target=self._run, name=f"{name}-loop", daemon=True
        )
        self._thread.start()

    def _make_busy_frame(self) -> bytes:
        """The one-frame NACK written on a connection refused by
        admission control (kind :data:`KIND_BUSY`, destination port 0
        — no real port, protocol-aware clients read it raw)."""
        src = SocketPortAddress(
            self._fabric.host, self._fabric.tcp_port, 0, "server-busy"
        )
        payload = b"server at max connections"
        segments = SocketFabric._encode_frame(
            src,
            SocketPortAddress("", 0, 0),
            KIND_BUSY,
            payload,
            len(payload),
        )
        total = sum(len(s) for s in segments)
        return _LENGTH.pack(total) + b"".join(
            bytes(s) for s in segments
        )

    # -- cross-thread interface ---------------------------------------------

    def request_resume(self, identity: int) -> None:
        """Resume reading a paused client's socket(s); callable from
        any thread."""
        self._push_command(("resume", identity))

    def close(self) -> None:
        self._push_command(("close", None))

    def join(self, timeout: float = 5.0) -> None:
        self._thread.join(timeout)

    def _push_command(self, command: tuple[str, Any]) -> None:
        self._commands.append(command)
        try:
            self._wake_w.send(b"\0")
        except OSError:
            pass

    # -- loop-thread interface (governor calls during admit) ----------------

    def pause(self, identity: int) -> None:
        """Stop reading every socket this identity sends on.  Loop
        thread only (the governor calls it inside ``admit_request``,
        which the loop itself invoked)."""
        for conn in self._by_identity.get(identity, ()):
            conn.pause_depth += 1
            if conn.pause_depth == 1:
                try:
                    self._selector.unregister(conn.sock)
                except (KeyError, ValueError):
                    pass

    def _resume(self, identity: int) -> None:
        for conn in self._by_identity.get(identity, ()):
            if conn.pause_depth == 0:
                continue
            conn.pause_depth -= 1
            if conn.pause_depth == 0 and conn in self._conns:
                try:
                    self._selector.register(
                        conn.sock, selectors.EVENT_READ, ("conn", conn)
                    )
                except (KeyError, ValueError, OSError):
                    pass
                # Level-triggered: bytes that arrived while paused
                # make the very next ``select`` return this socket.

    # -- the loop -----------------------------------------------------------

    def _run(self) -> None:
        next_sweep = time.monotonic() + self._SWEEP_INTERVAL
        while True:
            try:
                events = self._selector.select(
                    timeout=self._SWEEP_INTERVAL
                )
            except OSError:
                break
            for key, _mask in events:
                tag, conn = key.data
                if tag == "accept":
                    self._accept()
                elif tag == "wake":
                    self._drain_wake()
                else:
                    self._service(conn)
            self._run_commands()
            if self._closed:
                break
            now = time.monotonic()
            if now >= next_sweep:
                next_sweep = now + self._SWEEP_INTERVAL
                self._sweep_paused()
        self._teardown()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError, OSError):
            pass

    def _run_commands(self) -> None:
        while self._commands:
            tag, arg = self._commands.popleft()
            if tag == "resume":
                self._resume(arg)
            elif tag == "close":
                self._closed = True

    def _accept(self) -> None:
        while True:
            try:
                sock, _peer = self._server.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # server socket closed
            if self._governor is not None and (
                not self._governor.on_connection()
            ):
                # Refused: one BUSY frame (fits the empty socket
                # buffer, so the non-blocking send cannot stall the
                # loop), then close — a fast NACK, not a hang.
                try:
                    sock.setblocking(False)
                    sock.send(self._busy_frame)
                except OSError:
                    pass
                sock.close()
                continue
            _tune_socket(sock)
            sock.setblocking(False)
            conn = _ServerConnection(sock)
            self._conns.add(conn)
            self._selector.register(
                sock, selectors.EVENT_READ, ("conn", conn)
            )

    def _service(self, conn: _ServerConnection) -> None:
        """Advance one connection's framing state machine until the
        socket would block or the per-wake frame budget is spent."""
        sock = conn.sock
        frames = 0
        while frames < self._FRAMES_PER_WAKE:
            if conn.phase == "drain":
                if conn.scratch is None:
                    conn.scratch = memoryview(
                        bytearray(
                            min(conn.drain_left, _POOL_BUFFER_SIZE)
                        )
                    )
                want = min(conn.drain_left, len(conn.scratch))
                try:
                    n = sock.recv_into(conn.scratch[:want])
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    self._close_conn(conn)
                    return
                if n == 0:
                    self._close_conn(conn)
                    return
                conn.drain_left -= n
                if conn.drain_left == 0:
                    conn.scratch = None
                    conn.phase = "header"
                    conn.have = 0
                continue
            if conn.phase == "header":
                target = memoryview(conn.buffers.header)
            else:
                assert conn.view is not None
                target = conn.view
            try:
                n = sock.recv_into(target[conn.have:])
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                self._close_conn(conn)
                return
            if n == 0:
                self._close_conn(conn)
                return
            copied(n)
            conn.have += n
            if conn.have < len(target):
                continue
            if conn.phase == "header":
                (length,) = _LENGTH.unpack(conn.buffers.header)
                conn.have = 0
                if length == 0 or length > _MAX_FRAME:
                    # Malformed or oversized: count the drop, drain
                    # the declared bytes so the stream stays framed,
                    # and keep the connection alive.
                    self._fabric._record_drop(length)
                    if length:
                        conn.phase = "drain"
                        conn.drain_left = length
                    continue
                buf, pooled = conn.buffers.take(length)
                conn.body = buf
                conn.pooled = pooled
                conn.length = length
                conn.view = memoryview(buf)[:length]
                conn.phase = "body"
                continue
            # Body complete: route the frame, then recycle or hand
            # over the buffer.  ``target`` still aliases the buffer's
            # receive view — drop it, or the export outlives the
            # recycle below.
            frames += 1
            conn.view = None
            del target
            body = conn.body
            conn.body = None
            assert body is not None
            frame = memoryview(body)[: conn.length].toreadonly()
            try:
                self._deliver(conn, frame)
            except (MarshalError, TransportError):
                # Drop garbage, keep the connection — but count it so
                # ``orb.stats()`` surfaces silent frame loss.
                self._fabric._record_drop(conn.length)
            del frame
            if conn.pooled:
                conn.buffers.give(body)
            conn.phase = "header"
            conn.have = 0
            if conn.pause_depth > 0:
                # The frame we just admitted paused this connection;
                # stop reading immediately, not at the budget.
                return

    def _deliver(
        self, conn: _ServerConnection, frame: memoryview
    ) -> None:
        """Decode the frame envelope and route it — the event-loop
        twin of :meth:`SocketFabric._dispatch_frame`, with the
        governor's request admission spliced between decode and
        delivery."""
        fabric = self._fabric
        dec = CdrDecoder(frame)
        dest_port_id = dec.read_ulong()
        src = SocketPortAddress(
            host=dec.read_string(),
            tcp_port=dec.read_ulong(),
            port_id=dec.read_ulong(),
            label=dec.read_string(),
        )
        kind = dec.read_string()
        payload: Any = dec.read_octets(dec.read_ulong())
        governor = self._governor
        if (
            kind == KIND_REQUEST
            and governor is not None
            and governor.active
        ):
            routing = wire.peek_request(payload)
            if routing is not None:
                identity = routing.client_identity
                self._note_identity(conn, identity)
                if not governor.admit_request(
                    identity,
                    routing.request_id,
                    routing.trace_id,
                    routing.reply_port,
                ):
                    return  # refused: BUSY reply queued by governor
        if conn.pooled:
            copied(len(payload))
            payload = bytes(payload)
        fabric._deliver_local(dest_port_id, src, kind, payload)

    def _note_identity(
        self, conn: _ServerConnection, identity: int
    ) -> None:
        if identity in conn.identities:
            return
        conn.identities.add(identity)
        self._by_identity.setdefault(identity, set()).add(conn)
        if self._governor is not None and self._governor.is_paused(
            identity
        ):
            # A paused identity opened another connection: it starts
            # paused too, so backpressure cannot be dodged by
            # reconnecting.
            conn.pause_depth += 1
            if conn.pause_depth == 1:
                try:
                    self._selector.unregister(conn.sock)
                except (KeyError, ValueError):
                    pass

    def _sweep_paused(self) -> None:
        """Paused sockets are out of the selector, so a client that
        disconnects mid-backpressure would otherwise hold its
        admission slot forever; probe them for EOF."""
        for conn in [c for c in self._conns if c.pause_depth > 0]:
            try:
                data = conn.sock.recv(1, socket.MSG_PEEK)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                self._close_conn(conn)
                continue
            if data == b"":
                self._close_conn(conn)
            # Buffered bytes: the peer is alive (or died with data
            # still queued — EOF will surface once it drains).

    def _close_conn(self, conn: _ServerConnection) -> None:
        if conn not in self._conns:
            return
        self._conns.discard(conn)
        if conn.pause_depth == 0:
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        orphaned = []
        for identity in conn.identities:
            peers = self._by_identity.get(identity)
            if peers is None:
                continue
            peers.discard(conn)
            if not peers:
                del self._by_identity[identity]
                orphaned.append(identity)
        if self._governor is not None:
            self._governor.on_disconnect(orphaned)

    def _teardown(self) -> None:
        for conn in list(self._conns):
            self._conns.discard(conn)
            try:
                conn.sock.close()
            except OSError:
                pass
        self._by_identity.clear()
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Remote naming
# ---------------------------------------------------------------------------

_OP_BIND = "bind"
_OP_REBIND = "rebind"
_OP_RESOLVE = "resolve"
_OP_UNBIND = "unbind"
_OP_NAMES = "names"


class NamingServer:
    """Serves a :class:`NamingService` over TCP.

    One per deployment, typically in the same process as the first
    server.  Each request is one frame; the reply is one frame.
    """

    def __init__(
        self,
        naming: NamingService | None = None,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ) -> None:
        self.naming = naming or NamingService()
        self._server = socket.create_server((bind_host, bind_port))
        self.host, self.tcp_port = self._server.getsockname()[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, name="naming-server", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle,
                args=(conn,),
                daemon=True,
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            while True:
                request = _read_frame(conn)
                _write_frame(conn, self._answer(request))
        except (ConnectionError, OSError, MarshalError):
            pass
        finally:
            conn.close()

    def _answer(self, request: bytes) -> bytes:
        enc = CdrEncoder()
        try:
            dec = CdrDecoder(request)
            op = dec.read_string()
            if op in (_OP_BIND, _OP_REBIND):
                name = dec.read_string()
                host = dec.read_string()
                ref = ObjectReference.from_ior(dec.read_string())
                method = (
                    self.naming.bind if op == _OP_BIND
                    else self.naming.rebind
                )
                method(name, ref, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_RESOLVE:
                name = dec.read_string()
                host = dec.read_string()
                ref = self.naming.resolve(name, host or None)
                enc.write_boolean(True)
                enc.write_string(ref.ior())
            elif op == _OP_UNBIND:
                name = dec.read_string()
                host = dec.read_string()
                self.naming.unbind(name, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_NAMES:
                entries = self.naming.names()
                enc.write_boolean(True)
                enc.write_ulong(len(entries))
                for name, host in entries:
                    enc.write_string(name)
                    enc.write_string(host)
            else:
                raise NamingError(f"unknown naming operation {op!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            enc = CdrEncoder()
            enc.write_boolean(False)
            enc.write_string(f"{type(exc).__name__}: {exc}")
        return enc.getvalue()

    def close(self) -> None:
        self._closed = True
        self._server.close()

    def __enter__(self) -> "NamingServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteNamingClient:
    """A NamingService façade forwarding to a :class:`NamingServer`.

    Implements the subset the ORB uses (bind/rebind/resolve/unbind/
    names) with one round trip per call.
    """

    def __init__(self, host: str, tcp_port: int) -> None:
        self.host = host
        self.tcp_port = tcp_port
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def _roundtrip(self, frame: bytes) -> CdrDecoder:
        with self._lock:
            if self._sock is None:
                try:
                    self._sock = socket.create_connection(
                        (self.host, self.tcp_port), timeout=10
                    )
                except OSError as exc:
                    raise NamingError(
                        f"naming server {self.host}:{self.tcp_port} "
                        f"unreachable: {exc}"
                    ) from None
            try:
                _write_frame(self._sock, frame)
                reply = _read_frame(self._sock)
            except (OSError, ConnectionError) as exc:
                self._sock.close()
                self._sock = None
                raise NamingError(
                    f"naming round trip failed: {exc}"
                ) from None
        dec = CdrDecoder(reply)
        if not dec.read_boolean():
            raise NamingError(dec.read_string())
        return dec

    def bind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register a reference with the remote naming domain."""
        self._request_with_ref(_OP_BIND, name, host, ref)

    def rebind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register, replacing any existing registration."""
        self._request_with_ref(_OP_REBIND, name, host, ref)

    def _request_with_ref(
        self, op: str, name: str, host: str, ref: ObjectReference
    ) -> None:
        enc = CdrEncoder()
        enc.write_string(op)
        enc.write_string(name)
        enc.write_string(host)
        enc.write_string(ref.ior())
        self._roundtrip(enc.getvalue())

    def resolve(
        self, name: str, host: str | None = None
    ) -> ObjectReference:
        """Look a name up in the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_RESOLVE)
        enc.write_string(name)
        enc.write_string(host or "")
        dec = self._roundtrip(enc.getvalue())
        return ObjectReference.from_ior(dec.read_string())

    def unbind(self, name: str, host: str = "") -> None:
        """Remove a registration from the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_UNBIND)
        enc.write_string(name)
        enc.write_string(host)
        self._roundtrip(enc.getvalue())

    def names(self) -> list[tuple[str, str]]:
        """All (name, host) registrations, sorted."""
        enc = CdrEncoder()
        enc.write_string(_OP_NAMES)
        dec = self._roundtrip(enc.getvalue())
        count = dec.read_ulong()
        return [
            (dec.read_string(), dec.read_string()) for _ in range(count)
        ]

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                self._sock.close()
                self._sock = None
