"""TCP transport: the fabric over real sockets.

The in-process :class:`~repro.orb.transport.Fabric` carries everything
inside one interpreter.  This module provides the same contract over
loopback/LAN TCP, so PARDIS components can live in *separate OS
processes* (or machines): a :class:`SocketFabric` listens on one TCP
endpoint and demultiplexes frames onto its local ports; addresses
(:class:`SocketPortAddress`) carry the TCP endpoint, so they remain
routable after travelling inside an IOR.

A companion naming protocol (:class:`NamingServer`,
:class:`RemoteNamingClient`) exposes one process's
:class:`~repro.orb.naming.NamingService` to the others, completing the
minimum needed for a true multi-process deployment — see
``examples/two_process_demo.py``.

Wire framing (per message, after a 4-byte big-endian length prefix) is
a CDR stream: destination port id, source address (host, tcp port,
port id, label), kind, payload octets.  Naming requests/replies use
the same framing with a small op/string vocabulary.  Nothing here is
pickled off the wire, so a hostile peer can at worst produce a
:class:`~repro.cdr.typecodes.MarshalError`.
"""

from __future__ import annotations

import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.cdr.accounting import copied
from repro.cdr.decoder import CdrDecoder
from repro.cdr.encoder import CdrEncoder
from repro.cdr.typecodes import MarshalError
from repro.orb.naming import NamingError, NamingService
from repro.orb.reference import ObjectReference
from repro.san import enabled as _san_enabled
from repro.orb.transport import (
    Meter,
    Port,
    TransportError,
    _Delivery,
    check_payload,
    flatten_payload,
)

_LENGTH = struct.Struct(">I")
#: Refuse frames above this size (sanity bound, 256 MiB).
_MAX_FRAME = 256 * 1024 * 1024


@dataclass(frozen=True, order=True)
class SocketPortAddress:
    """A routable address: TCP endpoint plus local port id."""

    host: str
    tcp_port: int
    port_id: int
    label: str = field(compare=False, default="")

    def __repr__(self) -> str:
        return (
            f"<port {self.host}:{self.tcp_port}/{self.port_id} "
            f"{self.label!r}>"
        )


#: Synthetic address meters see for frames dropped before any port is
#: known (oversized / malformed framing on the reader side).
DROP_ADDRESS = SocketPortAddress("", 0, 0, "dropped-frame")

#: Frames at or below this size are read into pooled buffers and their
#: payload copied out, so the buffer can be reused immediately; larger
#: frames get a dedicated buffer owned by the payload views.
_POOL_BUFFER_SIZE = 1 << 16


class _FrameTooLarge(MarshalError):
    """An incoming frame declares a length above :data:`_MAX_FRAME`."""

    def __init__(self, length: int) -> None:
        super().__init__(
            f"frame of {length} bytes exceeds the bound"
        )
        self.length = length


def _tune_socket(sock: socket.socket) -> None:
    """Disable Nagle: frames mix small headers with large payloads,
    and a delayed-ACK/Nagle interaction stalls a pipelined stream for
    tens of milliseconds per small frame."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (tests may hand in a pipe/mock)


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` completely from the socket (one buffer, no
    chunk-list or join — the single kernel→user copy of the receive
    path)."""
    filled = 0
    total = len(view)
    while filled < total:
        n = sock.recv_into(view[filled:])
        if n == 0:
            raise ConnectionError("peer closed the connection")
        filled += n
    copied(total)


class _ConnBuffers:
    """Per-connection receive buffers.

    The 4-byte length prefix always lands in one reusable header
    buffer; small frames reuse a tiny pool of fixed-size buffers
    (payloads are copied out before the buffer is recycled), large
    frames get an exact-size buffer whose lifetime is handed to the
    decoded payload views.
    """

    def __init__(self, pool_size: int = 4) -> None:
        self.header = bytearray(_LENGTH.size)
        self._free: list[bytearray] = []
        self._pool_size = pool_size
        # repro.san buffer-escape detection (PARDIS_SAN=1): recycle
        # refuses buffers with live memoryview exports and poisons
        # clean ones.  Env-gated here — connections outlive any one
        # ORB, so there is no per-ORB switch to consult.
        if _san_enabled():
            from repro.san.buffers import BufferGuard

            self._guard: Any = BufferGuard()
        else:
            self._guard = None

    def take(self, length: int) -> tuple[bytearray, bool]:
        """A buffer of at least ``length`` bytes plus whether it is
        pooled (must be released, payload must be copied out)."""
        if length <= _POOL_BUFFER_SIZE:
            if self._free:
                return self._free.pop(), True
            return bytearray(_POOL_BUFFER_SIZE), True
        return bytearray(length), False

    def give(self, buf: bytearray) -> None:
        if self._guard is not None and not self._guard.check_and_poison(
            buf
        ):
            return  # escaped view reported; quarantine the buffer
        if len(self._free) < self._pool_size:
            self._free.append(buf)


def _read_frame_length(
    sock: socket.socket, header: bytearray
) -> int:
    _recv_exact_into(sock, memoryview(header))
    (length,) = _LENGTH.unpack(header)
    return length


def _drain(sock: socket.socket, n: int) -> None:
    """Discard ``n`` bytes so the stream stays framed after a frame we
    refuse to buffer."""
    scratch = bytearray(min(n, 1 << 16))
    view = memoryview(scratch)
    while n:
        got = sock.recv_into(view[: min(n, len(scratch))])
        if got == 0:
            raise ConnectionError("peer closed the connection")
        n -= got


def _read_frame(sock: socket.socket) -> memoryview:
    """One frame into a fresh buffer, as a read-only view.

    Used by the naming protocol's strictly request/reply connections;
    the fabric reader loop uses the pooled fast path instead.
    """
    header = bytearray(_LENGTH.size)
    length = _read_frame_length(sock, header)
    if length == 0:
        raise MarshalError("zero-length frame is malformed")
    if length > _MAX_FRAME:
        raise _FrameTooLarge(length)
    buf = bytearray(length)
    _recv_exact_into(sock, memoryview(buf))
    return memoryview(buf).toreadonly()


def _write_frame(sock: socket.socket, *buffers: Any) -> None:
    """Vectored frame write: length prefix + buffers via ``sendmsg``,
    never joined into one allocation."""
    total = sum(len(b) for b in buffers)
    views = [memoryview(_LENGTH.pack(total))]
    for buf in buffers:
        if len(buf) == 0:
            continue
        view = memoryview(buf)
        views.append(view.cast("B") if view.format != "B" else view)
    while views:
        sent = sock.sendmsg(views)
        if sent <= 0:
            raise ConnectionError("peer stopped accepting data")
        while sent:
            head = views[0]
            if sent >= len(head):
                sent -= len(head)
                views.pop(0)
            else:
                views[0] = head[sent:]
                sent = 0


class SocketFabric:
    """Drop-in Fabric whose sends travel over TCP.

    One instance per process; ``bind_host``/``bind_port`` choose the
    listening endpoint (port 0 lets the OS pick).  Ports opened here
    behave exactly like in-process ports — same :class:`Port` class,
    blocking ``recv`` with kind filtering — and their addresses are
    valid on any peer that can reach this endpoint.
    """

    def __init__(
        self,
        name: str = "socket-fabric",
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._ports: dict[int, Port] = {}
        self._next_port_id = 1
        self._meters: list[Meter] = []
        self._connections: dict[tuple[str, int], socket.socket] = {}
        self._conn_locks: dict[tuple[str, int], threading.Lock] = {}
        #: Incoming frames refused by the reader side (zero-length or
        #: above :data:`_MAX_FRAME`); also reported to meters under the
        #: synthetic :data:`DROP_ADDRESS` with kind ``"drop"``.
        self.dropped_frames = 0
        self._closed = False
        self._server = socket.create_server(
            (bind_host, bind_port), reuse_port=False
        )
        self.host, self.tcp_port = self._server.getsockname()[:2]
        self._acceptor = threading.Thread(
            target=self._accept_loop,
            name=f"{name}-accept",
            daemon=True,
        )
        self._acceptor.start()

    # -- fabric contract ---------------------------------------------------

    def open_port(self, label: str = "") -> Port:
        with self._lock:
            if self._closed:
                raise TransportError("fabric is closed")
            port_id = self._next_port_id
            self._next_port_id += 1
            address = SocketPortAddress(
                self.host, self.tcp_port, port_id, label
            )
            port = Port(self, address)
            self._ports[port_id] = port
        return port

    def send(
        self,
        src: SocketPortAddress,
        dest: SocketPortAddress,
        payload: Any,
        kind: str = "data",
    ) -> None:
        nbytes = check_payload(payload)
        with self._lock:
            meters = list(self._meters)
        for meter in meters:
            meter(src, dest, kind, nbytes)
        if (dest.host, dest.tcp_port) == (self.host, self.tcp_port):
            self._deliver_local(
                dest.port_id, src, kind, flatten_payload(payload)
            )
            return
        segments = self._encode_frame(src, dest, kind, payload, nbytes)
        self._send_remote((dest.host, dest.tcp_port), segments)

    def add_meter(self, meter: Meter) -> None:
        """Observe every outgoing message (same hook as Fabric)."""
        with self._lock:
            self._meters.append(meter)

    def remove_meter(self, meter: Meter) -> None:
        with self._lock:
            self._meters.remove(meter)

    def _unregister(self, address: Any) -> None:
        with self._lock:
            self._ports.pop(address.port_id, None)

    def open_port_count(self) -> int:
        with self._lock:
            return len(self._ports)

    # -- wiring ------------------------------------------------------------

    @staticmethod
    def _encode_frame(
        src: SocketPortAddress,
        dest: SocketPortAddress,
        kind: str,
        payload: Any,
        nbytes: int,
    ) -> list[Any]:
        """The frame as a buffer list: large payload segments ride
        along by reference for the vectored write."""
        enc = CdrEncoder()
        enc.write_ulong(dest.port_id)
        enc.write_string(src.host)
        enc.write_ulong(src.tcp_port)
        enc.write_ulong(src.port_id)
        enc.write_string(src.label)
        enc.write_string(kind)
        enc.write_ulong(nbytes)
        if isinstance(payload, (list, tuple)):
            for segment in payload:
                enc.write_octets_view(segment)
        else:
            enc.write_octets_view(payload)
        return enc.segments()

    def _deliver_local(
        self,
        dest_port_id: int,
        src: SocketPortAddress,
        kind: str,
        payload: Any,
    ) -> None:
        with self._lock:
            port = self._ports.get(dest_port_id)
        if port is None:
            raise TransportError(
                f"no port {dest_port_id} at {self.host}:{self.tcp_port}"
            )
        port._deposit(_Delivery(src, kind, payload))

    def _send_remote(
        self, endpoint: tuple[str, int], buffers: list[Any]
    ) -> None:
        with self._lock:
            sock = self._connections.get(endpoint)
            conn_lock = self._conn_locks.get(endpoint)
        if sock is None:
            # Connect outside the fabric lock — a slow or unreachable
            # peer must not stall every other sender on this fabric.
            try:
                fresh = socket.create_connection(endpoint, timeout=10)
                _tune_socket(fresh)
            except OSError as exc:
                raise TransportError(
                    f"cannot reach {endpoint[0]}:{endpoint[1]}: {exc}"
                ) from None
            with self._lock:
                sock = self._connections.get(endpoint)
                if sock is None:
                    self._connections[endpoint] = fresh
                    self._conn_locks[endpoint] = threading.Lock()
                    sock = fresh
                    fresh = None
                conn_lock = self._conn_locks[endpoint]
            if fresh is not None:
                fresh.close()  # lost the insertion race; use the winner
        with conn_lock:
            try:
                _write_frame(sock, *buffers)
            except OSError as exc:
                with self._lock:
                    self._connections.pop(endpoint, None)
                    self._conn_locks.pop(endpoint, None)
                raise TransportError(
                    f"send to {endpoint[0]}:{endpoint[1]} failed: {exc}"
                ) from None

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._server.accept()
            except OSError:
                return  # server socket closed
            _tune_socket(conn)
            threading.Thread(
                target=self._reader_loop,
                args=(conn,),
                name=f"{self.name}-reader",
                daemon=True,
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        buffers = _ConnBuffers()
        try:
            while True:
                length = _read_frame_length(conn, buffers.header)
                if length == 0 or length > _MAX_FRAME:
                    # Malformed or oversized: count the drop, drain the
                    # declared bytes so the stream stays framed, and
                    # keep the connection alive.
                    self._record_drop(length)
                    if length:
                        _drain(conn, length)
                    continue
                buf, pooled = buffers.take(length)
                view = memoryview(buf)[:length]
                _recv_exact_into(conn, view)
                try:
                    self._dispatch_frame(
                        view.toreadonly(), copy_payload=pooled
                    )
                except (MarshalError, TransportError):
                    # Drop garbage, keep the connection — but count it
                    # so ``orb.stats()`` surfaces silent frame loss.
                    self._record_drop(length)
                del view
                if pooled:
                    buffers.give(buf)
        except (ConnectionError, OSError):
            pass
        finally:
            conn.close()

    def _record_drop(self, length: int) -> None:
        with self._lock:
            self.dropped_frames += 1
            meters = list(self._meters)
        for meter in meters:
            meter(DROP_ADDRESS, DROP_ADDRESS, "drop", length)

    def _dispatch_frame(
        self, frame: memoryview, copy_payload: bool = True
    ) -> None:
        """Route one frame.  ``copy_payload`` detaches the payload
        from pooled receive buffers about to be reused; large frames
        pass ``False`` — their buffer's lifetime is handed to the
        deposited view."""
        dec = CdrDecoder(frame)
        dest_port_id = dec.read_ulong()
        src = SocketPortAddress(
            host=dec.read_string(),
            tcp_port=dec.read_ulong(),
            port_id=dec.read_ulong(),
            label=dec.read_string(),
        )
        kind = dec.read_string()
        payload: Any = dec.read_octets(dec.read_ulong())
        if copy_payload:
            copied(len(payload))
            payload = bytes(payload)
        self._deliver_local(dest_port_id, src, kind, payload)

    def close(self) -> None:
        """Stop accepting, close all connections and local ports."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connections = list(self._connections.values())
            self._connections.clear()
            ports = list(self._ports.values())
        self._server.close()
        for sock in connections:
            sock.close()
        for port in ports:
            if not port.closed:
                port.close()

    def __enter__(self) -> "SocketFabric":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Remote naming
# ---------------------------------------------------------------------------

_OP_BIND = "bind"
_OP_REBIND = "rebind"
_OP_RESOLVE = "resolve"
_OP_UNBIND = "unbind"
_OP_NAMES = "names"


class NamingServer:
    """Serves a :class:`NamingService` over TCP.

    One per deployment, typically in the same process as the first
    server.  Each request is one frame; the reply is one frame.
    """

    def __init__(
        self,
        naming: NamingService | None = None,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ) -> None:
        self.naming = naming or NamingService()
        self._server = socket.create_server((bind_host, bind_port))
        self.host, self.tcp_port = self._server.getsockname()[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve, name="naming-server", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        while not self._closed:
            try:
                conn, _peer = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle,
                args=(conn,),
                daemon=True,
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            while True:
                request = _read_frame(conn)
                _write_frame(conn, self._answer(request))
        except (ConnectionError, OSError, MarshalError):
            pass
        finally:
            conn.close()

    def _answer(self, request: bytes) -> bytes:
        enc = CdrEncoder()
        try:
            dec = CdrDecoder(request)
            op = dec.read_string()
            if op in (_OP_BIND, _OP_REBIND):
                name = dec.read_string()
                host = dec.read_string()
                ref = ObjectReference.from_ior(dec.read_string())
                method = (
                    self.naming.bind if op == _OP_BIND
                    else self.naming.rebind
                )
                method(name, ref, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_RESOLVE:
                name = dec.read_string()
                host = dec.read_string()
                ref = self.naming.resolve(name, host or None)
                enc.write_boolean(True)
                enc.write_string(ref.ior())
            elif op == _OP_UNBIND:
                name = dec.read_string()
                host = dec.read_string()
                self.naming.unbind(name, host=host)
                enc.write_boolean(True)
                enc.write_string("ok")
            elif op == _OP_NAMES:
                entries = self.naming.names()
                enc.write_boolean(True)
                enc.write_ulong(len(entries))
                for name, host in entries:
                    enc.write_string(name)
                    enc.write_string(host)
            else:
                raise NamingError(f"unknown naming operation {op!r}")
        except Exception as exc:  # noqa: BLE001 - reported to the peer
            enc = CdrEncoder()
            enc.write_boolean(False)
            enc.write_string(f"{type(exc).__name__}: {exc}")
        return enc.getvalue()

    def close(self) -> None:
        self._closed = True
        self._server.close()

    def __enter__(self) -> "NamingServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RemoteNamingClient:
    """A NamingService façade forwarding to a :class:`NamingServer`.

    Implements the subset the ORB uses (bind/rebind/resolve/unbind/
    names) with one round trip per call.
    """

    def __init__(self, host: str, tcp_port: int) -> None:
        self.host = host
        self.tcp_port = tcp_port
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None

    def _roundtrip(self, frame: bytes) -> CdrDecoder:
        with self._lock:
            if self._sock is None:
                try:
                    self._sock = socket.create_connection(
                        (self.host, self.tcp_port), timeout=10
                    )
                except OSError as exc:
                    raise NamingError(
                        f"naming server {self.host}:{self.tcp_port} "
                        f"unreachable: {exc}"
                    ) from None
            try:
                _write_frame(self._sock, frame)
                reply = _read_frame(self._sock)
            except (OSError, ConnectionError) as exc:
                self._sock.close()
                self._sock = None
                raise NamingError(
                    f"naming round trip failed: {exc}"
                ) from None
        dec = CdrDecoder(reply)
        if not dec.read_boolean():
            raise NamingError(dec.read_string())
        return dec

    def bind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register a reference with the remote naming domain."""
        self._request_with_ref(_OP_BIND, name, host, ref)

    def rebind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register, replacing any existing registration."""
        self._request_with_ref(_OP_REBIND, name, host, ref)

    def _request_with_ref(
        self, op: str, name: str, host: str, ref: ObjectReference
    ) -> None:
        enc = CdrEncoder()
        enc.write_string(op)
        enc.write_string(name)
        enc.write_string(host)
        enc.write_string(ref.ior())
        self._roundtrip(enc.getvalue())

    def resolve(
        self, name: str, host: str | None = None
    ) -> ObjectReference:
        """Look a name up in the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_RESOLVE)
        enc.write_string(name)
        enc.write_string(host or "")
        dec = self._roundtrip(enc.getvalue())
        return ObjectReference.from_ior(dec.read_string())

    def unbind(self, name: str, host: str = "") -> None:
        """Remove a registration from the remote naming domain."""
        enc = CdrEncoder()
        enc.write_string(_OP_UNBIND)
        enc.write_string(name)
        enc.write_string(host)
        self._roundtrip(enc.getvalue())

    def names(self) -> list[tuple[str, str]]:
        """All (name, host) registrations, sorted."""
        enc = CdrEncoder()
        enc.write_string(_OP_NAMES)
        dec = self._roundtrip(enc.getvalue())
        count = dec.read_ulong()
        return [
            (dec.read_string(), dec.read_string()) for _ in range(count)
        ]

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                self._sock.close()
                self._sock = None
