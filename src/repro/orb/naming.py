"""The PARDIS naming domain.

"PARDIS provides a naming domain for objects.  At the time of binding
the client has to identify which particular object of a given type it
wants to work with; specifying a host is optional." (§2.1)

Names are two-level: ``(name, host)``.  Registering with a host makes
the object reachable both by bare name and by ``name@host``; resolving
with ``host=None`` returns the sole registration of that name (an
error if the name is ambiguous across hosts, since the client then has
to say which object it wants).
"""

from __future__ import annotations

import threading

from repro.orb.reference import ObjectReference


class NamingError(KeyError):
    """Unknown, duplicate or ambiguous name."""

    def __str__(self) -> str:  # KeyError quotes its repr otherwise
        return self.args[0] if self.args else ""


class NamingService:
    """A thread-safe name → object-reference registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: (name, host) → reference; host '' means "no host given".
        self._entries: dict[tuple[str, str], ObjectReference] = {}

    def bind(
        self,
        name: str,
        ref: ObjectReference,
        host: str = "",
    ) -> None:
        """Register; duplicate (name, host) pairs are an error."""
        if not name:
            raise NamingError("object name cannot be empty")
        key = (name, host)
        with self._lock:
            if key in self._entries:
                where = f" on host '{host}'" if host else ""
                raise NamingError(
                    f"an object is already bound as '{name}'{where}"
                )
            self._entries[key] = ref

    def rebind(
        self, name: str, ref: ObjectReference, host: str = ""
    ) -> None:
        """Register, replacing any existing registration."""
        if not name:
            raise NamingError("object name cannot be empty")
        with self._lock:
            self._entries[(name, host)] = ref

    def resolve(self, name: str, host: str | None = None) -> ObjectReference:
        """Find a reference by name, optionally pinned to a host."""
        with self._lock:
            if host is not None:
                ref = self._entries.get((name, host))
                if ref is None:
                    raise NamingError(
                        f"no object '{name}' on host '{host}'"
                    )
                return ref
            matches = [
                ref for (n, _h), ref in self._entries.items() if n == name
            ]
        if not matches:
            raise NamingError(f"no object bound as '{name}'")
        if len(matches) > 1:
            raise NamingError(
                f"'{name}' is bound on several hosts; specify one"
            )
        return matches[0]

    def unbind(self, name: str, host: str = "") -> None:
        """Remove a registration; resolving it afterwards fails just
        as if it had never been bound (no tombstones)."""
        with self._lock:
            if self._entries.pop((name, host), None) is None:
                where = f" on host '{host}'" if host else ""
                raise NamingError(f"no object bound as '{name}'{where}")

    def names(self) -> list[tuple[str, str]]:
        """All (name, host) registrations, sorted."""
        with self._lock:
            return sorted(self._entries)
