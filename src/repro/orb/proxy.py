"""The client side: runtimes, proxies and the two bind operations.

Paper §2.1 defines two bindings:

- ``_bind`` — "non-collective and always establishes one binding per
  thread"; each thread then interacts on its own, using the
  *non-distributed* mapping of distributed arguments (serial
  sequences).
- ``_spmd_bind`` — "a collective form of bind; it has to be called by
  all the computing threads of a client and should be used by clients
  wishing to act as one entity".  Every subsequent invocation is
  collective and distributed arguments travel distributed.

Each PARDIS-connected client thread owns a :class:`ClientRuntime`:
its reply and data ports, the ORB-internal communicator (a private
duplicate of the application's, so ORB traffic can never interleave
with application messages), and a single-threaded invocation worker.
The worker gives non-blocking invocations (§2.1's futures) a total
order per rank: because every rank enqueues invocations in the same
program order, the collective operations inside the transfer engines
match up across ranks even when the application fires several
requests before touching any future.
"""

from __future__ import annotations

import enum
import itertools
import queue
import random
import threading
from collections import deque
from typing import Any, Callable

from repro.ft.policy import FtStats, effective_policy
from repro.groups import stats as _groups_stats
from repro.groups.failover import (
    GroupBinding,
    agree_failover,
    failover_worthy,
)
from repro.groups.select import GroupView, SelectionError, policy_for
from repro.orb.operation import OperationSpec, RemoteError
from repro.orb.reference import GroupReference, ObjectReference
from repro.orb.transfer import (
    CentralizedTransfer,
    ChunkCollector,
    MultiPortTransfer,
    ReplyDemux,
    Tracer,
    TransferEngine,
)
from repro.orb.transport import Fabric
from repro.rts.futures import Future
from repro.san import call_site as _san_call_site
from repro.san import enabled as _san_enabled
from repro.san.collective import CollectiveChecker
from repro.san.futures import track as _san_track
from repro.trace.span import replica_scope, span_or_null
from repro.rts.interface import MessagePassingRTS, RuntimeSystem
from repro.rts.mpi import Intracomm
from repro.rts.onesided import OneSidedRTS


def make_rts(style: str, comm: Intracomm) -> RuntimeSystem:
    """Instantiate a run-time-system interface by name.

    ``"message-passing"`` is the paper's implemented interface;
    ``"one-sided"`` the alternative it plans (§2.3), built on RMA
    windows.  Both satisfy the same contract, so the transfer engines
    are oblivious to the choice.  A process-backend
    :class:`~repro.rts.procs.ProcComm` always gets the shared-memory
    :class:`~repro.rts.procs.ProcessRTS` data plane, whatever the
    style — one-sided windows presume thread-shared address space.
    """
    from repro.rts.procs import ProcComm, ProcessRTS

    if isinstance(comm, ProcComm):
        if style not in ("message-passing", "one-sided"):
            raise ValueError(
                f"unknown RTS style {style!r}; expected "
                f"'message-passing' or 'one-sided'"
            )
        return ProcessRTS(comm)
    if style == "message-passing":
        return MessagePassingRTS(comm)
    if style == "one-sided":
        return OneSidedRTS(comm)
    raise ValueError(
        f"unknown RTS style {style!r}; expected 'message-passing' or "
        f"'one-sided'"
    )


class BindMode(enum.Enum):
    """How a proxy was bound (decides collective vs per-thread)."""

    SERIAL = "bind"
    SPMD = "spmd_bind"


_ENGINES: dict[str, TransferEngine] = {
    "centralized": CentralizedTransfer(),
    "multiport": MultiPortTransfer(),
}


def engine_for(method) -> TransferEngine:
    """The shared engine instance for a transfer-method name.

    Accepts either the string name or a
    :class:`repro.core.TransferMethod` member.
    """
    key = getattr(method, "value", method)
    try:
        return _ENGINES[key]
    except KeyError:
        raise ValueError(
            f"unknown transfer method {method!r}; expected "
            f"'centralized' or 'multiport'"
        ) from None


class ClientRuntime:
    """Per-thread client-side ORB state.

    Create one per computing thread via
    :meth:`repro.core.ORB.client_runtime`; pass it to ``_bind`` /
    ``_spmd_bind``.
    """

    def __init__(
        self,
        fabric: Fabric,
        naming: Any,
        comm: Intracomm | None = None,
        *,
        tracer: Tracer | None = None,
        timeout: float = 60.0,
        label: str = "client",
        rts_style: str = "message-passing",
        pipeline_depth: int = 8,
        ft_policy: Any = None,
        trace: Any = None,
        sanitize: bool | None = None,
    ) -> None:
        if pipeline_depth <= 0:
            raise ValueError("pipeline_depth must be positive")
        self.fabric = fabric
        self.naming = naming
        self.app_comm = comm
        self.tracer = tracer
        #: ``repro.trace`` recorder shared across the ORB's runtimes
        #: (None = tracing off; the engines guard every span site on
        #: this being set, keeping the disabled path free).
        self.trace = trace
        self.timeout = timeout
        self.pipeline_depth = pipeline_depth
        #: Runtime-wide fault-tolerance policy (a proxy may override).
        self.ft_policy = ft_policy
        # With tracing on, ft counter bumps mirror into the metrics
        # registry (counters ``ft.retries``, ``ft.degraded``, ...).
        self.ft_stats = FtStats(
            on_bump=trace.ft_observer() if trace is not None else None
        )
        # The collective-sequence counter: one draw per collective
        # invocation, in launch (= program) order, so an invocation's
        # index is identical on every rank — it names the collective
        # point a group-agreed failure is raised at.
        self._collective_indexes = itertools.count()
        self.rank = 0 if comm is None else comm.rank
        self.size = 1 if comm is None else comm.size
        # A private communicator for ORB-internal collectives, so the
        # engines never interleave with application traffic.
        if comm is None:
            self.orb_comm: Intracomm | None = None
            self.rts: RuntimeSystem | None = None
        else:
            self.orb_comm = comm.dup(f"{label}:orb")
            self.rts = make_rts(rts_style, self.orb_comm)
        #: ``repro.san``: ``sanitize=None`` defers to ``PARDIS_SAN``.
        self.sanitize = (
            _san_enabled() if sanitize is None else bool(sanitize)
        )
        # The alignment checker gets its own communicator: its p2p
        # digest traffic must never tag-match the engines' traffic on
        # orb_comm, and runtime creation is already collective so the
        # dup rendezvous is safe here.
        self.san: CollectiveChecker | None = None
        if self.sanitize and comm is not None:
            self.san = CollectiveChecker(comm.dup(f"{label}:san"))
        self.reply_port = fabric.open_port(f"{label}:{self.rank}:reply")
        self.data_port = fabric.open_port(f"{label}:{self.rank}:data")
        self.collector = ChunkCollector(self.data_port)
        self.demux = ReplyDemux(self.reply_port)
        if comm is None:
            self.data_port_addresses = (self.data_port.address,)
        else:
            self.data_port_addresses = tuple(
                comm.allgather(self.data_port.address)
            )
        # Request ids carry a random per-runtime base in the high 32
        # bits: concurrent clients of one object then never collide on
        # the server's demultiplexing keys, and the base doubles as a
        # client identity for the server's per-client dispatch order.
        # Collective runtimes must share ONE sequence — the multi-port
        # engine tags every rank's chunks with its locally drawn id and
        # the server matches them against the id in rank 0's header —
        # so rank 0 draws the base and broadcasts it.
        if comm is None:
            base = random.getrandbits(31) << 32
        else:
            base = comm.bcast(
                random.getrandbits(31) << 32 if self.rank == 0 else None,
                root=0,
            )
        self._request_ids = itertools.count(base + 1)
        self._worker: _InvocationWorker | None = None
        self._closed = False

    def next_request_id(self) -> int:
        return next(self._request_ids)

    def next_collective_index(self) -> int:
        return next(self._collective_indexes)

    def serial_view(self) -> "ClientRuntime":
        """A per-thread (non-collective) view of this runtime.

        Used by plain ``_bind``: the thread interacts with objects on
        its own, so the engines must see a 1-thread client.  Ports,
        worker and the request-id counter are shared with the parent
        (replies still arrive on this thread's port; the common worker
        keeps blocking/non-blocking calls ordered); only the group
        identity is erased.
        """
        if self.app_comm is None:
            return self
        view = object.__new__(ClientRuntime)
        view.fabric = self.fabric
        view.naming = self.naming
        view.app_comm = None
        view.tracer = self.tracer
        view.trace = self.trace
        view.timeout = self.timeout
        view.pipeline_depth = self.pipeline_depth
        view.rank = 0
        view.size = 1
        view.orb_comm = None
        view.rts = None
        view.reply_port = self.reply_port
        view.data_port = self.data_port
        view.collector = self.collector
        view.demux = self.demux
        view.data_port_addresses = (self.data_port.address,)
        view._request_ids = self._request_ids
        view.ft_policy = self.ft_policy
        # Stats are shared (one ledger per thread); the collective
        # index is not — serial invocations are per-thread and must
        # not skew the group's collective sequence.
        view.ft_stats = self.ft_stats
        view._collective_indexes = itertools.count()
        view._closed = False
        # Future tracking survives the serial view; the alignment
        # checker does not — a 1-thread client has no group to align.
        view.sanitize = self.sanitize
        view.san = None
        # Share the worker so invocation order is global per thread.
        view._worker = self.worker
        return view

    @property
    def worker(self) -> "_InvocationWorker":
        if self._worker is None:
            self._worker = _InvocationWorker(
                f"pardis-worker-{self.rank}",
                depth=self.pipeline_depth,
                metrics=(
                    self.trace.metrics if self.trace is not None else None
                ),
            )
        return self._worker

    def close(self) -> None:
        """Release ports and stop the worker (idempotent).

        The worker first drains in-flight completions, so every
        launched request still resolves its future before the ports
        disappear under it.
        """
        if self._closed:
            return
        self._closed = True
        if self._worker is not None:
            self._worker.stop()
        self.reply_port.close()
        self.data_port.close()

    def __enter__(self) -> "ClientRuntime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _InvocationWorker:
    """A per-rank pipelined executor for invocations.

    All invocations — blocking and non-blocking — are *launched* here
    in enqueue order, which is program order, which under the SPMD
    assumption is identical on every rank.  A launch runs only the
    engine's send phase (``invoke_begin``); up to ``depth`` requests
    may then be in flight, their deferred completions (reply receive,
    reply-side collectives, result composition) queued on a pending
    deque.  Completions drain strictly in launch order, triggered by
    exactly three queue-driven events: the pipeline is full, a reader
    touched a future (the flush marker the future's demand hook
    enqueues), or the worker is stopping.

    Both the launch order and the drain policy are functions of the
    queue contents alone — never of timing — so the per-rank sequence
    of engine collectives is identical on every rank and collective
    operations of different outstanding requests can never
    cross-match.
    """

    def __init__(self, name: str, depth: int = 8, metrics: Any = None) -> None:
        if depth <= 0:
            raise ValueError("pipeline depth must be positive")
        self.depth = depth
        #: ``repro.trace`` metrics registry (None = tracing off):
        #: counts submissions/completions and hands futures their
        #: wait-time histogram.
        self._metrics = metrics
        self._queue: queue.Queue = queue.Queue()
        self._stopped = False
        #: Launched-but-uncompleted requests: (complete, future).
        self._pending: deque[tuple[Callable[[], Any], Future]] = deque()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def in_flight(self) -> int:
        """How many launched requests await completion (worker-thread
        accurate; advisory elsewhere)."""
        return len(self._pending)

    def _drain_one(self) -> None:
        complete, future = self._pending.popleft()
        try:
            future.set_result(complete())
        except BaseException as exc:  # noqa: BLE001 - to the future
            future.set_exception(exc)
            if self._metrics is not None:
                self._metrics.counter("invocations.failed").inc()
        else:
            if self._metrics is not None:
                self._metrics.counter("invocations.completed").inc()

    def _drain_through(self, target: Future) -> None:
        """Complete pending requests up to and including ``target``.

        A no-op when the target is not pending (already resolved —
        e.g. drained earlier by a full pipeline); completions that
        would then run here already ran at that earlier, equally
        queue-determined point.
        """
        if not any(fut is target for _, fut in self._pending):
            return
        while self._pending:
            _, fut = self._pending[0]
            self._drain_one()
            if fut is target:
                return

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            self._handle(item)
            # A lingering loop variable would pin the last future
            # across the blocking get(), hiding abandoned futures
            # from the lifecycle sanitizer until shutdown.
            del item
        # Shutdown: every launched request still gets its completion.
        while self._pending:
            self._drain_one()

    def _handle(self, item: tuple) -> None:
        if item[0] == "flush":
            self._drain_through(item[1])
            return
        _kind, fn, future = item
        # Admission: never more than ``depth`` in flight.
        while len(self._pending) >= self.depth:
            self._drain_one()
        try:
            state, payload = fn()
        except BaseException as exc:  # noqa: BLE001 - to the future
            future.set_exception(exc)
            return
        if state == "done":
            future.set_result(payload)
        else:
            self._pending.append((payload, future))

    def submit(self, fn: Callable[[], Any], label: str) -> Future:
        """Enqueue a launch; ``fn()`` must return the engine's
        ``("done", value)`` / ``("pending", complete)`` pair."""
        if self._stopped:
            raise RuntimeError(
                "client runtime is closed; no further invocations"
            )
        future = Future(label)
        future._pre_wait = self._request_flush
        if self._metrics is not None:
            self._metrics.counter("invocations.submitted").inc()
            future._trace_metrics = self._metrics
        self._queue.put(("invoke", fn, future))
        return future

    def _request_flush(self, future: Future) -> None:
        """Demand hook: a reader is about to block on ``future``."""
        if self._stopped or threading.current_thread() is self._thread:
            return
        self._queue.put(("flush", future))

    def stop(self, join_timeout: float | None = 10.0) -> None:
        self._stopped = True
        self._queue.put(None)
        if (
            join_timeout is not None
            and threading.current_thread() is not self._thread
        ):
            self._thread.join(join_timeout)


class ClientProxy:
    """Base class of generated client stubs.

    Generated subclasses carry ``_interface``, ``_repo_id`` and
    ``_operations``; their operation methods call :meth:`_invoke` /
    :meth:`_invoke_nb`.
    """

    _interface: str = ""
    _repo_id: str = ""
    _operations: dict[str, OperationSpec] = {}

    def __init__(
        self,
        runtime: ClientRuntime,
        ref: ObjectReference,
        mode: BindMode,
        transfer: str,
        ft_policy: Any = None,
        group: GroupBinding | None = None,
    ) -> None:
        self._runtime = runtime
        self._ref = ref
        self._mode = mode
        self._engine = engine_for(transfer)
        #: Per-proxy fault-tolerance policy; ``None`` defers to the
        #: runtime's (ORB-wide) policy.
        self._ft_policy = ft_policy
        #: Replicated-group binding state (``None`` for singleton
        #: bindings): which replica this proxy targets and how to fail
        #: over.  Set by :meth:`_group_bind`.
        self._group = group
        #: (operation, slot name) → template spec for out/return
        #: distributed values (§2.2's client-side initialization).
        self._out_templates: dict[tuple[str, str], tuple] = {}

    # -- binding -----------------------------------------------------------

    @classmethod
    def _bind(
        cls,
        obj_name: str,
        runtime: ClientRuntime,
        host_name: str | None = None,
        *,
        transfer: str | None = None,
        ft_policy: Any = None,
    ) -> "ClientProxy":
        """Per-thread, non-collective bind (§2.1).

        The proxy then uses the non-distributed argument mapping: each
        thread interacts with the object on its own, so distributed
        sequence arguments must be serial (``comm=None``).
        """
        with span_or_null(
            getattr(runtime, "trace", None), "bind", side="client",
            rank=runtime.rank, object=obj_name, mode=BindMode.SERIAL.value,
        ):
            ref = runtime.naming.resolve(obj_name, host_name)
            cls._check_interface(ref)
            return cls(
                runtime.serial_view(),
                ref,
                BindMode.SERIAL,
                cls._default_transfer(ref, transfer),
                ft_policy=ft_policy,
            )

    @classmethod
    def _spmd_bind(
        cls,
        obj_name: str,
        runtime: ClientRuntime,
        host_name: str | None = None,
        *,
        transfer: str | None = None,
        ft_policy: Any = None,
    ) -> "ClientProxy":
        """Collective bind: all client threads act as one entity.

        The communicating thread resolves the name; every thread gets
        a proxy over the shared binding, and "every invocation to the
        object must be called by all the threads that participated in
        the bind call" (§2.1).
        """
        if runtime.app_comm is None:
            # A 1-thread client group: degenerate but legal.
            return cls._bind(
                obj_name, runtime, host_name, transfer=transfer,
                ft_policy=ft_policy,
            )
        with span_or_null(
            getattr(runtime, "trace", None), "bind", side="client",
            rank=runtime.rank, object=obj_name, mode=BindMode.SPMD.value,
        ):
            if runtime.rank == 0:
                ior = runtime.naming.resolve(obj_name, host_name).ior()
            else:
                ior = None
            ior = runtime.orb_comm.bcast(ior, root=0)
            ref = ObjectReference.from_ior(ior)
            cls._check_interface(ref)
            return cls(
                runtime,
                ref,
                BindMode.SPMD,
                cls._default_transfer(ref, transfer),
                ft_policy=ft_policy,
            )

    @classmethod
    def _group_bind(
        cls,
        group_name: str,
        runtime: ClientRuntime,
        *,
        selection: Any = "round-robin",
        transfer: str | None = None,
        ft_policy: Any = None,
    ) -> "ClientProxy":
        """Bind to a *replicated object group* (``repro.groups``).

        Resolves the group through the sharded naming router and pins
        the proxy to one replica chosen by ``selection`` —
        ``"round-robin"`` (spread across bindings via the router's
        bind token), ``"least-loaded"`` (the replica with the lowest
        reported load), or a
        :class:`~repro.groups.select.SelectionPolicy` instance.

        Collective when the runtime is (rank 0 resolves; the group
        reference and bind token ride one broadcast, so every rank
        selects the same replica), per-thread otherwise — the §2.1
        ``_spmd_bind`` / ``_bind`` split, at group scope.

        With a retrying ``ft_policy`` in force, invocations that
        exhaust their policy against the pinned replica *fail over*:
        all ranks vote, flip to the same sibling, and replay.  Without
        one the binding fails fast exactly like a singleton proxy
        (lint rule PD213 flags that configuration).
        """
        policy = policy_for(selection)
        trace = getattr(runtime, "trace", None)
        with span_or_null(
            trace, "bind", side="client", rank=runtime.rank,
            object=group_name, mode="group_bind",
        ):
            if runtime.app_comm is None:
                gref = cls._resolve_group(runtime.naming, group_name)
                token = runtime.naming.next_bind_token(group_name)
                bind_runtime = runtime.serial_view()
            else:
                if runtime.rank == 0:
                    gref0 = cls._resolve_group(
                        runtime.naming, group_name
                    )
                    payload = (
                        gref0.ior(),
                        runtime.naming.next_bind_token(group_name),
                    )
                else:
                    payload = None
                gior, token = runtime.orb_comm.bcast(payload, root=0)
                gref = GroupReference.from_ior(gior)
                bind_runtime = runtime
            if (
                cls._repo_id
                and gref.repo_id
                and gref.repo_id != cls._repo_id
            ):
                raise RemoteError(
                    f"group '{gref.group_name}' implements "
                    f"{gref.repo_id}, proxy expects {cls._repo_id}",
                    category="INV_OBJREF",
                )
            binding = GroupBinding(GroupView(gref), policy, token)
            ref = binding.current_ref()
            _groups_stats.GLOBAL.bump("binds")
            return cls(
                bind_runtime,
                ref,
                (
                    BindMode.SERIAL
                    if bind_runtime.app_comm is None
                    else BindMode.SPMD
                ),
                cls._default_transfer(ref, transfer),
                ft_policy=ft_policy,
                group=binding,
            )

    @staticmethod
    def _resolve_group(naming: Any, group_name: str) -> GroupReference:
        resolve_group = getattr(naming, "resolve_group", None)
        if resolve_group is None:
            raise RemoteError(
                f"naming service {type(naming).__name__} has no group "
                f"directory; replicated groups need a "
                f"repro.groups.ShardedNaming router",
                category="INV_OBJREF",
            )
        return resolve_group(group_name)

    @classmethod
    def _default_transfer(
        cls, ref: ObjectReference, transfer
    ) -> str:
        if transfer is not None:
            transfer = getattr(transfer, "value", transfer)
            engine_for(transfer)  # validate early
            return transfer
        return "multiport" if ref.multiport_capable else "centralized"

    @classmethod
    def _check_interface(cls, ref: ObjectReference) -> None:
        if cls._repo_id and ref.repo_id and ref.repo_id != cls._repo_id:
            raise RemoteError(
                f"object '{ref.object_key}' implements {ref.repo_id}, "
                f"proxy expects {cls._repo_id}",
                category="INV_OBJREF",
            )

    # -- invocation -----------------------------------------------------------

    @property
    def reference(self) -> ObjectReference:
        return self._ref

    @property
    def transfer_method(self) -> str:
        return self._engine.mode

    def _spec(self, operation: str) -> OperationSpec:
        try:
            return self._operations[operation]
        except KeyError:
            raise RemoteError(
                f"interface {self._interface!r} has no operation "
                f"{operation!r}",
                category="BAD_OPERATION",
            ) from None

    def _check_serial_args(self, spec: OperationSpec, args: tuple) -> None:
        """After plain ``_bind``, distributed arguments must be serial:
        the thread interacts with the object on its own."""
        if self._mode is not BindMode.SERIAL:
            return
        for param, value in zip(spec.sent_params, args):
            if param.distributed and getattr(value, "comm", None) is not None:
                raise ValueError(
                    f"argument '{param.name}' is group-distributed; "
                    f"after _bind use the non-distributed mapping "
                    f"(serial sequences), or bind with _spmd_bind"
                )

    def set_out_template(
        self, operation: str, param: str, template: Any
    ) -> None:
        """Preset the client-side distribution of an out/return value.

        §2.2: "An 'out' argument should be initialized by a
        distribution template before calling the operation which
        returns it; otherwise a uniform blockwise distribution will be
        assumed."  Use ``"__return__"`` as ``param`` for a distributed
        return value.
        """
        from repro.idl.runtime import template_to_spec
        from repro.orb.transfer import reply_slots

        spec = self._spec(operation)
        slot = next(
            (s for s in reply_slots(spec) if s.name == param), None
        )
        if slot is None or not slot.distributed:
            raise ValueError(
                f"'{param}' is not a distributed out/return value of "
                f"operation '{operation}'"
            )
        if slot.param is not None and slot.param.direction.sends:
            raise ValueError(
                f"'{param}' is inout; its distribution follows the "
                f"argument you pass"
            )
        nranks = getattr(template, "nranks", None)
        if nranks is not None and nranks != self._runtime.size:
            raise ValueError(
                f"template spans {nranks} threads but the client "
                f"group has {self._runtime.size}"
            )
        self._out_templates[(operation, param)] = template_to_spec(
            template
        )

    def _invoke(self, operation: str, args: tuple) -> Any:
        """Blocking invocation (runs on the rank's worker for ordering
        against outstanding non-blocking calls)."""
        policy = effective_policy(self._ft_policy, self._runtime)
        if policy is not None:
            # The engine owns the deadline; the blocking caller just
            # needs a safety margin over the worst-case retry budget.
            timeout = policy.wait_budget(self._runtime.timeout)
            if timeout is not None and self._group is not None:
                # Each failover replays the full per-replica budget.
                timeout *= 1 + self._group.budget(policy)
        else:
            timeout = (
                None if self._runtime.timeout is None
                else self._runtime.timeout * 2
            )
        return self._invoke_nb(operation, args).value(timeout=timeout)

    def _invoke_nb(self, operation: str, args: tuple) -> Future:
        """Non-blocking invocation returning a future (§2.1).

        The worker launches the request (send phase) as soon as it
        reaches the head of the queue — up to the runtime's
        ``pipeline_depth`` requests overlap their round-trips — and
        completes it when the future is touched, the pipeline fills,
        or the runtime closes.
        """
        spec = self._spec(operation)
        self._check_serial_args(spec, args)
        runtime = self._runtime
        engine = self._engine
        ref = self._ref
        site = ""
        if runtime.sanitize:
            site = _san_call_site()
            if self._mode is BindMode.SPMD and runtime.san is not None:
                # Alignment check on the application thread, in
                # program order, *before* the launch enters the
                # worker: a divergent rank aborts here with the call
                # site, instead of cross-matching engine collectives.
                runtime.san.check(
                    f"{self._interface}.{operation}", site
                )
        out_map = {
            param: template_spec
            for (op, param), template_spec in self._out_templates.items()
            if op == operation
        }
        if self._group is not None:
            launch = self._group_launch_fn(operation, spec, args, out_map)
        else:
            launch = lambda: engine.invoke_begin(  # noqa: E731
                runtime,
                ref,
                spec,
                args,
                out_templates=out_map,
                ft_policy=self._ft_policy,
                on_degrade=self._on_degrade,
            )
        future = runtime.worker.submit(
            launch,
            label=f"{self._interface}.{operation}",
        )
        if runtime.sanitize:
            _san_track(
                future, f"{self._interface}.{operation}", site
            )
        return future

    def invoke_all(self, operation: str, args: tuple = ()) -> Any:
        """Collective invocation by name (the paper's vocabulary).

        Equivalent to calling the generated stub method, but spelled
        with the §2 verb the correctness tooling is built around:
        both the static collective-flow analysis
        (:mod:`repro.lint.flow`) and the runtime sanitizer
        (:mod:`repro.san`) treat ``invoke_all`` as a collective
        entry point, so code using this spelling is checkable even
        when the operation name is dynamic.
        """
        return self._invoke(operation, tuple(args))

    def invoke_all_nb(self, operation: str, args: tuple = ()) -> Future:
        """Non-blocking :meth:`invoke_all`, returning a future."""
        return self._invoke_nb(operation, tuple(args))

    # -- replicated groups -------------------------------------------------

    def _group_launch_fn(
        self,
        operation: str,
        spec: OperationSpec,
        args: tuple,
        out_map: dict[str, tuple],
    ) -> Callable[[], tuple[str, Any]]:
        """The worker-submitted launch for a group-bound invocation.

        Identical to the singleton launch except that (a) the trace id
        is pre-drawn from the shared request-id sequence, so the spans
        of a failed attempt and of its replay on another replica
        correlate into one trace; (b) engine phases run inside a
        :class:`~repro.trace.span.replica_scope`, tagging every
        client-side span with the replica the request actually
        targeted; and (c) a failure surfacing from the completion is
        routed through :meth:`_group_replay` instead of the future.

        Launches and completions both run on the rank's worker in
        queue-determined order, so the pre-draw, the failover vote and
        the replay's own collectives stay aligned across ranks.
        """
        runtime = self._runtime
        binding = self._group

        def launch() -> tuple[str, Any]:
            engine = self._engine
            replica_id = binding.current_replica()
            trace_id = (
                runtime.next_request_id()
                if runtime.trace is not None
                else None
            )
            with replica_scope(replica_id):
                state, payload = engine.invoke_begin(
                    runtime,
                    binding.current_ref(),
                    spec,
                    args,
                    out_templates=out_map,
                    ft_policy=self._ft_policy,
                    on_degrade=self._on_degrade,
                    trace_id=trace_id,
                )
            if state == "done":
                return state, payload

            def complete() -> Any:
                try:
                    with replica_scope(replica_id):
                        return payload()
                except BaseException as exc:  # noqa: BLE001 - classified below
                    return self._group_replay(
                        operation, spec, args, out_map, exc,
                        attempt_replica=replica_id,
                        trace_id=trace_id,
                    )

            return "pending", complete

        return launch

    def _group_replay(
        self,
        operation: str,
        spec: OperationSpec,
        args: tuple,
        out_map: dict[str, tuple],
        exc: BaseException,
        *,
        attempt_replica: int,
        trace_id: int | None,
    ) -> Any:
        """Fail over and replay until a replica answers or the budget
        is spent (worker thread, completion drain order).

        The failed attempt already raised the *group-agreed* exception
        at the same collective index on every rank (that is what the
        ft agreement guarantees), so every rank enters here together.
        One more collective — :func:`~repro.groups.failover.
        agree_failover` — confirms all ranks abandon the same replica
        with the same token, then the replacement is a pure function
        of shared state and the replay's own collectives realign.

        ``attempt_replica`` is the replica the failed attempt actually
        targeted.  Under pipelining several in-flight requests were
        launched at the same (now dead) replica; only the *first*
        failing completion flips the binding — the rest see the
        binding already moved past their replica and replay straight
        against the current one, without burning failover budget or
        marking healthy replicas down.
        """
        runtime = self._runtime
        binding = self._group
        policy = effective_policy(self._ft_policy, runtime)
        last = exc
        while True:
            if not failover_worthy(last, policy):
                raise last
            collective_index = getattr(last, "collective_index", 0)
            if binding.current_replica() == attempt_replica:
                # The failed replica is still this binding's target:
                # flip (collectively) before replaying.
                if binding.budget(policy) <= 0:
                    raise binding.exhausted(
                        f"{self._interface}.{operation}",
                        collective_index=collective_index,
                        detail=str(last),
                    ) from last
                with span_or_null(
                    runtime.trace, "failover", side="client",
                    trace_id=trace_id or 0, rank=runtime.rank,
                    group=binding.group_name,
                    failed_replica=attempt_replica,
                    operation=f"{self._interface}.{operation}",
                ) as flip:
                    agree_failover(
                        runtime.rts, attempt_replica, binding.token + 1
                    )
                    try:
                        replica_id, ref = binding.fail_over(
                            attempt_replica
                        )
                    except SelectionError:
                        raise binding.exhausted(
                            f"{self._interface}.{operation}",
                            collective_index=collective_index,
                            detail=str(last),
                        ) from last
                    flip.note(replica=replica_id)
                self._ref = ref
                if runtime.rank == 0:
                    # Report the death to the router (rank 0 only: one
                    # report per collective binding): the health epoch
                    # bumps and later binds exclude the dead replica.
                    # Best-effort — a vanished router must not turn a
                    # successful failover into a client-visible error.
                    mark_down = getattr(
                        runtime.naming, "mark_down", None
                    )
                    if mark_down is not None:
                        try:
                            mark_down(
                                binding.group_name, attempt_replica
                            )
                        except Exception:
                            pass
                runtime.ft_stats.bump("failovers")
                if runtime.trace is not None:
                    runtime.trace.metrics.counter(
                        "groups.failovers"
                    ).inc()
            else:
                # An earlier completion already flipped past this
                # attempt's replica — replay on the current target.
                replica_id = binding.current_replica()
                ref = binding.current_ref()
            try:
                with replica_scope(replica_id):
                    return self._engine.invoke(
                        runtime,
                        ref,
                        spec,
                        args,
                        out_templates=out_map,
                        ft_policy=self._ft_policy,
                        on_degrade=self._on_degrade,
                        trace_id=trace_id,
                    )
            except BaseException as nexc:  # noqa: BLE001 - loop classifies
                last = nexc
                attempt_replica = replica_id

    def _on_degrade(self) -> None:
        """Multi-port graceful degradation (engine callback, every
        rank): subsequent invocations go centralized directly instead
        of rediscovering the dead data path each time."""
        self._engine = engine_for("centralized")

    def __repr__(self) -> str:
        if self._group is not None:
            return (
                f"<proxy {self._interface} -> group "
                f"'{self._group.group_name}' replica "
                f"{self._group.current_replica()} "
                f"[{self._mode.value}, {self._engine.mode}]>"
            )
        return (
            f"<proxy {self._interface} -> '{self._ref.object_key}' "
            f"[{self._mode.value}, {self._engine.mode}]>"
        )
