"""The object adapter: server-side activation and dispatch.

A :class:`ServantGroup` is the server half of an SPMD object: it owns
one computing thread per rank, each running a servant instance and a
dispatch loop.  Requests arrive on the group's single request port —
waited on by the communicating thread (rank 0) — and are delivered "to
all the computing threads" (the defining property of an SPMD object,
§2) by an internal broadcast, after which the transfer engine matching
the request's mode moves the distributed arguments in.

The group registers itself with the naming service on activation,
publishing an object reference that carries the request port, the
per-thread data ports (multi-port method), and the distribution
templates the servant registered for its parameters (§2.2).
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.cdr.typecodes import DSequenceTC
from repro.dist import (
    BlockTemplate,
    DistributedSequence,
    Layout,
    transfer_schedule,
)
from repro.dist.template import DistTemplate
from repro.orb import request as wire
from repro.orb.operation import (
    OperationSpec,
    RemoteError,
    UserException,
)
from repro.orb.reference import ObjectReference
from repro.orb.request import ReplyMessage, RequestMessage
from repro.cdr.accounting import copied
from repro.orb.transfer import (
    ChunkCollector,
    Tracer,
    assemble_chunks,
    decode_full_body,
    decode_plain_body,
    decompose,
    detach_plain_values,
    encode_system_exception,
    encode_user_exception,
    full_body_encoder,
    plain_body_encoder,
    produced_slots,
    reply_slots,
    request_slots,
    send_chunks,
    server_layout,
    staging_array,
)
from repro.ft.dedup import ReplyCache
from repro.orb.transport import (
    Fabric,
    KIND_CONTROL,
    KIND_DATA,
    KIND_REPLY,
    Port,
    TransportError,
)
from repro.rts.executor import SpmdExecutor, SpmdHandle
from repro.rts.interface import MessagePassingRTS
from repro.rts.mpi import DeadlockError, GroupAbortedError, Intracomm
from repro.trace.span import span_or_null

#: Control payloads on the request port.
CONTROL_SHUTDOWN = b"shutdown"

#: Tag for pre-read request headers relayed rank 0 → peers (kept far
#: from application tags, like the RTS chunk tag in
#: :mod:`repro.rts.interface`).
_TAG_HEADER = 1 << 22

#: How many decoded requests rank 0 reads ahead of execution.  Beyond
#: this, frames back up in the request port undecoded.
_PREFETCH_DEPTH = 2

#: Reply staging buffers rotated per request on rank 0.  Must exceed
#: the number of encoded replies alive at once: one being produced,
#: :data:`_REPLY_QUEUE_DEPTH` queued, one on the wire.
_STAGING_ROTATION = 4

#: Encoded replies the sender thread may hold before the dispatch
#: loop blocks handing it more.
_REPLY_QUEUE_DEPTH = 2


@dataclass
class ServantContext:
    """Per-rank server-side state handed to servants and engines."""

    rank: int
    size: int
    comm: Intracomm | None
    rts: MessagePassingRTS | None
    request_port: Port | None  # rank 0 only
    data_port: Port
    collector: ChunkCollector
    fabric: Fabric
    templates: dict[tuple[str, str], tuple]
    tracer: Tracer | None = None
    #: ``repro.trace`` recorder (None = tracing off): the engine opens
    #: rank-tagged server-side spans under the request header's trace
    #: id, correlating them with the client's spans.
    trace: Any = None
    timeout: float = 60.0
    #: Set by the servant group: collective drain of queued requests
    #: (the §2.1 "interrupt its computation to process outstanding
    #: requests" capability).  See :meth:`Servant.service_pending`.
    service_fn: Callable[[int], int] | None = None


class Servant:
    """Base class of generated skeletons.

    Implement one method per IDL operation.  The activation context is
    available as :attr:`comm` / :attr:`rank` / :attr:`size` for
    SPMD-aware implementations (e.g. to build result sequences over
    the server group).
    """

    _interface: str = ""
    _repo_id: str = ""
    _operations: dict[str, OperationSpec] = {}
    _pardis_ctx: ServantContext | None = None

    @property
    def ctx(self) -> ServantContext:
        if self._pardis_ctx is None:
            raise RuntimeError("servant is not activated")
        return self._pardis_ctx

    @property
    def comm(self) -> Intracomm | None:
        return self.ctx.comm

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.size

    def sequence(
        self,
        typedef: Any,
        length: int,
        template: DistTemplate | None = None,
    ) -> DistributedSequence:
        """Create a result sequence distributed over the server group."""
        return typedef.create(length, comm=self.comm, template=template)

    def service_pending(self, max_requests: int = 1) -> int:
        """Interrupt the current computation to serve queued requests.

        Paper §2.1: "PARDIS also allows the server to interrupt its
        computation in order to process outstanding requests."
        Collective: every computing thread of the object must call it
        at the same point.  Processes up to ``max_requests`` requests
        already queued on the object's request port (never blocks
        waiting for new ones) and returns how many were served.
        """
        fn = self.ctx.service_fn
        if fn is None:
            raise RuntimeError(
                "service_pending is only available on an activated "
                "servant"
            )
        return fn(max_requests)


# ---------------------------------------------------------------------------
# Server-side request execution
# ---------------------------------------------------------------------------


def _resolve_spec(
    servant: Servant, operation: str
) -> OperationSpec | None:
    return servant._operations.get(operation)


def _call_servant(
    servant: Servant, spec: OperationSpec, args: list[Any]
) -> tuple[str, Any]:
    """Invoke the implementation method, classifying the outcome.

    Returns ``('ok', produced)``, ``('user', (tc, members))`` or
    ``('system', (category, message))`` — all picklable, so ranks can
    agree on the outcome by allgather.
    """
    method = getattr(servant, spec.name, None)
    if method is None or not callable(method):
        return (
            "system",
            (
                "NO_IMPLEMENT",
                f"servant {type(servant).__name__} does not implement "
                f"'{spec.name}'",
            ),
        )
    try:
        result = method(*args)
        produced = decompose(
            result, len(produced_slots(spec)), f"servant '{spec.name}'"
        )
        return ("ok", produced)
    except UserException as exc:
        if spec.exception_by_id(exc._tc.repo_id if exc._tc else "") is None:
            return (
                "system",
                (
                    "UNKNOWN",
                    f"servant raised undeclared exception "
                    f"{type(exc).__name__}",
                ),
            )
        return ("user", exc)
    except Exception as exc:  # noqa: BLE001 - reported to the client
        return ("system", ("UNKNOWN", f"{type(exc).__name__}: {exc}"))


def _agree_outcome(
    ctx: ServantContext, outcome: tuple[str, Any]
) -> tuple[str, Any]:
    """All ranks must deliver the same outcome class; on disagreement
    every rank adopts one canonical failure.

    Disagreement has two faces: a genuinely broken SPMD servant (some
    ranks return, others raise — an INTERNAL error), and a rank-local
    delivery failure (one rank's request chunks never arrived, the
    others assembled fine).  The vote carries system-failure payloads
    so the second case surfaces as the real failure — lowest-rank
    system outcome wins — keeping its category (COMM_FAILURE is
    retryable under a client fault-tolerance policy; INTERNAL is not).
    """
    if ctx.comm is None:
        return outcome
    votes = ctx.comm.allgather(
        (outcome[0], outcome[1] if outcome[0] == "system" else None)
    )
    kinds = [kind for kind, _ in votes]
    if all(k == kinds[0] for k in kinds):
        return outcome
    for kind, payload in votes:
        if kind == "system":
            return ("system", payload)
    return (
        "system",
        (
            "INTERNAL",
            f"SPMD servant diverged: outcomes {sorted(set(kinds))} "
            f"across threads",
        ),
    )


def _error_reply(
    request: RequestMessage, outcome: tuple[str, Any]
) -> ReplyMessage:
    kind, payload = outcome
    if kind == "user":
        return ReplyMessage(
            request.request_id,
            wire.STATUS_USER_EXCEPTION,
            encode_user_exception(payload),
        )
    category, message = payload
    return ReplyMessage(
        request.request_id,
        wire.STATUS_SYSTEM_EXCEPTION,
        encode_system_exception(category, message),
    )


class _ServerEngine:
    """Executes one request on one rank (all ranks run this in
    lockstep)."""

    def __init__(
        self,
        ctx: ServantContext,
        servant: Servant,
        cache: ReplyCache | None = None,
    ) -> None:
        self.ctx = ctx
        self.servant = servant
        #: The group's reply cache (request dedup); ``None`` when the
        #: object was activated without ``reply_cache_bytes``.
        self.cache = cache
        #: Set on rank 0 of collective groups: replies leave through a
        #: dedicated sender thread instead of the dispatch loop.
        self.reply_sender: _ReplySender | None = None
        self._staging_seq = 0

    # -- shared ----------------------------------------------------------

    def _bcast(self, value: Any) -> Any:
        if self.ctx.rts is None:
            return value
        return self.ctx.rts.broadcast(value, root=0)

    def _staging_name(self, name: str) -> str:
        """The reply staging buffer for parameter ``name``.

        With a reply sender, the encoded body (which references the
        staging array) outlives this request's dispatch, so buffers
        rotate: by the time a name repeats, its previous reply is
        guaranteed off the wire (the sender queue is shorter than the
        rotation)."""
        if self.reply_sender is None:
            return name
        return f"{name}#{self._staging_seq % _STAGING_ROTATION}"

    def _reply(self, request: RequestMessage, reply: ReplyMessage) -> None:
        if self.ctx.rank != 0:
            return
        if request.oneway or request.reply_port is None:
            if self.cache is not None:
                # No reply to replay, but the executed id must still
                # swallow duplicate deliveries forever.
                self.cache.record_reply(request.request_id, None)
            return
        port = self.ctx.request_port or self.ctx.data_port
        if self.ctx.tracer:
            self.ctx.tracer.emit(
                "net-reply", request.mode, len(reply.body)
            )
        if self.reply_sender is not None:
            self.reply_sender.submit(
                port, request.reply_port, reply.encode_segments()
            )
        else:
            port.send(
                request.reply_port, reply.encode_segments(), KIND_REPLY
            )
        if self.cache is not None:
            if reply.status == wire.STATUS_SYSTEM_EXCEPTION:
                # The request did not run to completion; the correct
                # answer to a retry is to re-execute it.
                self.cache.forget(request.request_id)
            else:
                self.cache.record_reply(
                    request.request_id,
                    b"".join(
                        bytes(s) for s in reply.encode_segments()
                    ),
                )

    def _server_layout_for(
        self, operation: str, param: str, length: int
    ) -> Layout:
        return server_layout(
            self.ctx.templates.get((operation, param)),
            length,
            self.ctx.size,
        )

    def execute(self, request: RequestMessage) -> None:
        self._staging_seq += 1
        spec = _resolve_spec(self.servant, request.operation)
        if spec is None:
            self._reply(
                request,
                ReplyMessage(
                    request.request_id,
                    wire.STATUS_SYSTEM_EXCEPTION,
                    encode_system_exception(
                        "BAD_OPERATION",
                        f"interface {self.servant._interface!r} has no "
                        f"operation {request.operation!r}",
                    ),
                ),
            )
            return
        try:
            if request.mode == wire.MODE_MULTIPORT:
                self._execute_multiport(request, spec)
            else:
                self._execute_centralized(request, spec)
        except (UserException, RemoteError, Exception) as exc:  # noqa: B014
            # Engine-level failure: report if this rank owns the reply
            # channel.  Transport trouble (e.g. request chunks that
            # never arrived) is COMM_FAILURE — retryable under a
            # client fault-tolerance policy — while marshaling and
            # schedule mismatches stay MARSHAL (retrying cannot help).
            category = (
                "COMM_FAILURE"
                if isinstance(exc, TransportError)
                else "MARSHAL"
            )
            self._reply(
                request,
                ReplyMessage(
                    request.request_id,
                    wire.STATUS_SYSTEM_EXCEPTION,
                    encode_system_exception(
                        category, f"{type(exc).__name__}: {exc}"
                    ),
                ),
            )

    # -- centralized (§3.2) ------------------------------------------------

    def _execute_centralized(
        self, request: RequestMessage, spec: OperationSpec
    ) -> None:
        ctx = self.ctx
        span_kw = dict(
            trace_id=request.trace_id, side="server", rank=ctx.rank
        )
        xfer_span = span_or_null(
            ctx.trace, "transfer", op=spec.name,
            engine=wire.MODE_CENTRALIZED, request_id=request.request_id,
            **span_kw,
        )
        slots = request_slots(spec)
        if ctx.rank == 0:
            values = decode_full_body(slots, request.body)
            # Servants may mutate plain arguments; decoder views must
            # not alias the receive buffer once they escape.
            detach_plain_values(slots, values)
            plain = {
                s.name: values[s.name] for s in slots if not s.distributed
            }
        else:
            values, plain = {}, None
        plain = self._bcast(plain)

        args: list[Any] = []
        for slot in slots:
            if not slot.distributed:
                args.append(plain[slot.name])
                continue
            tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
            length = (
                len(values[slot.name]) if ctx.rank == 0 else 0
            )
            length = self._bcast(length)
            layout = self._server_layout_for(spec.name, slot.name, length)
            local = np.zeros(
                layout.local_length(ctx.rank), dtype=tc.element_dtype
            )
            if ctx.rts is None:
                copied(local.nbytes)
                local[:] = values[slot.name]
            else:
                steps = transfer_schedule(
                    Layout(((0, length),)), layout
                )
                if ctx.tracer and ctx.rank == 0:
                    for step in steps:
                        if step.dst_rank != 0:
                            ctx.tracer.emit(
                                "rts-scatter", "server", 0, step.dst_rank,
                                step.nelems,
                            )
                ctx.rts.scatter_chunks(
                    np.asarray(values[slot.name])
                    if ctx.rank == 0
                    else None,
                    steps,
                    root=0,
                    out=local,
                )
            args.append(
                DistributedSequence(
                    length,
                    dtype=tc.element_dtype,
                    comm=ctx.comm,
                    bound=tc.bound,
                    _layout=layout,
                    _local=local,
                )
            )

        xfer_span.end()
        disp_span = span_or_null(
            ctx.trace, "dispatch", op=spec.name, **span_kw
        )
        outcome = _agree_outcome(
            ctx, _call_servant(self.servant, spec, args)
        )
        # "After the invocation the server's computing threads
        # synchronize and the communicating thread informs the client."
        if ctx.rts is not None:
            if ctx.tracer:
                ctx.tracer.emit("sync", "server", "post-invoke")
            ctx.rts.synchronize()
        disp_span.note(outcome=outcome[0]).end()
        reply_span = span_or_null(ctx.trace, "reply", **span_kw)
        if outcome[0] != "ok":
            self._reply(request, _error_reply(request, outcome))
            reply_span.note(status=outcome[0]).end()
            return

        produced = outcome[1]
        produced_map = dict(
            zip((s.name for s in produced_slots(spec)), produced)
        )
        reply_values: dict[str, Any] = {}
        for slot in reply_slots(spec):
            if slot.name in produced_map:
                value = produced_map[slot.name]
            else:
                # inout distributed sequence: the mutated argument.
                index = [s.name for s in slots].index(slot.name)
                value = args[index]
            if not slot.distributed:
                reply_values[slot.name] = value
                continue
            if not isinstance(value, DistributedSequence):
                raise RemoteError(
                    f"servant produced {type(value).__name__} for "
                    f"distributed slot '{slot.name}'",
                    category="BAD_PARAM",
                )
            if ctx.rts is None:
                reply_values[slot.name] = value.local_data()
            else:
                steps = transfer_schedule(
                    value.layout, Layout(((0, value.length()),))
                )
                if ctx.tracer:
                    for step in steps:
                        if step.src_rank != 0:
                            ctx.tracer.emit(
                                "rts-gather", "server", step.src_rank, 0,
                                step.nelems,
                            )
                full = ctx.rts.gather_chunks(
                    value.local_data(),
                    steps,
                    root=0,
                    out=(
                        staging_array(
                            self._staging_name(slot.name),
                            value.length(),
                            value.dtype,
                        )
                        if ctx.rank == 0
                        else None
                    ),
                )
                reply_values[slot.name] = full
        if ctx.rank == 0:
            body = full_body_encoder(reply_slots(spec), reply_values)
            self._reply(
                request,
                ReplyMessage(request.request_id, wire.STATUS_OK, body),
            )
            reply_span.note(nbytes=len(body))
        reply_span.end()

    # -- multi-port (§3.3) ---------------------------------------------------

    def _execute_multiport(
        self, request: RequestMessage, spec: OperationSpec
    ) -> None:
        ctx = self.ctx
        span_kw = dict(
            trace_id=request.trace_id, side="server", rank=ctx.rank
        )
        xfer_span = span_or_null(
            ctx.trace, "transfer", op=spec.name,
            engine=wire.MODE_MULTIPORT, request_id=request.request_id,
            **span_kw,
        )
        slots = request_slots(spec)
        if ctx.rank == 0:
            plain = decode_plain_body(slots, request.body)
            detach_plain_values(slots, plain)
        else:
            plain = None
        plain = self._bcast(plain)

        client_layouts: dict[str, Layout] = {}
        args: list[Any] = []
        failure: tuple[str, Any] | None = None
        # Argument assembly is all rank-local (each rank collects on
        # its own data port), so a failure here — request chunks that
        # never arrived, a bad layout — must not raise past the
        # outcome vote below: the other ranks would enter the servant
        # collectives while this one unwinds, wedging the group.  It
        # becomes this rank's vote instead.
        try:
            for slot in slots:
                if not slot.distributed:
                    args.append(plain[slot.name])
                    continue
                tc: DSequenceTC = slot.typecode  # type: ignore[assignment]
                lengths = request.layout_of(slot.name)
                if lengths is None:
                    raise RemoteError(
                        f"request is missing the layout of '{slot.name}'",
                        category="MARSHAL",
                    )
                client_layout = Layout.from_local_lengths(lengths)
                client_layouts[slot.name] = client_layout
                layout = self._server_layout_for(
                    spec.name, slot.name, client_layout.length
                )
                steps = transfer_schedule(client_layout, layout)
                expected = sum(
                    1 for s in steps if s.dst_rank == ctx.rank
                )
                local = np.zeros(
                    layout.local_length(ctx.rank), dtype=tc.element_dtype
                )
                chunks = ctx.collector.collect(
                    request.request_id,
                    slot.name,
                    wire.PHASE_REQUEST,
                    expected,
                    timeout=ctx.timeout,
                )
                assemble_chunks(
                    chunks, layout, ctx.rank, tc.element_dtype, local
                )
                args.append(
                    DistributedSequence(
                        client_layout.length,
                        dtype=tc.element_dtype,
                        comm=ctx.comm,
                        bound=tc.bound,
                        _layout=layout,
                        _local=local,
                    )
                )
        except TransportError as exc:
            failure = (
                "system",
                ("COMM_FAILURE", f"{type(exc).__name__}: {exc}"),
            )
        except RemoteError as exc:
            failure = ("system", (exc.category, str(exc)))
        except Exception as exc:  # noqa: BLE001 - voted, sent to client
            failure = (
                "system", ("MARSHAL", f"{type(exc).__name__}: {exc}")
            )

        # Stage 1: agree that every rank assembled its arguments
        # before anyone enters the servant (whose body may contain
        # collectives that would wedge against a rank that is
        # unwinding).  Stage 2 below agrees on the servant's outcome.
        if ctx.comm is not None:
            delivery = _agree_outcome(
                ctx, failure if failure is not None else ("ok", None)
            )
            if delivery[0] != "ok":
                if ctx.rts is not None:
                    ctx.rts.synchronize()
                xfer_span.note(outcome=delivery[0]).end()
                self._reply(request, _error_reply(request, delivery))
                return
        elif failure is not None:
            xfer_span.note(outcome=failure[0]).end()
            self._reply(request, _error_reply(request, failure))
            return
        xfer_span.end()

        disp_span = span_or_null(
            ctx.trace, "dispatch", op=spec.name, **span_kw
        )
        outcome = _agree_outcome(
            ctx, _call_servant(self.servant, spec, args)
        )
        if ctx.rts is not None:
            if ctx.tracer:
                ctx.tracer.emit("sync", "server", "post-invoke")
            ctx.rts.synchronize()
        disp_span.note(outcome=outcome[0]).end()
        reply_span = span_or_null(ctx.trace, "reply", **span_kw)
        if outcome[0] != "ok":
            self._reply(request, _error_reply(request, outcome))
            reply_span.note(status=outcome[0]).end()
            return

        produced = outcome[1]
        produced_map = dict(
            zip((s.name for s in produced_slots(spec)), produced)
        )
        # Work out, deterministically on every rank, where each
        # returned distributed value lives server-side and lands
        # client-side.
        returns: list[tuple[Any, DistributedSequence, Layout]] = []
        dist_layouts = []
        for slot in reply_slots(spec):
            if slot.name in produced_map:
                value = produced_map[slot.name]
            else:
                index = [s.name for s in slots].index(slot.name)
                value = args[index]
            if not slot.distributed:
                continue
            if not isinstance(value, DistributedSequence):
                raise RemoteError(
                    f"servant produced {type(value).__name__} for "
                    f"distributed slot '{slot.name}'",
                    category="BAD_PARAM",
                )
            if slot.param is not None and slot.param.direction.sends:
                # inout: the client keeps its layout, resized if the
                # servant changed the length.
                client_layout = client_layouts[slot.name].resized(
                    value.length()
                )
            else:
                # out/return: the template the caller preset in the
                # request header, defaulting to blockwise (§2.2).
                from repro.idl.runtime import template_from_spec

                template = template_from_spec(
                    request.out_template_of(slot.name)
                )
                client_layout = (template or BlockTemplate()).layout(
                    value.length(), request.client_nthreads
                )
            returns.append((slot, value, client_layout))
            dist_layouts.append(
                (
                    slot.name,
                    client_layout.local_lengths(),
                    value.layout.local_lengths(),
                )
            )

        if ctx.rank == 0:
            reply_values = {
                s.name: produced_map.get(s.name)
                for s in reply_slots(spec)
                if not s.distributed
            }
            body = plain_body_encoder(reply_slots(spec), reply_values)
            self._reply(
                request,
                ReplyMessage(
                    request.request_id,
                    wire.STATUS_OK,
                    body,
                    dist_layouts=tuple(dist_layouts),
                ),
            )
        # Data flows straight from each computing thread to the
        # client threads owning the overlap.  With a reply cache, each
        # outgoing frame is recorded so a retried request can be
        # answered by replaying it.
        record = None
        if self.cache is not None:
            record = (
                lambda dst_rank, frame, _id=request.request_id:
                self.cache.record_chunks(_id, dst_rank, frame)
            )
        for slot, value, client_layout in returns:
            steps = transfer_schedule(value.layout, client_layout)
            send_chunks(
                ctx.data_port,
                request.client_data_ports,
                steps,
                ctx.rank,
                value.local_data(),
                request.request_id,
                slot.name,
                wire.PHASE_REPLY,
                ctx.tracer,
                record=record,
            )
        if self.cache is not None:
            # The request is done on this rank: drop any late or
            # re-delivered chunks for its id (a retry is answered from
            # the cache, never re-collected).
            ctx.collector.discard(request.request_id)
        reply_span.end()


# ---------------------------------------------------------------------------
# Pipelined dispatch: prefetch, deferred replies, serial worker pool
# ---------------------------------------------------------------------------


class _RequestPrefetcher:
    """Rank 0's receive/decode stage, overlapped with execution.

    A dedicated thread blocks on the request port, decodes each frame,
    relays the header to the peer ranks (buffered point-to-point on
    the group communicator, so the header of request N+1 is already
    delivered while every rank still executes N) and queues the full
    message for the dispatch loop.  The queue is bounded: when the
    group falls behind, frames back up undecoded in the port rather
    than as decoded messages here.

    Relay strictly precedes the local enqueue, so whenever rank 0
    holds a message its header is already buffered at every peer —
    the invariant :meth:`ServantGroup._next_request` and
    ``service_pending`` rely on to stay rank-consistent.
    """

    _STOP = object()

    def __init__(
        self,
        port: Port,
        comm: Intracomm | None,
        name: str,
        depth: int = _PREFETCH_DEPTH,
        cache: ReplyCache | None = None,
        governor: Any = None,
    ) -> None:
        self._port = port
        self._comm = comm
        self._cache = cache
        self._governor = governor
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=depth)
        self._thread = threading.Thread(
            target=self._run, name=f"{name}:prefetch", daemon=True
        )
        self._thread.start()

    def _relay(self, header: RequestMessage | None) -> None:
        if self._comm is None:
            return
        try:
            for peer in range(1, self._comm.size):
                self._comm.send(header, peer, tag=_TAG_HEADER)
        except Exception:
            # Aborted group: the dispatch loops are unwinding anyway.
            pass

    def _replay(self, message: RequestMessage) -> None:
        """Re-send a recorded reply for a retried request.

        Result chunks are replayed first (a multiport client collects
        them against the same request id), then the reply frame.  A
        reply-expecting retry whose frame is not recorded yet — the
        entry was evicted, or chunk recording raced ahead of the reply
        on a collective group — is silently dropped: the client's next
        retry will find either a complete entry or a fresh execution.
        """
        reply, chunks = self._cache.replay(message.request_id)
        if message.reply_port is not None and reply is None:
            return
        try:
            for dst_rank, frames in chunks.items():
                if dst_rank >= len(message.client_data_ports):
                    continue
                dest = message.client_data_ports[dst_rank]
                for frame in frames:
                    self._port.send(dest, frame, KIND_DATA)
            if message.reply_port is not None:
                self._port.send(message.reply_port, reply, KIND_REPLY)
        except TransportError:
            # The retrying client vanished mid-replay; the cache entry
            # stays for the next attempt.
            pass

    def _run(self) -> None:
        while True:
            try:
                _src, kind, payload = self._port.recv(timeout=None)
            except Exception:
                break  # port closed: shut the group down
            if kind == KIND_CONTROL and payload == CONTROL_SHUTDOWN:
                break
            try:
                message = wire.decode_request(payload)
            except Exception:
                # Garbage on the wire must not kill the object: drop
                # the datagram and keep serving — but release its
                # admission slot if the header was sound enough for
                # the event loop to have counted it.
                if self._governor is not None:
                    routing = wire.peek_request(payload)
                    if routing is not None:
                        self._governor.request_done(routing.request_id)
                continue
            if self._cache is not None:
                verdict = self._cache.admit(message.request_id)
                if verdict == "replay":
                    # Already executed: answer from the cache without
                    # touching the servant (effectively-once).
                    self._replay(message)
                    if self._governor is not None:
                        self._governor.request_done(message.request_id)
                    continue
                if verdict == "in-progress":
                    # The original attempt is still executing; its
                    # reply will answer the retry too.  The retry's
                    # own admission slot is released here.
                    if self._governor is not None:
                        self._governor.request_done(message.request_id)
                    continue
            self._relay(message.without_body())
            self._queue.put(message)
        self._relay(None)
        self._queue.put(self._STOP)

    def get(self) -> RequestMessage | None:
        """Next pre-read request; ``None`` once shut down (sticky)."""
        item = self._queue.get()
        if item is self._STOP:
            self._queue.put(self._STOP)
            return None
        return item

    def try_get(self) -> RequestMessage | None:
        """Non-blocking :meth:`get` for ``service_pending``."""
        try:
            item = self._queue.get_nowait()
        except queue.Empty:
            return None
        if item is self._STOP:
            self._queue.put(self._STOP)
            return None
        return item

    def join(self, timeout: float = 1.0) -> None:
        self._thread.join(timeout)


class _ReplySender:
    """Moves reply transmission off the dispatch critical path.

    Rank 0 of a collective group hands encoded reply segments to this
    thread and returns to the dispatch loop immediately; the bounded
    queue keeps only a couple of encoded replies alive at once, which
    the engine matches with rotated staging buffers
    (:meth:`_ServerEngine._staging_name`).
    """

    def __init__(self, name: str, depth: int = _REPLY_QUEUE_DEPTH) -> None:
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=depth)
        self._thread = threading.Thread(
            target=self._run, name=f"{name}:reply", daemon=True
        )
        self._thread.start()

    def submit(self, port: Port, destination: Any, segments: list) -> None:
        self._queue.put((port, destination, segments))

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            port, destination, segments = item
            try:
                port.send(destination, segments, KIND_REPLY)
            except Exception:
                # The client went away; its reply is undeliverable.
                pass

    def stop(self, timeout: float = 10.0) -> None:
        self._queue.put(None)
        self._thread.join(timeout)


class _DispatchPool:
    """Concurrent dispatch for serial (single-thread) groups.

    Two policies, selected per object:

    - ``"client-fifo"`` (the default): per-client fair queues keyed by
      the client identity in the request id's high bits.  One client's
      requests execute in send order (an identity is never on two
      workers at once), and a ready-ring round-robins workers across
      identities — a client with a thousand queued requests cannot
      starve a client with one.  Any worker may pick up any client, so
      ``dispatch_workers`` bounds concurrency, not placement (the old
      hash-onto-a-worker scheme pinned clients to workers, which under
      fan-in left workers idle while a busy worker's queue grew).
    - ``"concurrent"``: all workers drain one shared queue, so even a
      single pipelined client's requests execute concurrently, like a
      CORBA ORB-controlled-threads POA.  No cross-request ordering is
      guaranteed; meant for stateless or internally synchronized
      servants.

    When a :class:`~repro.orb.server.ServerGovernor` is attached,
    every request's exit from a worker releases its admission slot —
    the hook backpressure relies on to resume paused clients.

    Collective groups never use the pool; their engine runs
    collectives that need every rank in lockstep.
    """

    def __init__(
        self,
        engine: _ServerEngine,
        nworkers: int,
        name: str,
        policy: str = "client-fifo",
        governor: Any = None,
    ) -> None:
        self._engine = engine
        self._policy = policy
        self._governor = governor
        self._cond = threading.Condition()
        self._stopping = False
        #: client-fifo state: identity -> queued requests, ready-ring
        #: of identities with runnable work, identities currently on a
        #: worker, identities already in the ring (membership mirror).
        self._queues: dict[int, deque[RequestMessage]] = {}
        self._ready: deque[int] = deque()
        self._ringed: set[int] = set()
        self._active: set[int] = set()
        #: concurrent-policy state: one shared run queue.
        self._shared: deque[RequestMessage] = deque()
        self._threads = [
            threading.Thread(
                target=self._run,
                name=f"{name}:dispatch{i}",
                daemon=True,
            )
            for i in range(nworkers)
        ]
        for thread in self._threads:
            thread.start()

    def dispatch(self, request: RequestMessage) -> None:
        with self._cond:
            if self._policy == "concurrent":
                self._shared.append(request)
            else:
                identity = request.request_id >> 32
                self._queues.setdefault(identity, deque()).append(
                    request
                )
                if (
                    identity not in self._active
                    and identity not in self._ringed
                ):
                    self._ready.append(identity)
                    self._ringed.add(identity)
            self._cond.notify()

    def _take(self) -> tuple[int | None, RequestMessage] | None:
        """Next runnable request, or ``None`` to exit (stopping and
        fully drained)."""
        with self._cond:
            while True:
                if self._shared:
                    return None, self._shared.popleft()
                if self._ready:
                    identity = self._ready.popleft()
                    self._ringed.discard(identity)
                    q = self._queues[identity]
                    request = q.popleft()
                    if not q:
                        del self._queues[identity]
                    self._active.add(identity)
                    return identity, request
                if self._stopping and not self._queues:
                    return None
                self._cond.wait()

    def _done(self, identity: int) -> None:
        """An identity's request finished; if it has more queued work,
        it rejoins the *back* of the ready ring (round-robin)."""
        with self._cond:
            self._active.discard(identity)
            if identity in self._queues and identity not in self._ringed:
                self._ready.append(identity)
                self._ringed.add(identity)
            self._cond.notify_all()

    def _run(self) -> None:
        while True:
            item = self._take()
            if item is None:
                return
            identity, request = item
            try:
                self._engine.execute(request)
            except Exception:
                # Even the error reply failed to send (client gone):
                # there is nobody left to report to.
                pass
            finally:
                if self._governor is not None:
                    self._governor.request_done(request.request_id)
                if identity is not None:
                    self._done(identity)

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful drain: workers finish every queued request, then
        exit."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout)


# ---------------------------------------------------------------------------
# The servant group: activation + dispatch loop
# ---------------------------------------------------------------------------


class ObjectAdapter:
    """Factory/registry for servant groups on one fabric + naming pair.

    The :class:`repro.core.ORB` owns one of these.
    """

    def __init__(self, fabric: Fabric, naming: Any) -> None:
        self.fabric = fabric
        self.naming = naming
        self._groups: list[ServantGroup] = []

    def activate(
        self,
        name: str,
        servant_factory: Callable[[ServantContext], Servant],
        nthreads: int = 1,
        *,
        host: str = "",
        multiport: bool = True,
        templates: dict[tuple[str, str], Any] | None = None,
        tracer: Tracer | None = None,
        rts_style: str = "message-passing",
        dispatch_workers: int = 4,
        dispatch_policy: str = "client-fifo",
        reply_cache_bytes: int = 0,
        request_timeout: float = 60.0,
        trace: Any = None,
    ) -> "ServantGroup":
        group = ServantGroup(
            self.fabric,
            self.naming,
            name,
            servant_factory,
            nthreads,
            host=host,
            multiport=multiport,
            templates=templates,
            tracer=tracer,
            trace=trace,
            rts_style=rts_style,
            dispatch_workers=dispatch_workers,
            dispatch_policy=dispatch_policy,
            reply_cache_bytes=reply_cache_bytes,
            request_timeout=request_timeout,
        )
        group.start()
        self._groups.append(group)
        return group

    def shutdown(self) -> None:
        for group in self._groups:
            group.shutdown()
        self._groups.clear()


class ServantGroup:
    """One activated SPMD object: threads, ports, naming entry."""

    def __init__(
        self,
        fabric: Fabric,
        naming: Any,
        name: str,
        servant_factory: Callable[[ServantContext], Servant],
        nthreads: int,
        *,
        host: str = "",
        multiport: bool = True,
        templates: dict[tuple[str, str], Any] | None = None,
        tracer: Tracer | None = None,
        rts_style: str = "message-passing",
        dispatch_workers: int = 4,
        dispatch_policy: str = "client-fifo",
        reply_cache_bytes: int = 0,
        request_timeout: float = 60.0,
        trace: Any = None,
    ) -> None:
        if nthreads <= 0:
            raise ValueError("an SPMD object needs at least one thread")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if dispatch_workers <= 0:
            raise ValueError("dispatch_workers must be positive")
        if dispatch_policy not in ("client-fifo", "concurrent"):
            raise ValueError(
                "dispatch_policy must be 'client-fifo' or 'concurrent'"
            )
        self.rts_style = rts_style
        #: Worker threads for serial groups (``nthreads == 1``): with
        #: the default ``"client-fifo"`` policy one client's requests
        #: execute in send order while different clients overlap;
        #: ``"concurrent"`` drops the per-client ordering so even one
        #: pipelined client's requests overlap.  ``dispatch_workers=1``
        #: restores strictly serial dispatch.  Ignored by collective
        #: groups.
        self._dispatch_workers = dispatch_workers
        self._dispatch_policy = dispatch_policy
        self.fabric = fabric
        self.naming = naming
        self.name = name
        self.host = host
        self.nthreads = nthreads
        self.multiport = multiport
        self.tracer = tracer
        self.trace = trace
        from repro.idl.runtime import template_to_spec

        self._servant_factory = servant_factory
        self._templates = {
            key: template_to_spec(value)
            for key, value in (templates or {}).items()
        }
        #: Request dedup for client retries (ISSUE ft pillar 3).  Off
        #: by default: without it a retried request re-executes
        #: (at-least-once); with a byte budget, replies are recorded
        #: and replayed so retries become effectively-once.
        self.reply_cache = (
            ReplyCache(reply_cache_bytes) if reply_cache_bytes else None
        )
        #: Bound on a dispatched request's waits (chunk collection):
        #: a half-delivered request frees its dispatch slot after this
        #: long instead of pinning it for the default minute.
        self.request_timeout = request_timeout
        self._executor = SpmdExecutor(
            nthreads, name=f"server:{name}", backend="thread"
        )
        self._handle: SpmdHandle | None = None
        self._request_port: Port | None = None
        self._data_ports: list[Port] = []
        self._ref: ObjectReference | None = None
        self._started = threading.Event()
        self._repo_id = ""

    @property
    def reference(self) -> ObjectReference:
        if self._ref is None:
            raise RuntimeError(f"servant group '{self.name}' not started")
        return self._ref

    def start(self) -> None:
        """Open ports, register with naming, start dispatch threads."""
        if self._handle is not None:
            raise RuntimeError("servant group already started")
        self._request_port = self.fabric.open_port(
            f"{self.name}:request"
        )
        self._data_ports = [
            self.fabric.open_port(f"{self.name}:data{r}")
            for r in range(self.nthreads)
        ]
        self._handle = self._executor.spawn(self._rank_main)
        # Wait for activation, failing fast if the servant factory (or
        # any rank) dies before rank 0 reports ready.
        for _ in range(600):
            if self._started.wait(timeout=0.05):
                break
            if not self._handle.alive():
                handle, self._handle = self._handle, None
                for port in [self._request_port, *self._data_ports]:
                    if port is not None and not port.closed:
                        port.close()
                handle.join(timeout=5)  # raises the rank's SpmdError
                raise RuntimeError(
                    f"servant group '{self.name}' died during activation"
                )
        else:
            raise RuntimeError(
                f"servant group '{self.name}' failed to activate"
            )
        data_addresses = (
            tuple(p.address for p in self._data_ports)
            if self.multiport
            else ()
        )
        self._ref = ObjectReference(
            object_key=self.name,
            repo_id=self._repo_id,
            request_port=self._request_port.address,
            data_ports=data_addresses,
            param_templates=tuple(sorted(self._templates.items())),
        )
        self.naming.bind(self.name, self._ref, host=self.host)

    def _rank_main(self, rank_ctx: Any) -> int:
        comm = rank_ctx.comm if self.nthreads > 1 else rank_ctx.comm
        from repro.orb.proxy import make_rts

        ctx = ServantContext(
            rank=rank_ctx.rank,
            size=self.nthreads,
            comm=comm if self.nthreads > 1 else None,
            rts=(
                make_rts(self.rts_style, comm)
                if self.nthreads > 1
                else None
            ),
            request_port=(
                self._request_port if rank_ctx.rank == 0 else None
            ),
            data_port=self._data_ports[rank_ctx.rank],
            collector=ChunkCollector(self._data_ports[rank_ctx.rank]),
            fabric=self.fabric,
            templates=self._templates,
            tracer=self.tracer,
            trace=self.trace,
            timeout=self.request_timeout,
        )
        servant = self._servant_factory(ctx)
        if not isinstance(servant, Servant):
            raise TypeError(
                f"servant factory returned {type(servant).__name__}, "
                f"not a Servant"
            )
        servant._pardis_ctx = ctx
        if rank_ctx.rank == 0:
            self._repo_id = servant._repo_id
            self._started.set()
        engine = _ServerEngine(ctx, servant, cache=self.reply_cache)
        prefetcher: _RequestPrefetcher | None = None
        pool: _DispatchPool | None = None
        # Admission/backpressure accounting lives on the fabric's
        # server governor; only rank 0 (the communicating thread)
        # reports completions, so each request is released exactly
        # once.
        governor = (
            getattr(self.fabric, "governor", None)
            if rank_ctx.rank == 0
            else None
        )
        if rank_ctx.rank == 0:
            assert self._request_port is not None
            prefetcher = _RequestPrefetcher(
                self._request_port,
                ctx.comm,
                f"server:{self.name}",
                cache=self.reply_cache,
                governor=governor,
            )
            if ctx.rts is not None:
                # Collective group: reply transmission moves off the
                # dispatch loop's (and thus the servant's) critical
                # path.
                engine.reply_sender = _ReplySender(f"server:{self.name}")
            elif self._dispatch_workers > 1:
                # Serial group: no collectives constrain execution
                # order, so independent clients' requests overlap on a
                # small pool.
                pool = _DispatchPool(
                    engine,
                    self._dispatch_workers,
                    f"server:{self.name}",
                    policy=self._dispatch_policy,
                    governor=governor,
                )

        def service_pending(max_requests: int) -> int:
            """Drain already-queued requests mid-computation (§2.1)."""
            processed = 0
            while processed < max_requests:
                if ctx.rank == 0:
                    assert prefetcher is not None
                    message = prefetcher.try_get()
                else:
                    message = None
                if ctx.rts is not None:
                    # Peers need the header only; rank 0 keeps the
                    # original (its body may be a buffer view, which
                    # the pickling broadcast cannot carry).
                    outgoing = (
                        message.without_body()
                        if message is not None
                        else None
                    )
                    received = ctx.rts.broadcast(outgoing, root=0)
                    if ctx.rank != 0:
                        message = received
                        if message is not None:
                            # Pop (and discard) the copy the
                            # prefetcher relayed for this request,
                            # keeping the header stream aligned with
                            # the dispatch loop.  Guaranteed buffered:
                            # relay precedes rank 0's enqueue.
                            ctx.comm.recv(source=0, tag=_TAG_HEADER)
                if message is None:
                    break
                try:
                    engine.execute(message)
                finally:
                    if governor is not None:
                        governor.request_done(message.request_id)
                processed += 1
            return processed

        ctx.service_fn = service_pending
        served = 0
        try:
            while True:
                request = self._next_request(ctx, prefetcher)
                if request is None:
                    break
                if pool is not None:
                    pool.dispatch(request)
                else:
                    try:
                        engine.execute(request)
                    finally:
                        if governor is not None:
                            governor.request_done(request.request_id)
                served += 1
        finally:
            if pool is not None:
                pool.stop()
            if engine.reply_sender is not None:
                engine.reply_sender.stop()
            if prefetcher is not None:
                prefetcher.join()
        return served

    def _next_request(
        self,
        ctx: ServantContext,
        prefetcher: _RequestPrefetcher | None,
    ) -> RequestMessage | None:
        """Rank 0 takes the next pre-read request from the prefetcher;
        the peers take the header it already relayed — "delivered to
        all the computing threads" (§2), with the receive/decode stage
        of request N+1 overlapped with the execution of N."""
        if ctx.rank == 0:
            assert prefetcher is not None
            return prefetcher.get()
        while True:
            try:
                return ctx.comm.recv(source=0, tag=_TAG_HEADER)
            except DeadlockError:
                # An idle object, not a deadlock: no request arrived
                # for a whole timeout window.  Keep waiting — a dying
                # rank aborts the group and raises GroupAbortedError
                # here instead.
                continue
            except GroupAbortedError:
                return None

    def kill(self, timeout: float = 30.0) -> None:
        """Crash the object: close its ports abruptly, *without*
        unregistering from naming or draining queued requests.

        This is the fault-injection counterpart of :meth:`shutdown`
        (``repro.groups`` uses it to fail one replica of a group):
        the naming entry stays behind like a dead process's would, and
        clients discover the failure the way they would for a real
        crash — sends to the closed ports raise
        :class:`~repro.orb.transport.TransportError`, pending receives
        never complete.  The dispatch threads themselves wind down
        (the prefetcher exits on the port close), so a killed group
        leaks no threads.  Idempotent; ``shutdown`` afterwards is safe
        and only removes the naming entry.
        """
        if self._handle is None:
            return
        for port in [self._request_port, *self._data_ports]:
            if port is not None and not port.closed:
                port.close()
        handle, self._handle = self._handle, None
        try:
            handle.join(timeout)
        except Exception:
            # The ranks died of the port close — that is the point.
            pass

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop the dispatch loops and unregister."""
        if self._handle is None:
            try:
                self.naming.unbind(self.name, host=self.host)
            except Exception:
                pass
            return
        if self._request_port is not None and not self._request_port.closed:
            self.fabric.send(
                self._data_ports[0].address
                if self._data_ports
                else self._request_port.address,
                self._request_port.address,
                CONTROL_SHUTDOWN,
                KIND_CONTROL,
            )
        try:
            self._handle.join(timeout)
        finally:
            self._handle = None
            for port in [self._request_port, *self._data_ports]:
                if port is not None and not port.closed:
                    port.close()
            try:
                self.naming.unbind(self.name, host=self.host)
            except Exception:
                pass
