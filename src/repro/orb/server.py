"""Server-side fan-in governance: admission control and backpressure.

The event-loop receive path (:mod:`repro.orb.socketnet`) can accept
thousands of client connections on one thread, which moves the failure
mode from "too many threads" to "too much admitted work".  This module
is the valve: a :class:`ServerGovernor` attached to the socket fabric
decides, per connection and per request, whether work may enter the
dispatch layer at all — and when a single client outruns the servants,
stops reading *that client's* socket until its queue drains.

Three mechanisms, all tuned through :class:`ServerConfig`:

- **Connection admission** (``max_connections``): a connect beyond the
  limit receives one :data:`KIND_BUSY` frame and is closed — a fast
  NACK instead of a SYN backlog timeout.  Protocol-aware clients can
  read the frame; ORB clients observe the close as a retryable
  ``COMM_FAILURE``.
- **Request admission** (``max_inflight``): a request that would push
  the server past its global in-flight budget is answered immediately
  with a :data:`BUSY_CATEGORY` system-exception reply (retryable under
  a client :class:`~repro.ft.policy.FtPolicy`) without ever touching
  the dispatch queues.
- **Backpressure** (``client_queue_limit`` / ``resume_at``): when one
  client identity accumulates too many admitted-but-unfinished
  requests, the event loop stops reading its socket; TCP flow control
  pushes the stall back to that client while every other client's
  frames keep flowing.  Reading resumes once the queue drains to
  ``resume_at``.

Counters are surfaced through ``orb.stats()["server"]`` and, when
tracing is on, as ``server.*`` metrics — see ``docs/scaling.md``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any

from repro.orb import request as wire
from repro.orb.request import ReplyMessage
from repro.orb.transport import KIND_REPLY
from repro.trace.span import span_or_null

#: Frame kind of the connection-level fast reject: written once on a
#: connection refused by admission control, immediately before close.
KIND_BUSY = "busy"

#: System-exception category of the request-level BUSY reply.  It is
#: in :data:`repro.ft.policy.DEFAULT_RETRYABLE`, so a fault-tolerant
#: client backs off and retries instead of surfacing an error.
BUSY_CATEGORY = "TRANSIENT"


@dataclass(frozen=True)
class ServerConfig:
    """Fan-in tuning knobs for one :class:`SocketFabric` server.

    A zero disables the corresponding limit.  The defaults admit any
    number of connections and requests but keep per-client
    backpressure on: a single runaway client pauses itself, never the
    server.  See ``docs/scaling.md`` for sizing guidance.
    """

    #: Concurrent accepted connections; further connects get a BUSY
    #: frame and a close (0 = unlimited).
    max_connections: int = 0
    #: Admitted-but-unfinished requests across all clients; beyond it
    #: requests are answered with a retryable BUSY reply (0 = off).
    max_inflight: int = 0
    #: Admitted-but-unfinished requests *per client identity* before
    #: the event loop stops reading that client's socket (0 = off).
    client_queue_limit: int = 64
    #: Queue depth at which a paused client's socket is read again;
    #: ``None`` means half of ``client_queue_limit``.
    resume_at: int | None = None

    def resolved_resume_at(self) -> int:
        if self.resume_at is not None:
            return max(0, self.resume_at)
        return max(1, self.client_queue_limit // 2)


class _BusyRejector:
    """Sends request-level BUSY replies off the event-loop thread.

    Reaching a client's reply port may require a blocking TCP connect,
    which must never stall the loop; rejects queue here instead.  The
    queue is bounded — under a reject storm the overflow is simply
    dropped (the client's deadline machinery covers it)."""

    def __init__(self, port: Any, trace: Any = None, depth: int = 1024):
        self._port = port
        self.trace = trace
        self._queue: queue.Queue[Any] = queue.Queue(maxsize=depth)
        self._thread = threading.Thread(
            target=self._run, name="server-busy-reject", daemon=True
        )
        self._thread.start()

    def submit(
        self, reply_port: Any, request_id: int, trace_id: int
    ) -> bool:
        try:
            self._queue.put_nowait((reply_port, request_id, trace_id))
            return True
        except queue.Full:
            return False

    def _run(self) -> None:
        from repro.orb.transfer import encode_system_exception

        while True:
            item = self._queue.get()
            if item is None:
                return
            reply_port, request_id, trace_id = item
            span = span_or_null(
                self.trace,
                "busy",
                trace_id=trace_id,
                side="server",
                rank=0,
                request_id=request_id,
            )
            reply = ReplyMessage(
                request_id,
                wire.STATUS_SYSTEM_EXCEPTION,
                encode_system_exception(
                    BUSY_CATEGORY,
                    "server over its in-flight request budget; retry",
                ),
            )
            try:
                self._port.send(
                    reply_port, reply.encode_segments(), KIND_REPLY
                )
            except Exception:
                # The overloaded-away client is already gone.
                pass
            span.end()

    def stop(self, timeout: float = 2.0) -> None:
        self._queue.put(None)
        self._thread.join(timeout)


class ServerGovernor:
    """Admission + backpressure state for one socket fabric's server.

    The event loop calls :meth:`on_connection` / :meth:`admit_request`
    from its own thread; the dispatch layer calls :meth:`request_done`
    from worker threads when an admitted request finishes (including
    error, replay and drop paths).  Per-client depth is tracked by the
    64-bit client identity in the request id's high bits — the same
    identity the client-fifo dispatch policy orders by — so
    backpressure and fairness agree on what "one client" means.
    """

    def __init__(
        self, config: ServerConfig, name: str = "server"
    ) -> None:
        self.config = config
        self.name = name
        self._lock = threading.Lock()
        self._loop: Any = None
        self._metrics: Any = None
        self._trace: Any = None
        self._fabric: Any = None
        self._rejector: _BusyRejector | None = None
        self._connections = 0
        self._accepted = 0
        self._conn_rejected = 0
        self._closed = 0
        self._inflight = 0
        self._admitted = 0
        self._req_rejected = 0
        self._completed = 0
        self._pauses = 0
        self._resumes = 0
        #: identity -> admitted-but-unfinished request count.
        self._pending: dict[int, int] = {}
        self._paused: set[int] = set()

    # -- wiring --------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether request frames need identity peeking at all."""
        cfg = self.config
        return bool(cfg.max_inflight or cfg.client_queue_limit)

    def attach_loop(self, loop: Any) -> None:
        self._loop = loop

    def attach_fabric(self, fabric: Any) -> None:
        """The fabric whose ports carry BUSY replies (lazily opened)."""
        self._fabric = fabric

    def attach_metrics(self, registry: Any) -> None:
        """Mirror counters into a :class:`MetricsRegistry` as
        ``server.*`` (idempotent; last registry wins)."""
        self._metrics = registry

    def attach_trace(self, trace: Any) -> None:
        self._trace = trace
        if self._rejector is not None:
            self._rejector.trace = trace

    def _bump(self, metric: str, by: int = 1) -> None:
        registry = self._metrics
        if registry is not None:
            registry.counter(metric).inc(by)

    # -- connection admission (event-loop thread) ---------------------------

    def on_connection(self) -> bool:
        """Admit or refuse a freshly accepted connection."""
        cfg = self.config
        with self._lock:
            if cfg.max_connections and (
                self._connections >= cfg.max_connections
            ):
                self._conn_rejected += 1
                admitted = False
            else:
                self._connections += 1
                self._accepted += 1
                admitted = True
        self._bump(
            "server.connections.accepted"
            if admitted
            else "server.connections.rejected"
        )
        return admitted

    def on_disconnect(self, orphaned_identities: Any = ()) -> None:
        """An admitted connection closed; identities whose last
        connection this was shed their pending/paused state (their
        in-flight requests may still execute — a later
        :meth:`request_done` for a forgotten identity is a no-op)."""
        with self._lock:
            self._connections -= 1
            self._closed += 1
            for identity in orphaned_identities:
                pending = self._pending.pop(identity, 0)
                self._inflight -= pending
                self._paused.discard(identity)
        self._bump("server.connections.closed")

    # -- request admission (event-loop thread) ------------------------------

    def is_paused(self, identity: int) -> bool:
        with self._lock:
            return identity in self._paused

    def admit_request(
        self,
        identity: int,
        request_id: int,
        trace_id: int,
        reply_port: Any,
    ) -> bool:
        """Admit one decoded request frame; on refusal a BUSY reply is
        queued (when the request expects one) and the frame must not
        be delivered."""
        cfg = self.config
        pause = False
        with self._lock:
            if cfg.max_inflight and self._inflight >= cfg.max_inflight:
                self._req_rejected += 1
                admitted = False
            else:
                self._inflight += 1
                self._admitted += 1
                pending = self._pending.get(identity, 0) + 1
                self._pending[identity] = pending
                if (
                    cfg.client_queue_limit
                    and pending >= cfg.client_queue_limit
                    and identity not in self._paused
                ):
                    self._paused.add(identity)
                    self._pauses += 1
                    pause = True
                admitted = True
        if not admitted:
            self._bump("server.requests.rejected")
            if reply_port is not None:
                self._send_busy(reply_port, request_id, trace_id)
            return False
        self._bump("server.requests.admitted")
        if pause:
            self._bump("server.pauses")
            if self._loop is not None:
                self._loop.pause(identity)
        return True

    def _send_busy(
        self, reply_port: Any, request_id: int, trace_id: int
    ) -> None:
        rejector = self._rejector
        if rejector is None:
            if self._fabric is None:
                return
            port = self._fabric.open_port("server:admission")
            rejector = self._rejector = _BusyRejector(
                port, trace=self._trace
            )
        rejector.submit(reply_port, request_id, trace_id)

    # -- completion (dispatch-layer threads) --------------------------------

    def request_done(self, request_id: int) -> None:
        """An admitted request left the dispatch layer (reply sent,
        dropped, replayed from cache, or failed).  Requests that never
        passed :meth:`admit_request` — e.g. from in-process clients on
        the same fabric — are ignored."""
        identity = int(request_id) >> 32
        resume = False
        with self._lock:
            pending = self._pending.get(identity)
            if pending is None:
                return
            pending -= 1
            self._inflight -= 1
            self._completed += 1
            if pending <= 0:
                del self._pending[identity]
                pending = 0
            else:
                self._pending[identity] = pending
            if (
                identity in self._paused
                and pending <= self.config.resolved_resume_at()
            ):
                self._paused.discard(identity)
                self._resumes += 1
                resume = True
        self._bump("server.requests.completed")
        if resume:
            self._bump("server.resumes")
            if self._loop is not None:
                self._loop.request_resume(identity)

    # -- introspection ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The ``orb.stats()["server"]`` section (plain data, safe to
        deep-copy)."""
        cfg = self.config
        with self._lock:
            return {
                "connections": {
                    "active": self._connections,
                    "accepted": self._accepted,
                    "rejected": self._conn_rejected,
                    "closed": self._closed,
                    "max": cfg.max_connections,
                },
                "requests": {
                    "inflight": self._inflight,
                    "admitted": self._admitted,
                    "rejected": self._req_rejected,
                    "completed": self._completed,
                    "max_inflight": cfg.max_inflight,
                },
                "backpressure": {
                    "paused_clients": len(self._paused),
                    "pauses": self._pauses,
                    "resumes": self._resumes,
                    "queue_limit": cfg.client_queue_limit,
                    "resume_at": cfg.resolved_resume_at(),
                },
            }

    def close(self) -> None:
        if self._rejector is not None:
            self._rejector.stop()
            self._rejector = None
