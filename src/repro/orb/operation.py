"""Runtime descriptions of IDL operations.

The IDL compiler reduces each operation to an :class:`OperationSpec`;
proxies marshal requests and skeletons dispatch them entirely from
these specs, so the generated code stays declarative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.cdr.typecodes import (
    DSequenceTC,
    ExceptionTC,
    TypeCode,
    TC_VOID,
)


class Direction(enum.Enum):
    """IDL parameter passing modes."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def sends(self) -> bool:
        """Does the client transmit this parameter to the server?"""
        return self in (Direction.IN, Direction.INOUT)

    @property
    def returns(self) -> bool:
        """Does the server transmit this parameter back?"""
        return self in (Direction.OUT, Direction.INOUT)


@dataclass(frozen=True)
class ParamSpec:
    """One formal parameter of an IDL operation."""

    name: str
    direction: Direction
    typecode: TypeCode

    @property
    def distributed(self) -> bool:
        """Is this a distributed-sequence parameter?"""
        return isinstance(self.typecode, DSequenceTC)


@dataclass(frozen=True)
class OperationSpec:
    """Everything the ORB needs to know about one IDL operation."""

    name: str
    params: tuple[ParamSpec, ...] = ()
    return_tc: TypeCode = TC_VOID
    raises: tuple[ExceptionTC, ...] = ()
    oneway: bool = False

    def __post_init__(self) -> None:
        if self.oneway:
            if self.return_tc is not TC_VOID:
                raise ValueError(
                    f"oneway operation '{self.name}' must return void"
                )
            if any(p.direction.returns for p in self.params):
                raise ValueError(
                    f"oneway operation '{self.name}' cannot have out or "
                    f"inout parameters"
                )
            if self.raises:
                raise ValueError(
                    f"oneway operation '{self.name}' cannot raise user "
                    f"exceptions"
                )
        names = [p.name for p in self.params]
        if len(set(names)) != len(names):
            raise ValueError(
                f"operation '{self.name}' has duplicate parameter names"
            )

    @property
    def sent_params(self) -> tuple[ParamSpec, ...]:
        return tuple(p for p in self.params if p.direction.sends)

    @property
    def returned_params(self) -> tuple[ParamSpec, ...]:
        return tuple(p for p in self.params if p.direction.returns)

    @property
    def distributed_params(self) -> tuple[ParamSpec, ...]:
        return tuple(p for p in self.params if p.distributed)

    @property
    def has_distributed(self) -> bool:
        return bool(self.distributed_params)

    def exception_by_id(self, repo_id: str) -> ExceptionTC | None:
        for exc_tc in self.raises:
            if exc_tc.repo_id == repo_id:
                return exc_tc
        return None


class RemoteError(RuntimeError):
    """A system-level failure reported by the server side (the CORBA
    SystemException role): unknown operation, marshaling failure,
    servant crash, …"""

    def __init__(self, message: str, category: str = "UNKNOWN") -> None:
        super().__init__(message)
        self.category = category


#: Repository id → generated exception class, filled as generated
#: modules are executed, so the client side can re-raise the concrete
#: class a servant threw.
_EXCEPTION_REGISTRY: dict[str, type] = {}


def find_exception_class(repo_id: str) -> type | None:
    """The generated class for a repository id, if one was compiled
    in this process."""
    return _EXCEPTION_REGISTRY.get(repo_id)


class UserException(Exception):
    """Base of IDL-declared exceptions raised by servants.

    Generated exception classes subclass this and set ``_tc``.  The
    members dict is what travels on the wire.
    """

    _tc: ExceptionTC | None = None

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls._tc is not None:
            _EXCEPTION_REGISTRY[cls._tc.repo_id] = cls

    def __init__(self, **members: Any) -> None:
        self._members = dict(members)
        detail = ", ".join(f"{k}={v!r}" for k, v in members.items())
        name = self._tc.name if self._tc is not None else type(self).__name__
        super().__init__(f"{name}({detail})")
        for key, value in members.items():
            setattr(self, key, value)

    def members(self) -> dict[str, Any]:
        return dict(self._members)
