"""Transfer schedules: who sends which global range to whom.

Both argument-transfer methods and run-time redistribution reduce to
the same computation: given a source layout and a destination layout of
the same global index space, find all (source rank, destination rank)
pairs whose owned ranges overlap, and the overlapping range.  In the
multi-port method (paper §3.3) the source layout is the client-side
distribution and the destination layout the server-side one; in
``DistributedSequence.redistribute`` both live on the same group.

The schedule is minimal: one step per overlapping pair, so an aligned
pair of layouts yields exactly one local-copy step per rank — the
paper's "the sequence can always be divided very efficiently (only the
minimum number of sends in each case)".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.dist.template import DistributionError, Layout


@dataclass(frozen=True)
class TransferStep:
    """One contiguous chunk moving between a rank pair.

    Offsets are provided in both coordinate systems so neither side has
    to know the other's layout to apply the step:

    - ``(global_lo, global_hi)``: the half-open global index range.
    - ``src_offset``: start of the chunk inside the source rank's block.
    - ``dst_offset``: start of the chunk inside the destination block.
    """

    src_rank: int
    dst_rank: int
    global_lo: int
    global_hi: int
    src_offset: int
    dst_offset: int

    @property
    def nelems(self) -> int:
        return self.global_hi - self.global_lo

    @property
    def src_slice(self) -> slice:
        return slice(self.src_offset, self.src_offset + self.nelems)

    @property
    def dst_slice(self) -> slice:
        return slice(self.dst_offset, self.dst_offset + self.nelems)


class _ScheduleCache:
    """A small thread-safe LRU over ``(src, dst)`` layout pairs.

    Schedules are pure functions of the two layouts, and the hot path
    (every invocation of every distributed parameter) keeps asking for
    the same handful of pairs; :class:`Layout` is frozen and hashable,
    so the pair is a direct key.  Entries are stored as tuples; callers
    get a fresh list, so mutating a returned schedule never corrupts
    the cache.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[
            tuple[Layout, Layout], tuple[TransferStep, ...]
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(
        self, key: tuple[Layout, Layout]
    ) -> tuple[TransferStep, ...] | None:
        with self._lock:
            steps = self._entries.get(key)
            if steps is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return steps

    def store(
        self, key: tuple[Layout, Layout], steps: tuple[TransferStep, ...]
    ) -> None:
        with self._lock:
            self._entries[key] = steps
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


_schedule_cache = _ScheduleCache()


def schedule_cache_stats() -> dict[str, int]:
    """Hit/miss/occupancy counters of the schedule LRU."""
    return _schedule_cache.stats()


def clear_schedule_cache() -> None:
    """Drop all cached schedules and reset the counters (tests)."""
    _schedule_cache.clear()


def transfer_schedule(src: Layout, dst: Layout) -> list[TransferStep]:
    """Compute the minimal chunk schedule moving ``src`` onto ``dst``.

    Returns steps ordered by (source rank, destination rank).  Steps
    where both ends are the same rank *within one group* still appear;
    callers decide whether such a step is a local copy (redistribution)
    or a genuine send (client rank i to server rank i are distinct
    threads even when the rank numbers coincide).

    The two layouts must describe index spaces of equal length.
    Results are memoized in a small LRU keyed by the layout pair (see
    :func:`schedule_cache_stats`).
    """
    key = (src, dst)
    cached = _schedule_cache.lookup(key)
    if cached is not None:
        return list(cached)
    steps = _compute_schedule(src, dst)
    _schedule_cache.store(key, tuple(steps))
    return steps


def _compute_schedule(src: Layout, dst: Layout) -> list[TransferStep]:
    if src.length != dst.length:
        raise DistributionError(
            f"source layout covers {src.length} elements but destination "
            f"covers {dst.length}; transfers require equal lengths"
        )
    steps: list[TransferStep] = []
    # Two-pointer sweep over the (sorted, contiguous) range lists.
    d = 0
    for s_rank in range(src.nranks):
        s_lo, s_hi = src.local_range(s_rank)
        if s_lo == s_hi:
            continue
        # Rewind is never needed: source ranges advance monotonically.
        while d < dst.nranks and dst.local_range(d)[1] <= s_lo:
            d += 1
        d_probe = d
        while d_probe < dst.nranks:
            d_lo, d_hi = dst.local_range(d_probe)
            lo = max(s_lo, d_lo)
            hi = min(s_hi, d_hi)
            if lo < hi:
                steps.append(
                    TransferStep(
                        src_rank=s_rank,
                        dst_rank=d_probe,
                        global_lo=lo,
                        global_hi=hi,
                        src_offset=lo - s_lo,
                        dst_offset=lo - d_lo,
                    )
                )
            if d_hi >= s_hi:
                break
            d_probe += 1
    return steps


def steps_by_src(steps: list[TransferStep]) -> dict[int, list[TransferStep]]:
    """Group a schedule by sending rank (send plans)."""
    plans: dict[int, list[TransferStep]] = {}
    for step in steps:
        plans.setdefault(step.src_rank, []).append(step)
    return plans


def steps_by_dst(steps: list[TransferStep]) -> dict[int, list[TransferStep]]:
    """Group a schedule by receiving rank (receive plans)."""
    plans: dict[int, list[TransferStep]] = {}
    for step in steps:
        plans.setdefault(step.dst_rank, []).append(step)
    return plans
