"""Distribution templates: how a global index space maps onto ranks.

The paper's ``DistTempl`` objects describe the partitioning of a
distributed sequence.  The default is *uniform blockwise*; the
alternative shown in the paper is ``PARDIS::Proportions``, e.g.::

    _diff_object_sk::diffusion_myarray =
        new DistTempl(Proportions(2,4,2,4));

which distributes the argument over threads 0..3 in proportions
2:4:2:4.  Templates here follow the same model: a template is bound to
a rank count (implicitly or explicitly) and, when given a concrete
global length, yields a :class:`Layout` — the list of contiguous,
disjoint, ordered index ranges owned by each rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence


class DistributionError(ValueError):
    """Raised for invalid templates or layout requests."""


@dataclass(frozen=True)
class Layout:
    """A concrete partitioning of ``[0, length)`` over ``nranks`` ranks.

    ``bounds[r] == (lo, hi)`` is the half-open global index range owned
    by rank ``r``.  Ranges are contiguous, ordered by rank, disjoint,
    and cover the whole index space (some may be empty).
    """

    bounds: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        cursor = 0
        for r, (lo, hi) in enumerate(self.bounds):
            if lo != cursor or hi < lo:
                raise DistributionError(
                    f"rank {r} owns [{lo}, {hi}) but the previous rank "
                    f"ends at {cursor}; layouts must tile the index space"
                )
            cursor = hi

    @property
    def nranks(self) -> int:
        return len(self.bounds)

    @property
    def length(self) -> int:
        return self.bounds[-1][1] if self.bounds else 0

    def local_range(self, rank: int) -> tuple[int, int]:
        """Half-open global range owned by ``rank``."""
        return self.bounds[rank]

    def local_length(self, rank: int) -> int:
        lo, hi = self.bounds[rank]
        return hi - lo

    def local_lengths(self) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.bounds)

    def owner_of(self, index: int) -> int:
        """Rank owning global ``index``.

        Binary search over the (sorted) range starts; empty ranges are
        skipped because an empty range can contain no index.
        """
        if not 0 <= index < self.length:
            raise IndexError(
                f"global index {index} out of range [0, {self.length})"
            )
        lo_rank, hi_rank = 0, self.nranks - 1
        while lo_rank < hi_rank:
            mid = (lo_rank + hi_rank) // 2
            if self.bounds[mid][1] <= index:
                lo_rank = mid + 1
            else:
                hi_rank = mid
        return lo_rank

    def resized(self, new_length: int) -> "Layout":
        """Layout after the paper's grow/shrink rule.

        Shrinking discards data above ``new_length``; growing assigns
        the new elements "to the ownership of the computing thread
        which owned the last elements of the old sequence" (§2.2).  An
        all-empty sequence grows onto the last rank.
        """
        if new_length < 0:
            raise DistributionError("sequence length cannot be negative")
        if new_length == self.length:
            return self
        if new_length > self.length:
            grower = self.nranks - 1
            for r in range(self.nranks - 1, -1, -1):
                if self.local_length(r) > 0:
                    grower = r
                    break
            bounds = []
            for r, (lo, hi) in enumerate(self.bounds):
                if r < grower:
                    bounds.append((lo, hi))
                elif r == grower:
                    bounds.append((lo, new_length))
                else:
                    bounds.append((new_length, new_length))
            return Layout(tuple(bounds))
        bounds = []
        for lo, hi in self.bounds:
            bounds.append((min(lo, new_length), min(hi, new_length)))
        return Layout(tuple(bounds))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.bounds)

    @staticmethod
    def from_local_lengths(lengths: Sequence[int]) -> "Layout":
        """Build a layout from per-rank local lengths (conversion ctor)."""
        bounds = []
        cursor = 0
        for n in lengths:
            if n < 0:
                raise DistributionError("local length cannot be negative")
            bounds.append((cursor, cursor + n))
            cursor += n
        return Layout(tuple(bounds))


class DistTemplate:
    """Base class of distribution templates.

    Subclasses implement :meth:`layout`, binding the template to a
    concrete global length (and, for rank-agnostic templates, a rank
    count).
    """

    #: Rank count the template is bound to, or ``None`` if it adapts
    #: to whatever group instantiates it.
    nranks: int | None = None

    def layout(self, length: int, nranks: int | None = None) -> Layout:
        raise NotImplementedError

    def _resolve_nranks(self, nranks: int | None) -> int:
        if self.nranks is not None:
            if nranks is not None and nranks != self.nranks:
                raise DistributionError(
                    f"template is bound to {self.nranks} ranks but the "
                    f"group has {nranks}"
                )
            return self.nranks
        if nranks is None:
            raise DistributionError(
                "template is not bound to a rank count; pass nranks"
            )
        if nranks <= 0:
            raise DistributionError("rank count must be positive")
        return nranks


class BlockTemplate(DistTemplate):
    """Uniform blockwise distribution — the paper's default.

    Uses the balanced-block rule: with length ``N`` over ``P`` ranks,
    the first ``N mod P`` ranks own ``ceil(N/P)`` elements and the rest
    own ``floor(N/P)``.  Every rank's block is contiguous and blocks
    appear in rank order.
    """

    def __init__(self, nranks: int | None = None) -> None:
        if nranks is not None and nranks <= 0:
            raise DistributionError("rank count must be positive")
        self.nranks = nranks

    def layout(self, length: int, nranks: int | None = None) -> Layout:
        if length < 0:
            raise DistributionError("sequence length cannot be negative")
        p = self._resolve_nranks(nranks)
        base, extra = divmod(length, p)
        bounds = []
        cursor = 0
        for r in range(p):
            n = base + (1 if r < extra else 0)
            bounds.append((cursor, cursor + n))
            cursor += n
        return Layout(tuple(bounds))

    def __repr__(self) -> str:
        return f"BlockTemplate(nranks={self.nranks})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlockTemplate) and other.nranks == self.nranks

    def __hash__(self) -> int:
        return hash(("BlockTemplate", self.nranks))


class Proportions(DistTemplate):
    """Distribute proportionally to integer or real weights.

    ``Proportions(2, 4, 2, 4)`` over 12 elements gives local lengths
    ``(2, 4, 2, 4)`` scaled to the sequence length.  Rounding uses the
    largest-remainder method so local lengths always sum exactly to the
    global length, and a weight of zero guarantees an empty block.
    """

    def __init__(self, *weights: float) -> None:
        if not weights:
            raise DistributionError("Proportions requires at least one weight")
        if any(w < 0 for w in weights):
            raise DistributionError("proportion weights cannot be negative")
        if not any(w > 0 for w in weights):
            raise DistributionError("at least one weight must be positive")
        if any(not math.isfinite(w) for w in weights):
            raise DistributionError("proportion weights must be finite")
        self.weights = tuple(float(w) for w in weights)
        self.nranks = len(weights)

    def layout(self, length: int, nranks: int | None = None) -> Layout:
        if length < 0:
            raise DistributionError("sequence length cannot be negative")
        self._resolve_nranks(nranks)
        total = sum(self.weights)
        quotas = [length * w / total for w in self.weights]
        floors = [int(math.floor(q)) for q in quotas]
        shortfall = length - sum(floors)
        # Largest remainders win the leftover elements; ties resolve to
        # the lower rank for determinism.
        order = sorted(
            range(len(quotas)),
            key=lambda r: (-(quotas[r] - floors[r]), r),
        )
        for r in order[:shortfall]:
            floors[r] += 1
        return Layout.from_local_lengths(floors)

    def __repr__(self) -> str:
        return f"Proportions{self.weights}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Proportions) and other.weights == self.weights

    def __hash__(self) -> int:
        return hash(("Proportions", self.weights))


class ExplicitTemplate(DistTemplate):
    """A template fixing exact local lengths, independent of scaling.

    Unlike :class:`Proportions`, the lengths are absolute: the template
    only applies to sequences whose global length equals the sum of
    the local lengths (or is produced by :meth:`Layout.resized`).
    """

    def __init__(self, local_lengths: Sequence[int]) -> None:
        self._layout = Layout.from_local_lengths(local_lengths)
        self.nranks = self._layout.nranks

    def layout(self, length: int, nranks: int | None = None) -> Layout:
        self._resolve_nranks(nranks)
        if length != self._layout.length:
            raise DistributionError(
                f"explicit template covers {self._layout.length} elements, "
                f"cannot lay out a sequence of length {length}"
            )
        return self._layout

    def __repr__(self) -> str:
        return f"ExplicitTemplate({list(self._layout.local_lengths())})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ExplicitTemplate)
            and other._layout == self._layout
        )

    def __hash__(self) -> int:
        return hash(("ExplicitTemplate", self._layout.bounds))
