"""Distributed sequences — the paper's ``dsequence`` mapping (§2.2).

A :class:`DistributedSequence` is the Python mapping of::

    typedef dsequence<double, 1024> diff_array;

Each SPMD rank holds one instance ("the local view"): the local block
of the data as a NumPy array, plus the :class:`~repro.dist.Layout`
situating the block globally.  Following the paper, methods are
SPMD-style: unless documented otherwise they must be called
collectively by all ranks of the owning group.  A sequence can also be
used serially (``comm=None``), in which case there is a single rank
owning everything — this is the *non-distributed mapping* used after a
plain ``_bind``.

Semantics implemented from the paper:

- ``length()`` / ``set_length(n)``: shrinking discards the data above
  the new length; growing appends zero-initialized elements owned by
  the rank that owned the last elements of the old sequence.
- ``redistribute(template)``: move elements to a new distribution; an
  error for sequences whose distribution is preset by the template in
  the IDL definition (``frozen=True``).
- Conversion constructor :meth:`adopt`: build a sequence around memory
  the application owns, with ``release`` saying whether the sequence
  takes ownership (mirrors the CORBA release flag; with NumPy this
  decides copy-vs-alias).
- ``local_data()`` / ``local_length()``: escape to the application's
  own memory-management scheme.
- ``__getitem__`` / ``__setitem__``: location-transparent element
  access.  Collective when the sequence is distributed (the owner
  broadcasts), direct when serial.  Out-of-range access beyond the
  current length is an error.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dist.schedule import transfer_schedule
from repro.dist.template import (
    BlockTemplate,
    DistTemplate,
    DistributionError,
    Layout,
)

#: Tag namespace for sequence-internal traffic (redistribution, element
#: access).  Kept above user tags so application messages never collide.
_TAG_REDIST = 1 << 20
_TAG_ELEMENT = (1 << 20) + 1


class DistributedSequence:
    """A one-dimensional array distributed blockwise-by-template.

    Parameters
    ----------
    length:
        Global number of elements.
    dtype:
        NumPy element dtype.  Any fixed-width dtype works; the IDL
        compiler maps IDL basic types onto these.
    template:
        Distribution template.  Defaults to uniform blockwise, matching
        the paper's default.
    comm:
        The group communicator (``repro.rts.Intracomm``) or ``None``
        for a serial, single-owner sequence.
    bound:
        Optional IDL bound.  A bounded sequence cannot grow past it.
    frozen:
        True when the IDL definition preset the distribution, which
        makes :meth:`redistribute` an error.
    """

    def __init__(
        self,
        length: int,
        dtype: Any = np.float64,
        template: DistTemplate | None = None,
        comm: Any = None,
        *,
        bound: int | None = None,
        frozen: bool = False,
        _layout: Layout | None = None,
        _local: np.ndarray | None = None,
    ) -> None:
        if length < 0:
            raise DistributionError("sequence length cannot be negative")
        if bound is not None and length > bound:
            raise DistributionError(
                f"length {length} exceeds the sequence bound {bound}"
            )
        self._comm = comm
        self._dtype = np.dtype(dtype)
        self._bound = bound
        self._frozen = frozen
        nranks = 1 if comm is None else comm.size
        if _layout is not None:
            self._layout = _layout
        else:
            template = template or BlockTemplate()
            self._layout = template.layout(length, nranks)
        if self._layout.nranks != nranks:
            raise DistributionError(
                f"layout spans {self._layout.nranks} ranks but the group "
                f"has {nranks}"
            )
        if _local is not None:
            if len(_local) != self._layout.local_length(self._rank):
                raise DistributionError(
                    f"local buffer holds {len(_local)} elements but the "
                    f"layout assigns {self._layout.local_length(self._rank)} "
                    f"to rank {self._rank}"
                )
            self._local = np.ascontiguousarray(_local, dtype=self._dtype)
        else:
            self._local = np.zeros(
                self._layout.local_length(self._rank), dtype=self._dtype
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def adopt(
        cls,
        local_data: np.ndarray,
        comm: Any = None,
        *,
        release: bool = False,
        dtype: Any = None,
        bound: int | None = None,
    ) -> "DistributedSequence":
        """Conversion constructor: wrap application-owned local blocks.

        Collective.  Each rank passes its local block; the global
        layout is derived from the local lengths (allgather).  With
        ``release=True`` the sequence takes ownership and aliases the
        buffer (mutations through the sequence are visible to the
        caller); otherwise the data is copied, mirroring the paper's
        "no data ownership" conversion.
        """
        local_data = np.asarray(local_data, dtype=dtype)
        if local_data.ndim != 1:
            raise DistributionError(
                "distributed sequences are one-dimensional; got "
                f"{local_data.ndim} dimensions"
            )
        if comm is None:
            lengths = [len(local_data)]
        else:
            lengths = comm.allgather(len(local_data))
        layout = Layout.from_local_lengths(lengths)
        if bound is not None and layout.length > bound:
            raise DistributionError(
                f"adopted data has {layout.length} elements, exceeding "
                f"the sequence bound {bound}"
            )
        local = local_data if release else local_data.copy()
        return cls(
            layout.length,
            dtype=local.dtype,
            comm=comm,
            bound=bound,
            _layout=layout,
            _local=local,
        )

    @classmethod
    def from_global(
        cls,
        data: np.ndarray,
        comm: Any = None,
        template: DistTemplate | None = None,
        *,
        bound: int | None = None,
    ) -> "DistributedSequence":
        """Build a sequence from replicated global data.

        Collective.  Every rank passes the same full array (cheap in
        tests and examples); each keeps only its own block.
        """
        data = np.asarray(data)
        seq = cls(
            len(data),
            dtype=data.dtype,
            template=template,
            comm=comm,
            bound=bound,
        )
        lo, hi = seq._layout.local_range(seq._rank)
        seq._local[:] = data[lo:hi]
        return seq

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def _rank(self) -> int:
        return 0 if self._comm is None else self._comm.rank

    @property
    def comm(self) -> Any:
        return self._comm

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def layout(self) -> Layout:
        return self._layout

    @property
    def bound(self) -> int | None:
        return self._bound

    @property
    def frozen(self) -> bool:
        return self._frozen

    def length(self) -> int:
        """Global element count (non-collective)."""
        return self._layout.length

    def __len__(self) -> int:
        return self.length()

    def local_data(self) -> np.ndarray:
        """The local block, aliased (non-collective)."""
        return self._local

    def local_length(self) -> int:
        """Number of locally-owned elements (non-collective)."""
        return len(self._local)

    def local_range(self) -> tuple[int, int]:
        """Half-open global range owned by this rank (non-collective)."""
        return self._layout.local_range(self._rank)

    # ------------------------------------------------------------------
    # Length changes (paper's grow/shrink rule)
    # ------------------------------------------------------------------

    def set_length(self, new_length: int) -> None:
        """Collective.  Resize per the paper's ownership rule."""
        if self._bound is not None and new_length > self._bound:
            raise DistributionError(
                f"length {new_length} exceeds the sequence bound "
                f"{self._bound}"
            )
        new_layout = self._layout.resized(new_length)
        old_n = len(self._local)
        new_n = new_layout.local_length(self._rank)
        if new_n != old_n:
            grown = np.zeros(new_n, dtype=self._dtype)
            grown[: min(old_n, new_n)] = self._local[: min(old_n, new_n)]
            self._local = grown
        self._layout = new_layout

    # ------------------------------------------------------------------
    # Redistribution
    # ------------------------------------------------------------------

    def redistribute(self, template: DistTemplate) -> None:
        """Collective.  Move elements to the distribution ``template``.

        An error for sequences whose distribution was preset in IDL
        (the paper permits ``redistribute`` only "on a sequence whose
        distribution is not preset").
        """
        if self._frozen:
            raise DistributionError(
                "cannot redistribute a sequence whose distribution is "
                "preset by its IDL definition"
            )
        nranks = 1 if self._comm is None else self._comm.size
        new_layout = template.layout(self.length(), nranks)
        if new_layout == self._layout:
            return
        new_local = np.zeros(
            new_layout.local_length(self._rank), dtype=self._dtype
        )
        steps = transfer_schedule(self._layout, new_layout)
        me = self._rank
        # Local copies first so sends below never depend on order.
        for step in steps:
            if step.src_rank == me and step.dst_rank == me:
                new_local[step.dst_slice] = self._local[step.src_slice]
        if self._comm is not None:
            sends = [
                s for s in steps if s.src_rank == me and s.dst_rank != me
            ]
            recvs = [
                s for s in steps if s.dst_rank == me and s.src_rank != me
            ]
            requests = [
                self._comm.isend(
                    self._local[s.src_slice].copy(),
                    dest=s.dst_rank,
                    tag=_TAG_REDIST,
                )
                for s in sends
            ]
            # Receives are matched by source rank; a rank pair moves at
            # most one chunk per redistribution because both layouts
            # are contiguous, so (source, tag) identifies the chunk.
            for s in sorted(recvs, key=lambda s: s.src_rank):
                chunk = self._comm.recv(source=s.src_rank, tag=_TAG_REDIST)
                new_local[s.dst_slice] = chunk
            for req in requests:
                req.wait()
            self._comm.barrier()
        self._local = new_local
        self._layout = new_layout

    # ------------------------------------------------------------------
    # Element access (location transparent)
    # ------------------------------------------------------------------

    def _check_index(self, index: int) -> int:
        n = self.length()
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(
                f"index {index} beyond the sequence length {n}"
            )
        return index

    def gather_slice(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Collective.  Materialize ``[start, stop)`` on every rank.

        Each rank contributes the overlap of its block; the pieces are
        exchanged with one allgather and concatenated in rank order.
        """
        n = self.length()
        if stop is None:
            stop = n
        if start < 0:
            start += n
        if stop < 0:
            stop += n
        start = max(0, min(start, n))
        stop = max(start, min(stop, n))
        lo, hi = self.local_range()
        piece_lo, piece_hi = max(lo, start), min(hi, stop)
        piece = (
            self._local[piece_lo - lo : piece_hi - lo]
            if piece_lo < piece_hi
            else self._local[:0]
        )
        if self._comm is None:
            return piece.copy()
        parts = self._comm.allgather(piece)
        return (
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=self._dtype)
        )

    def __getitem__(self, index: Any) -> Any:
        """Element or slice read.  Collective when distributed: the
        owner broadcasts an element (paper assumption: SPMD-style
        access, no one-sided RTS required); a slice is gathered via
        :meth:`gather_slice`."""
        if isinstance(index, slice):
            if index.step not in (None, 1):
                raise IndexError(
                    "distributed sequences support unit-stride slices"
                )
            return self.gather_slice(
                0 if index.start is None else index.start,
                index.stop,
            )
        index = self._check_index(index)
        owner = self._layout.owner_of(index)
        if self._comm is None:
            return self._local[index].item()
        lo, _ = self._layout.local_range(owner)
        if self._rank == owner:
            value = self._local[index - lo].item()
        else:
            value = None
        return self._comm.bcast(value, root=owner)

    def __setitem__(self, index: int, value: Any) -> None:
        """Element write.  Collective when distributed; all ranks must
        pass the same value, the owner stores it."""
        index = self._check_index(index)
        owner = self._layout.owner_of(index)
        if self._comm is None:
            self._local[index] = value
            return
        if self._rank == owner:
            lo, _ = self._layout.local_range(owner)
            self._local[index - lo] = value
        self._comm.barrier()

    # ------------------------------------------------------------------
    # Whole-sequence helpers
    # ------------------------------------------------------------------

    def allgather(self) -> np.ndarray:
        """Collective.  Materialize the full global array on all ranks."""
        if self._comm is None:
            return self._local.copy()
        parts = self._comm.allgather(self._local)
        return (
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=self._dtype)
        )

    def copy(self) -> "DistributedSequence":
        """Deep copy preserving layout and group (non-collective)."""
        return DistributedSequence(
            self.length(),
            dtype=self._dtype,
            comm=self._comm,
            bound=self._bound,
            frozen=self._frozen,
            _layout=self._layout,
            _local=self._local.copy(),
        )

    def __repr__(self) -> str:
        return (
            f"<DistributedSequence length={self.length()} "
            f"dtype={self._dtype} rank={self._rank} "
            f"local={self.local_length()}>"
        )
