"""Distribution templates and distributed sequences (paper §2.2).

A *distribution template* describes how the elements of a distributed
sequence are partitioned over the ranks of an SPMD computation.  A
template is length-independent; binding it to a concrete global length
produces a :class:`Layout`, which records the contiguous slice of the
global index space owned by each rank.

A :class:`DistributedSequence` is the run-time value: each rank holds
the local block of a global one-dimensional array, together with the
layout that situates the block in global index space.
"""

from repro.dist.template import (
    BlockTemplate,
    DistTemplate,
    ExplicitTemplate,
    Layout,
    Proportions,
)
from repro.dist.schedule import (
    TransferStep,
    clear_schedule_cache,
    schedule_cache_stats,
    transfer_schedule,
)
from repro.dist.sequence import DistributedSequence

__all__ = [
    "BlockTemplate",
    "DistTemplate",
    "DistributedSequence",
    "ExplicitTemplate",
    "Layout",
    "Proportions",
    "TransferStep",
    "clear_schedule_cache",
    "schedule_cache_stats",
    "transfer_schedule",
]
