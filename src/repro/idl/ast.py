"""Abstract syntax of the PARDIS IDL dialect.

Nodes are plain dataclasses with source positions for diagnostics.
Type references stay symbolic (:class:`NamedType`) after parsing; the
semantic pass resolves them against the scope tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Type expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BasicType:
    """Built-in type: short/long/longlong/ushort/…/boolean/char/octet/void."""

    name: str


@dataclass(frozen=True)
class StringType:
    #: ``None`` or a ConstExpr evaluated by the semantic pass.
    bound: object = None


@dataclass(frozen=True)
class SequenceType:
    element: "TypeExpr"
    #: ``None`` or a ConstExpr evaluated by the semantic pass.
    bound: object = None


@dataclass(frozen=True)
class DistSpec:
    """Distribution annotation of a dsequence: 'block' or proportions."""

    kind: str  # 'block' | 'proportions'
    weights: tuple[int, ...] = ()


@dataclass(frozen=True)
class DSequenceType:
    """The paper's distributed sequence type."""

    element: "TypeExpr"
    #: ``None`` or a ConstExpr evaluated by the semantic pass.
    bound: object = None
    dist: DistSpec | None = None


@dataclass(frozen=True)
class NamedType:
    """A (possibly scoped) reference: ``diff_array``, ``M::Color``."""

    parts: tuple[str, ...]
    line: int = 0
    column: int = 0

    @property
    def text(self) -> str:
        return "::".join(self.parts)


TypeExpr = Union[
    BasicType, StringType, SequenceType, DSequenceType, NamedType
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Declaration:
    name: str
    line: int = 0
    column: int = 0


@dataclass
class Typedef(Declaration):
    """``typedef <type> <name>`` with optional array dimensions."""

    type: TypeExpr = None  # type: ignore[assignment]
    #: ConstExpr per dimension, evaluated by the semantic pass.
    array_dims: tuple = ()


@dataclass
class StructMember:
    name: str
    type: TypeExpr
    #: ConstExpr per dimension, evaluated by the semantic pass.
    array_dims: tuple = ()
    line: int = 0


@dataclass
class Struct(Declaration):
    members: list[StructMember] = field(default_factory=list)


@dataclass
class Enum(Declaration):
    members: tuple[str, ...] = ()


@dataclass
class ExceptionDecl(Declaration):
    members: list[StructMember] = field(default_factory=list)


@dataclass
class UnionCase:
    """One arm of a union: its labels (or default) and member."""

    labels: tuple = ()  # ConstExpr per 'case' label
    is_default: bool = False
    member_name: str = ""
    type: TypeExpr = None  # type: ignore[assignment]
    #: ConstExpr per dimension, evaluated by the semantic pass.
    array_dims: tuple = ()
    line: int = 0


@dataclass
class UnionDecl(Declaration):
    discriminator: TypeExpr = None  # type: ignore[assignment]
    cases: list[UnionCase] = field(default_factory=list)


@dataclass
class Const(Declaration):
    type: TypeExpr = None  # type: ignore[assignment]
    expr: "ConstExpr" = None  # type: ignore[assignment]


@dataclass
class Param:
    name: str
    direction: str  # 'in' | 'out' | 'inout'
    type: TypeExpr
    line: int = 0


@dataclass
class Operation(Declaration):
    return_type: TypeExpr = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    raises: list[NamedType] = field(default_factory=list)
    oneway: bool = False


@dataclass
class Attribute(Declaration):
    type: TypeExpr = None  # type: ignore[assignment]
    readonly: bool = False


@dataclass
class Interface(Declaration):
    bases: list[NamedType] = field(default_factory=list)
    body: list[Declaration] = field(default_factory=list)


@dataclass
class InterfaceForward(Declaration):
    """``interface name;`` — a CORBA forward declaration, to be
    completed by a full definition later in the same unit."""


@dataclass
class Module(Declaration):
    body: list[Declaration] = field(default_factory=list)


@dataclass
class Specification:
    """A whole translation unit."""

    body: list[Declaration] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Constant expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """int/float/str/bool/char literal value."""

    value: object


@dataclass(frozen=True)
class ConstRef:
    """Reference to another constant (or enum member)."""

    parts: tuple[str, ...]
    line: int = 0

    @property
    def text(self) -> str:
        return "::".join(self.parts)


@dataclass(frozen=True)
class UnaryOp:
    op: str  # '-', '+', '~'
    operand: "ConstExpr"


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '+', '-', '*', '/', '%', '<<', '>>', '|', '&', '^'
    left: "ConstExpr"
    right: "ConstExpr"


ConstExpr = Union[Literal, ConstRef, UnaryOp, BinaryOp]
