"""Support objects referenced by compiler-generated Python code.

Generated modules stay declarative: the behaviour of typedefs, structs
and namespaces lives here so the emitted text is short and auditable.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.cdr.typecodes import DSequenceTC, StructTC, UnionTC
from repro.dist import BlockTemplate, DistributedSequence, Proportions
from repro.dist.template import DistTemplate


def template_to_spec(template: Any) -> tuple:
    """Normalize a template object to the wire/spec tuple form."""
    if isinstance(template, tuple):
        return template
    if isinstance(template, BlockTemplate):
        return ("block",)
    weights = getattr(template, "weights", None)
    if weights is not None:
        return ("proportions", tuple(int(w) for w in weights))
    raise TypeError(
        f"cannot express {type(template).__name__} as a template "
        f"spec; use BlockTemplate or Proportions"
    )


def template_from_spec(spec: Any) -> DistTemplate | None:
    """Decode the template tuple stored in a DSequenceTC.

    ``('block',)`` → uniform blockwise; ``('proportions', (2,4,2,4))``
    → :class:`Proportions`; ``None`` → no preset distribution.
    """
    if spec is None:
        return None
    if spec[0] == "block":
        return BlockTemplate()
    if spec[0] == "proportions":
        return Proportions(*spec[1])
    raise ValueError(f"unknown distribution spec {spec!r}")


class DSequenceFactory:
    """What a ``typedef dsequence<...> name;`` compiles to.

    Mirrors the paper's generated sequence class: construction by
    length (optionally with a distribution), the conversion constructor
    (:meth:`adopt`), and the type's metadata.  A preset distribution in
    the IDL freezes the sequence's distribution, making
    ``redistribute`` an error, per §2.2.
    """

    def __init__(self, name: str, typecode: DSequenceTC) -> None:
        self.name = name
        self.typecode = typecode

    @property
    def bound(self) -> int | None:
        return self.typecode.bound

    @property
    def preset_template(self) -> DistTemplate | None:
        return template_from_spec(self.typecode.template)

    @property
    def dtype(self) -> np.dtype:
        return self.typecode.element_dtype

    def create(
        self,
        length: int | None = None,
        comm: Any = None,
        template: DistTemplate | None = None,
    ) -> DistributedSequence:
        """Instantiate the sequence (collective when ``comm`` given).

        ``length`` defaults to the IDL bound for bounded sequences —
        the paper's fixed-length form ``dsequence<double, 1024>``.
        """
        if length is None:
            if self.bound is None:
                raise ValueError(
                    f"{self.name} is unbounded; a length is required"
                )
            length = self.bound
        applied, frozen = self._resolve_template(template, comm)
        return DistributedSequence(
            length,
            dtype=self.dtype,
            template=applied,
            comm=comm,
            bound=self.bound,
            frozen=frozen,
        )

    def _resolve_template(
        self, template: DistTemplate | None, comm: Any
    ) -> tuple[DistTemplate | None, bool]:
        """Which template applies for a group, and whether it freezes.

        The preset distribution recorded in the IDL typedef binds the
        party whose thread count it names (typically the server that
        registered it).  A group of a different size — or the serial
        non-distributed mapping — falls back to uniform blockwise and
        stays redistributable; the transfer schedule bridges the two
        sides' layouts.
        """
        preset = self.preset_template
        if template is not None and preset is not None:
            raise ValueError(
                f"{self.name} has a preset distribution; cannot override"
            )
        if comm is None:
            return template, False
        if preset is None:
            return template, False
        if preset.nranks not in (None, comm.size):
            return None, False
        return preset, True

    def adopt(
        self,
        local_data: np.ndarray,
        comm: Any = None,
        *,
        release: bool = False,
    ) -> DistributedSequence:
        """The conversion constructor of the paper's mapping."""
        return DistributedSequence.adopt(
            np.asarray(local_data, dtype=self.dtype),
            comm=comm,
            release=release,
            bound=self.bound,
        )

    def from_global(
        self, data: np.ndarray, comm: Any = None
    ) -> DistributedSequence:
        """Build from replicated global data (collective)."""
        applied, _frozen = self._resolve_template(None, comm)
        return DistributedSequence.from_global(
            np.asarray(data, dtype=self.dtype),
            comm=comm,
            template=applied,
            bound=self.bound,
        )

    def __call__(self, *args: Any, **kwargs: Any) -> DistributedSequence:
        return self.create(*args, **kwargs)

    def __repr__(self) -> str:
        return f"<dsequence typedef {self.name}>"


class StructFactory:
    """What an IDL ``struct`` compiles to: a dict constructor with
    field validation, plus the struct's typecode."""

    def __init__(self, typecode: StructTC) -> None:
        self.typecode = typecode
        self._field_names = [name for name, _ in typecode.fields]

    @property
    def name(self) -> str:
        return self.typecode.name

    def __call__(self, *args: Any, **kwargs: Any) -> dict[str, Any]:
        if len(args) > len(self._field_names):
            raise TypeError(
                f"{self.name} takes at most {len(self._field_names)} "
                f"positional fields"
            )
        value = dict(zip(self._field_names, args))
        for key, item in kwargs.items():
            if key not in self._field_names:
                raise TypeError(f"{self.name} has no field '{key}'")
            if key in value:
                raise TypeError(f"field '{key}' given twice")
            value[key] = item
        missing = [n for n in self._field_names if n not in value]
        if missing:
            raise TypeError(f"{self.name} missing fields {missing}")
        return value

    def __repr__(self) -> str:
        return f"<struct {self.name}>"


class UnionFactory:
    """What an IDL ``union`` compiles to: a constructor for
    ``{"d": discriminator, "v": value}`` dicts, validated against the
    union's cases, plus per-member helpers."""

    def __init__(self, typecode: UnionTC) -> None:
        self.typecode = typecode

    @property
    def name(self) -> str:
        return self.typecode.name

    def __call__(self, d: Any, v: Any) -> dict[str, Any]:
        value = {"d": d, "v": v}
        self.typecode.validate(value)
        return value

    def make(self, member: str, d: Any, v: Any) -> dict[str, Any]:
        """Construct while asserting which member arm is selected."""
        selected, _tc = self.typecode.arm_for(d)
        if selected != member:
            raise ValueError(
                f"{self.name}: discriminator {d!r} selects "
                f"'{selected}', not '{member}'"
            )
        return self(d, v)

    def member_of(self, value: dict[str, Any]) -> str:
        """Which member arm a value carries."""
        member, _tc = self.typecode.arm_for(value["d"])
        return member

    def __repr__(self) -> str:
        return f"<union {self.name}>"


class IdlNamespace:
    """What an IDL ``module`` compiles to: a named attribute bag."""

    def __init__(self, name: str, **members: Any) -> None:
        self._name = name
        for key, value in members.items():
            setattr(self, key, value)

    def __repr__(self) -> str:
        return f"<idl module {self._name}>"
