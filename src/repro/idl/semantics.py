"""Semantic analysis: scopes, name resolution, type building.

Turns the syntactic AST into *entities* whose types are the runtime
:class:`~repro.cdr.typecodes.TypeCode` objects the ORB interprets.
Performs the IDL rules the parser cannot: declare-before-use name
resolution with nested scopes, duplicate detection, constant
evaluation and range checking, interface-inheritance flattening with
collision checks, ``raises`` validation, and the PARDIS-specific rule
that a ``dsequence`` element must be a fixed-width numeric type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

from repro.cdr.typecodes import (
    ArrayTC,
    DSequenceTC,
    EnumTC,
    ExceptionTC,
    MarshalError,
    ObjRefTC,
    SequenceTC,
    StringTC,
    StructTC,
    TypeCode,
    UnionTC,
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TC_VOID,
)
from repro.idl import ast
from repro.idl.errors import IdlSemanticError
from repro.orb.operation import Direction, OperationSpec, ParamSpec

_BASIC_TC = {
    "short": TC_SHORT,
    "ushort": TC_USHORT,
    "long": TC_LONG,
    "ulong": TC_ULONG,
    "longlong": TC_LONGLONG,
    "ulonglong": TC_ULONGLONG,
    "float": TC_FLOAT,
    "double": TC_DOUBLE,
    "boolean": TC_BOOLEAN,
    "char": TC_CHAR,
    "octet": TC_OCTET,
    "void": TC_VOID,
}


# ---------------------------------------------------------------------------
# Entities: the semantic pass's output, consumed by codegen
# ---------------------------------------------------------------------------


@dataclass
class Entity:
    name: str
    qualified: tuple[str, ...]

    @property
    def qualified_text(self) -> str:
        return "::".join(self.qualified)


@dataclass
class TypedefEntity(Entity):
    typecode: TypeCode = None  # type: ignore[assignment]

    @property
    def is_dsequence(self) -> bool:
        return isinstance(self.typecode, DSequenceTC)


@dataclass
class StructEntity(Entity):
    typecode: StructTC = None  # type: ignore[assignment]


@dataclass
class EnumEntity(Entity):
    typecode: EnumTC = None  # type: ignore[assignment]


@dataclass
class ExceptionEntity(Entity):
    typecode: ExceptionTC = None  # type: ignore[assignment]


@dataclass
class UnionEntity(Entity):
    typecode: UnionTC = None  # type: ignore[assignment]


@dataclass
class ConstEntity(Entity):
    typecode: TypeCode = None  # type: ignore[assignment]
    value: Any = None


@dataclass
class AttributeInfo:
    name: str
    typecode: TypeCode
    readonly: bool


@dataclass
class InterfaceEntity(Entity):
    repo_id: str = ""
    bases: list["InterfaceEntity"] = field(default_factory=list)
    own_operations: list[OperationSpec] = field(default_factory=list)
    all_operations: dict[str, OperationSpec] = field(default_factory=dict)
    attributes: list[AttributeInfo] = field(default_factory=list)
    #: Entities declared inside the interface body, in order.
    nested: list[Entity] = field(default_factory=list)

    @property
    def typecode(self) -> ObjRefTC:
        return ObjRefTC(self.qualified_text)


@dataclass
class ModuleEntity(Entity):
    body: list[Entity] = field(default_factory=list)


TopEntity = Union[
    TypedefEntity,
    StructEntity,
    EnumEntity,
    ExceptionEntity,
    UnionEntity,
    ConstEntity,
    InterfaceEntity,
    ModuleEntity,
]


@dataclass
class CompilationUnit:
    """Ordered, resolved translation unit."""

    body: list[Entity] = field(default_factory=list)

    def interfaces(self) -> list[InterfaceEntity]:
        found: list[InterfaceEntity] = []

        def walk(entities: list[Entity]) -> None:
            for entity in entities:
                if isinstance(entity, InterfaceEntity):
                    found.append(entity)
                elif isinstance(entity, ModuleEntity):
                    walk(entity.body)

        walk(self.body)
        return found

    def find(self, qualified_text: str) -> Entity | None:
        target = tuple(qualified_text.split("::"))

        def walk(entities: list[Entity]) -> Entity | None:
            for entity in entities:
                if entity.qualified == target:
                    return entity
                sub = getattr(entity, "body", None) or getattr(
                    entity, "nested", None
                )
                if sub:
                    hit = walk(sub)
                    if hit is not None:
                        return hit
            return None

        return walk(self.body)


# ---------------------------------------------------------------------------
# Scopes
# ---------------------------------------------------------------------------


class _Scope:
    def __init__(self, name: str, parent: "_Scope | None") -> None:
        self.name = name
        self.parent = parent
        self.entries: dict[str, Entity] = {}

    @property
    def qualified(self) -> tuple[str, ...]:
        if self.parent is None:
            return ()
        return self.parent.qualified + (self.name,)

    def declare(self, entity: Entity, line: int | None) -> None:
        if entity.name in self.entries:
            raise IdlSemanticError(
                f"'{entity.name}' is already declared in this scope", line
            )
        self.entries[entity.name] = entity

    def lookup(self, parts: tuple[str, ...]) -> Entity | None:
        """CORBA-style: search this scope then enclosing scopes; a
        leading empty part anchors at file scope."""
        if parts and parts[0] == "":
            scope: _Scope | None = self
            while scope.parent is not None:
                scope = scope.parent
            return scope._lookup_here(parts[1:])
        scope = self
        while scope is not None:
            hit = scope._lookup_here(parts)
            if hit is not None:
                return hit
            scope = scope.parent
        return None

    def _lookup_here(self, parts: tuple[str, ...]) -> Entity | None:
        if not parts:
            return None
        entity = self.entries.get(parts[0])
        for part in parts[1:]:
            if entity is None:
                return None
            subscope = getattr(entity, "_scope", None)
            if subscope is None:
                return None
            entity = subscope.entries.get(part)
        return entity


# ---------------------------------------------------------------------------
# Analyzer
# ---------------------------------------------------------------------------


class Analyzer:
    """Walks the AST building scopes, entities and TypeCodes."""

    def __init__(self) -> None:
        self._file_scope = _Scope("", None)
        #: Forward-declared interfaces awaiting their definition:
        #: qualified name → line of the (first) forward declaration.
        self._pending_forward: dict[tuple[str, ...], int] = {}

    def analyze(self, spec: ast.Specification) -> CompilationUnit:
        unit = CompilationUnit()
        for decl in spec.body:
            entity = self._declaration(decl, self._file_scope)
            if entity is not None:
                unit.body.append(entity)
        if self._pending_forward:
            qualified, line = min(
                self._pending_forward.items(), key=lambda item: item[1]
            )
            raise IdlSemanticError(
                f"forward-declared interface '{'::'.join(qualified)}' "
                f"is never defined",
                line,
            )
        return unit

    # -- declarations ---------------------------------------------------------

    def _declaration(
        self, decl: ast.Declaration, scope: _Scope
    ) -> Entity | None:
        if isinstance(decl, ast.Module):
            return self._module(decl, scope)
        if isinstance(decl, ast.Interface):
            return self._interface(decl, scope)
        if isinstance(decl, ast.InterfaceForward):
            return self._interface_forward(decl, scope)
        if isinstance(decl, ast.Typedef):
            return self._typedef(decl, scope)
        if isinstance(decl, ast.Struct):
            return self._struct(decl, scope)
        if isinstance(decl, ast.Enum):
            return self._enum(decl, scope)
        if isinstance(decl, ast.ExceptionDecl):
            return self._exception(decl, scope)
        if isinstance(decl, ast.UnionDecl):
            return self._union(decl, scope)
        if isinstance(decl, ast.Const):
            return self._const(decl, scope)
        raise IdlSemanticError(
            f"unsupported declaration {type(decl).__name__}", decl.line
        )

    def _module(self, decl: ast.Module, scope: _Scope) -> ModuleEntity:
        entity = ModuleEntity(decl.name, scope.qualified + (decl.name,))
        subscope = _Scope(decl.name, scope)
        entity._scope = subscope  # type: ignore[attr-defined]
        scope.declare(entity, decl.line)
        for inner in decl.body:
            inner_entity = self._declaration(inner, subscope)
            if inner_entity is not None:
                entity.body.append(inner_entity)
        return entity

    def _interface_forward(
        self, decl: ast.InterfaceForward, scope: _Scope
    ) -> None:
        """Register a forward declaration.  The entity enters the scope
        (so operations may reference it) but joins the unit body only
        once defined; :meth:`analyze` rejects units that never define
        it."""
        existing = scope.entries.get(decl.name)
        if existing is not None:
            if isinstance(existing, InterfaceEntity):
                return None  # re-declaration (before or after definition)
            raise IdlSemanticError(
                f"'{decl.name}' is already declared in this scope",
                decl.line,
            )
        qualified = scope.qualified + (decl.name,)
        repo_id = "IDL:" + "/".join(qualified) + ":1.0"
        entity = InterfaceEntity(decl.name, qualified, repo_id=repo_id)
        subscope = _Scope(decl.name, scope)
        entity._scope = subscope  # type: ignore[attr-defined]
        entity._defined = False  # type: ignore[attr-defined]
        scope.declare(entity, decl.line)
        self._pending_forward.setdefault(qualified, decl.line)
        return None

    def _interface(
        self, decl: ast.Interface, scope: _Scope
    ) -> InterfaceEntity:
        qualified = scope.qualified + (decl.name,)
        repo_id = "IDL:" + "/".join(qualified) + ":1.0"
        forward = scope.entries.get(decl.name)
        if (
            isinstance(forward, InterfaceEntity)
            and not getattr(forward, "_defined", True)
        ):
            # Completing an earlier forward declaration: reuse the
            # entity so references resolved meanwhile stay valid.
            entity = forward
            entity._defined = True  # type: ignore[attr-defined]
            subscope = entity._scope  # type: ignore[attr-defined]
            self._pending_forward.pop(qualified, None)
        else:
            entity = InterfaceEntity(decl.name, qualified, repo_id=repo_id)
            subscope = _Scope(decl.name, scope)
            entity._scope = subscope  # type: ignore[attr-defined]
            # Declared before the body: operations may take
            # self-references.
            scope.declare(entity, decl.line)

        for base_ref in decl.bases:
            base = scope.lookup(base_ref.parts)
            if not isinstance(base, InterfaceEntity):
                raise IdlSemanticError(
                    f"'{base_ref.text}' is not an interface",
                    base_ref.line,
                )
            if base is entity:
                raise IdlSemanticError(
                    f"interface '{decl.name}' cannot inherit from itself",
                    decl.line,
                )
            if base in entity.bases:
                raise IdlSemanticError(
                    f"interface '{decl.name}' inherits '{base.name}' twice",
                    decl.line,
                )
            entity.bases.append(base)

        # Inherited operations, with collision detection across bases.
        inherited_from: dict[str, InterfaceEntity] = {}
        for base in entity.bases:
            for opname, spec in base.all_operations.items():
                prior = inherited_from.get(opname)
                if prior is not None and prior.all_operations[opname] != spec:
                    raise IdlSemanticError(
                        f"interface '{decl.name}' inherits conflicting "
                        f"definitions of '{opname}' from "
                        f"'{prior.name}' and '{base.name}'",
                        decl.line,
                    )
                inherited_from[opname] = base
                entity.all_operations[opname] = spec

        for export in decl.body:
            if isinstance(export, ast.Operation):
                spec = self._operation(export, subscope)
                self._declare_operation(entity, spec, export.line)
            elif isinstance(export, ast.Attribute):
                self._attribute(entity, export, subscope)
            else:
                entity.nested.append(self._declaration(export, subscope))
        return entity

    def _declare_operation(
        self, entity: InterfaceEntity, spec: OperationSpec, line: int
    ) -> None:
        if any(op.name == spec.name for op in entity.own_operations):
            raise IdlSemanticError(
                f"operation '{spec.name}' is declared twice in "
                f"interface '{entity.name}'",
                line,
            )
        if spec.name in entity.all_operations:
            raise IdlSemanticError(
                f"operation '{spec.name}' in interface '{entity.name}' "
                f"redefines an inherited operation",
                line,
            )
        entity.own_operations.append(spec)
        entity.all_operations[spec.name] = spec

    def _operation(
        self, decl: ast.Operation, scope: _Scope
    ) -> OperationSpec:
        params = []
        for param in decl.params:
            typecode = self._type(param.type, scope, decl.line)
            params.append(
                ParamSpec(param.name, Direction(param.direction), typecode)
            )
        raises = []
        for exc_ref in decl.raises:
            exc = scope.lookup(exc_ref.parts)
            if not isinstance(exc, ExceptionEntity):
                raise IdlSemanticError(
                    f"'{exc_ref.text}' in raises clause is not an "
                    f"exception",
                    exc_ref.line,
                )
            raises.append(exc.typecode)
        return_tc = self._type(decl.return_type, scope, decl.line)
        try:
            return OperationSpec(
                decl.name,
                tuple(params),
                return_tc,
                tuple(raises),
                oneway=decl.oneway,
            )
        except ValueError as exc:
            raise IdlSemanticError(str(exc), decl.line) from None

    def _attribute(
        self, entity: InterfaceEntity, decl: ast.Attribute, scope: _Scope
    ) -> None:
        """Attributes map to _get_/_set_ operations, per CORBA."""
        typecode = self._type(decl.type, scope, decl.line)
        if any(a.name == decl.name for a in entity.attributes):
            raise IdlSemanticError(
                f"attribute '{decl.name}' is declared twice", decl.line
            )
        entity.attributes.append(
            AttributeInfo(decl.name, typecode, decl.readonly)
        )
        getter = OperationSpec(f"_get_{decl.name}", (), typecode)
        self._declare_operation(entity, getter, decl.line)
        if not decl.readonly:
            setter = OperationSpec(
                f"_set_{decl.name}",
                (ParamSpec("value", Direction.IN, typecode),),
            )
            self._declare_operation(entity, setter, decl.line)

    def _typedef(self, decl: ast.Typedef, scope: _Scope) -> TypedefEntity:
        typecode = self._type(decl.type, scope, decl.line)
        for dim in reversed(decl.array_dims):
            typecode = ArrayTC(
                typecode, self._positive_int(dim, scope, decl.line)
            )
        entity = TypedefEntity(
            decl.name, scope.qualified + (decl.name,), typecode=typecode
        )
        scope.declare(entity, decl.line)
        return entity

    def _member_fields(
        self,
        members: list[ast.StructMember],
        scope: _Scope,
        owner: str,
        line: int,
    ) -> tuple[tuple[str, TypeCode], ...]:
        fields: list[tuple[str, TypeCode]] = []
        seen: set[str] = set()
        for member in members:
            if member.name in seen:
                raise IdlSemanticError(
                    f"member '{member.name}' is declared twice in "
                    f"{owner}",
                    member.line,
                )
            seen.add(member.name)
            typecode = self._type(member.type, scope, member.line)
            if isinstance(typecode, DSequenceTC):
                raise IdlSemanticError(
                    f"member '{member.name}': distributed sequences "
                    f"cannot be struct or exception members",
                    member.line,
                )
            for dim in reversed(member.array_dims):
                typecode = ArrayTC(
                    typecode, self._positive_int(dim, scope, member.line)
                )
            fields.append((member.name, typecode))
        return tuple(fields)

    def _struct(self, decl: ast.Struct, scope: _Scope) -> StructEntity:
        qualified = scope.qualified + (decl.name,)
        fields = self._member_fields(
            decl.members, scope, f"struct '{decl.name}'", decl.line
        )
        entity = StructEntity(
            decl.name,
            qualified,
            typecode=StructTC("::".join(qualified), fields),
        )
        scope.declare(entity, decl.line)
        return entity

    def _enum(self, decl: ast.Enum, scope: _Scope) -> EnumEntity:
        qualified = scope.qualified + (decl.name,)
        try:
            typecode = EnumTC("::".join(qualified), decl.members)
        except MarshalError as exc:
            raise IdlSemanticError(str(exc), decl.line) from None
        entity = EnumEntity(decl.name, qualified, typecode=typecode)
        scope.declare(entity, decl.line)
        # Enum members enter the enclosing scope as constants (CORBA).
        for member in decl.members:
            scope.declare(
                ConstEntity(
                    member,
                    scope.qualified + (member,),
                    typecode=typecode,
                    value=member,
                ),
                decl.line,
            )
        return entity

    def _exception(
        self, decl: ast.ExceptionDecl, scope: _Scope
    ) -> ExceptionEntity:
        qualified = scope.qualified + (decl.name,)
        repo_id = "IDL:" + "/".join(qualified) + ":1.0"
        fields = self._member_fields(
            decl.members, scope, f"exception '{decl.name}'", decl.line
        )
        entity = ExceptionEntity(
            decl.name,
            qualified,
            typecode=ExceptionTC("::".join(qualified), repo_id, fields),
        )
        scope.declare(entity, decl.line)
        return entity

    def _union(self, decl: ast.UnionDecl, scope: _Scope) -> UnionEntity:
        qualified = scope.qualified + (decl.name,)
        disc_tc = self._type(decl.discriminator, scope, decl.line)
        cases: list[tuple[Any, str, TypeCode]] = []
        default_case: tuple[str, TypeCode] | None = None
        seen_members: set[str] = set()
        seen_labels: set[Any] = set()
        for case in decl.cases:
            if case.member_name in seen_members:
                raise IdlSemanticError(
                    f"member '{case.member_name}' is declared twice in "
                    f"union '{decl.name}'",
                    case.line,
                )
            seen_members.add(case.member_name)
            member_tc = self._type(case.type, scope, case.line)
            if isinstance(member_tc, DSequenceTC):
                raise IdlSemanticError(
                    f"member '{case.member_name}': distributed "
                    f"sequences cannot be union members",
                    case.line,
                )
            for dim in reversed(case.array_dims):
                member_tc = ArrayTC(
                    member_tc, self._positive_int(dim, scope, case.line)
                )
            for label_expr in case.labels:
                label = self._eval_const(label_expr, scope, case.line)
                try:
                    disc_tc.validate(label)
                except MarshalError as exc:
                    raise IdlSemanticError(
                        f"case label {label!r} does not fit the "
                        f"discriminator: {exc}",
                        case.line,
                    ) from None
                if label in seen_labels:
                    raise IdlSemanticError(
                        f"case label {label!r} appears twice in union "
                        f"'{decl.name}'",
                        case.line,
                    )
                seen_labels.add(label)
                cases.append((label, case.member_name, member_tc))
            if case.is_default:
                if default_case is not None:
                    raise IdlSemanticError(
                        f"union '{decl.name}' has two default cases",
                        case.line,
                    )
                default_case = (case.member_name, member_tc)
        try:
            typecode = UnionTC(
                "::".join(qualified), disc_tc, tuple(cases), default_case
            )
        except MarshalError as exc:
            raise IdlSemanticError(str(exc), decl.line) from None
        entity = UnionEntity(decl.name, qualified, typecode=typecode)
        scope.declare(entity, decl.line)
        return entity

    def _const(self, decl: ast.Const, scope: _Scope) -> ConstEntity:
        typecode = self._type(decl.type, scope, decl.line)
        value = self._eval_const(decl.expr, scope, decl.line)
        value = self._coerce_const(typecode, value, decl)
        entity = ConstEntity(
            decl.name,
            scope.qualified + (decl.name,),
            typecode=typecode,
            value=value,
        )
        scope.declare(entity, decl.line)
        return entity

    def _coerce_const(
        self, typecode: TypeCode, value: Any, decl: ast.Const
    ) -> Any:
        kind = typecode.kind
        if kind in ("float", "double"):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise IdlSemanticError(
                    f"constant '{decl.name}' must be numeric", decl.line
                )
            return float(value)
        if kind == "boolean":
            if not isinstance(value, bool):
                raise IdlSemanticError(
                    f"constant '{decl.name}' must be TRUE or FALSE",
                    decl.line,
                )
            return value
        if kind == "string":
            if not isinstance(value, str):
                raise IdlSemanticError(
                    f"constant '{decl.name}' must be a string", decl.line
                )
            try:
                typecode.validate(value)
            except MarshalError as exc:
                raise IdlSemanticError(str(exc), decl.line) from None
            return value
        if kind == "char":
            if not isinstance(value, str) or len(value) != 1:
                raise IdlSemanticError(
                    f"constant '{decl.name}' must be a character",
                    decl.line,
                )
            return value
        if kind == "enum":
            try:
                typecode.ordinal(value)  # type: ignore[attr-defined]
            except MarshalError as exc:
                raise IdlSemanticError(str(exc), decl.line) from None
            return value
        # Integer kinds.
        if isinstance(value, bool) or not isinstance(value, int):
            raise IdlSemanticError(
                f"constant '{decl.name}' must be an integer", decl.line
            )
        try:
            typecode.validate(value)
        except MarshalError as exc:
            raise IdlSemanticError(str(exc), decl.line) from None
        return value

    # -- types -------------------------------------------------------------

    def _type(
        self, expr: ast.TypeExpr, scope: _Scope, line: int
    ) -> TypeCode:
        if isinstance(expr, ast.BasicType):
            return _BASIC_TC[expr.name]
        if isinstance(expr, ast.StringType):
            if expr.bound is None:
                return StringTC()
            return StringTC(self._positive_int(expr.bound, scope, line))
        if isinstance(expr, ast.SequenceType):
            element = self._type(expr.element, scope, line)
            self._check_element(element, "sequence", line)
            bound = (
                None
                if expr.bound is None
                else self._positive_int(expr.bound, scope, line)
            )
            return SequenceTC(element, bound)
        if isinstance(expr, ast.DSequenceType):
            element = self._type(expr.element, scope, line)
            bound = (
                None
                if expr.bound is None
                else self._positive_int(expr.bound, scope, line)
            )
            template = None
            if expr.dist is not None:
                if expr.dist.kind == "block":
                    template = ("block",)
                else:
                    if not any(expr.dist.weights):
                        raise IdlSemanticError(
                            "proportions need at least one positive "
                            "weight",
                            line,
                        )
                    template = ("proportions", expr.dist.weights)
            try:
                return DSequenceTC(element, bound, template)
            except MarshalError as exc:
                raise IdlSemanticError(str(exc), line) from None
        if isinstance(expr, ast.NamedType):
            entity = scope.lookup(expr.parts)
            if entity is None:
                raise IdlSemanticError(
                    f"unknown type '{expr.text}'", expr.line
                )
            if isinstance(
                entity,
                (TypedefEntity, StructEntity, EnumEntity, UnionEntity),
            ):
                return entity.typecode
            if isinstance(entity, InterfaceEntity):
                return entity.typecode
            raise IdlSemanticError(
                f"'{expr.text}' does not name a type", expr.line
            )
        raise IdlSemanticError(f"unsupported type expression {expr!r}", line)

    def _check_element(
        self, element: TypeCode, container: str, line: int
    ) -> None:
        if element is TC_VOID:
            raise IdlSemanticError(
                f"{container} element cannot be void", line
            )
        if isinstance(element, DSequenceTC):
            raise IdlSemanticError(
                f"{container} element cannot be a distributed sequence",
                line,
            )

    def _positive_int(
        self, expr: ast.ConstExpr, scope: _Scope, line: int
    ) -> int:
        value = self._eval_const(expr, scope, line)
        if isinstance(value, bool) or not isinstance(value, int):
            raise IdlSemanticError(
                "bound must be an integer constant", line
            )
        if value <= 0:
            raise IdlSemanticError(
                f"bound must be positive, got {value}", line
            )
        return value

    # -- constant evaluation ---------------------------------------------

    def _eval_const(
        self, expr: ast.ConstExpr, scope: _Scope, line: int
    ) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ConstRef):
            entity = scope.lookup(expr.parts)
            if not isinstance(entity, ConstEntity):
                raise IdlSemanticError(
                    f"'{expr.text}' is not a constant", expr.line or line
                )
            return entity.value
        if isinstance(expr, ast.UnaryOp):
            value = self._eval_const(expr.operand, scope, line)
            return self._apply_unary(expr.op, value, line)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_const(expr.left, scope, line)
            right = self._eval_const(expr.right, scope, line)
            return self._apply_binary(expr.op, left, right, line)
        raise IdlSemanticError(f"bad constant expression {expr!r}", line)

    def _apply_unary(self, op: str, value: Any, line: int) -> Any:
        numeric = isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
        if op in "+-" and numeric:
            return value if op == "+" else -value
        if op == "~" and isinstance(value, int) and not isinstance(
            value, bool
        ):
            return ~value
        raise IdlSemanticError(
            f"operator '{op}' cannot apply to {value!r}", line
        )

    def _apply_binary(self, op: str, left: Any, right: Any, line: int) -> Any:
        def integers() -> bool:
            return all(
                isinstance(v, int) and not isinstance(v, bool)
                for v in (left, right)
            )

        def numerics() -> bool:
            return all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in (left, right)
            )

        try:
            if op == "+":
                if isinstance(left, str) and isinstance(right, str):
                    return left + right
                if numerics():
                    return left + right
            elif op in ("-", "*"):
                if numerics():
                    return left - right if op == "-" else left * right
            elif op == "/":
                if numerics():
                    if integers():
                        return left // right
                    return left / right
            elif op == "%":
                if integers():
                    return left % right
            elif op in ("<<", ">>", "|", "&", "^"):
                if integers():
                    if op == "<<":
                        return left << right
                    if op == ">>":
                        return left >> right
                    if op == "|":
                        return left | right
                    if op == "&":
                        return left & right
                    return left ^ right
        except ZeroDivisionError:
            raise IdlSemanticError("division by zero in constant", line)
        raise IdlSemanticError(
            f"operator '{op}' cannot apply to {left!r} and {right!r}", line
        )


def analyze(spec: ast.Specification) -> CompilationUnit:
    """Resolve a parsed specification into a compilation unit."""
    return Analyzer().analyze(spec)
