"""Diagnostics for the IDL compiler."""

from __future__ import annotations


class IdlError(Exception):
    """Base of all IDL compilation failures."""

    def __init__(
        self, message: str, line: int | None = None, column: int | None = None
    ) -> None:
        location = ""
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            location = f" ({location})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class IdlSyntaxError(IdlError):
    """Lexical or grammatical error in the IDL source."""


class IdlSemanticError(IdlError):
    """The source parses but violates IDL rules (unknown names,
    duplicates, bad inheritance, invalid constants, …)."""
