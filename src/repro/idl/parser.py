"""Recursive-descent parser for the PARDIS IDL dialect.

Grammar (CORBA IDL subset plus the ``dsequence`` extension)::

    specification  : definition+
    definition     : module | interface | typedef | struct | enum
                   | exception | union | const
    module         : "module" IDENT "{" definition+ "}" ";"
    interface      : "interface" IDENT [":" scoped ("," scoped)*]
                     "{" export* "}" ";"
                   | "interface" IDENT ";"
    export         : operation | attribute | typedef | struct | enum
                   | exception | const
    operation      : ["oneway"] type_or_void IDENT "(" params? ")"
                     ["raises" "(" scoped ("," scoped)* ")"] ";"
    attribute      : ["readonly"] "attribute" type IDENT ";"
    param          : ("in"|"out"|"inout") type IDENT
    typedef        : "typedef" type declarator ";"
    declarator     : IDENT ("[" const_expr "]")*
    struct         : "struct" IDENT "{" member+ "}" ";"
    member         : type declarator ";"
    enum           : "enum" IDENT "{" IDENT ("," IDENT)* "}" ";"
    exception      : "exception" IDENT "{" member* "}" ";"
    union          : "union" IDENT "switch" "(" type ")"
                     "{" union_case+ "}" ";"
    union_case     : ("case" const_expr ":" | "default" ":")+
                     type declarator ";"
    const          : "const" type IDENT "=" const_expr ";"
    type           : basic | string_type | sequence | dsequence | scoped
    string_type    : "string" ["<" const_expr ">"]
    sequence       : "sequence" "<" type ["," const_expr] ">"
    dsequence      : "dsequence" "<" type ["," const_expr] ["," dist] ">"
    dist           : "block" | "proportions" "(" INT ("," INT)* ")"

Constant expressions support the CORBA operator set over integer,
float, boolean, char and string literals, with the usual precedence
(``|`` < ``^`` < ``&`` < shifts < additive < multiplicative < unary).
"""

from __future__ import annotations

from repro.idl import ast
from repro.idl.errors import IdlSyntaxError
from repro.idl.lexer import Token, tokenize

#: Basic-type spellings, including the two-word forms.
_BASIC_STARTERS = frozenset(
    {
        "short",
        "long",
        "unsigned",
        "float",
        "double",
        "boolean",
        "char",
        "octet",
    }
)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> IdlSyntaxError:
        token = token or self._current
        return IdlSyntaxError(message, token.line, token.column)

    def _check(self, kind: str, value: str | None = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        if self._check(kind, value):
            return self._advance()
        want = value if value is not None else kind
        got = self._current.value or self._current.kind
        raise self._error(f"expected {want!r}, found {got!r}")

    def _expect_close_angle(self) -> None:
        """Consume '>' where the lexer may have produced '>>' (the
        nested-template problem, e.g. ``sequence<sequence<long>>``):
        split the token, leaving one '>' for the outer closer."""
        token = self._current
        if token.kind == "punct" and token.value == ">>":
            self._tokens[self._index] = Token(
                "punct", ">", token.line, token.column + 1
            )
            return
        self._expect("punct", ">")

    def _expect_ident(self, what: str) -> Token:
        if self._check("ident"):
            return self._advance()
        raise self._error(
            f"expected {what} name, found "
            f"{self._current.value or self._current.kind!r}"
        )

    # -- entry point ---------------------------------------------------------

    def parse(self) -> ast.Specification:
        spec = ast.Specification()
        while not self._check("eof"):
            spec.body.append(self._definition())
        if not spec.body:
            raise self._error("empty IDL specification")
        return spec

    # -- declarations ----------------------------------------------------------

    def _definition(self) -> ast.Declaration:
        token = self._current
        if token.kind != "keyword":
            raise self._error(
                f"expected a definition, found {token.value!r}"
            )
        if token.value == "module":
            return self._module()
        if token.value == "interface":
            return self._interface()
        return self._common_decl()

    def _common_decl(self) -> ast.Declaration:
        """Declarations legal both at top level and inside interfaces."""
        token = self._current
        if token.value == "typedef":
            return self._typedef()
        if token.value == "struct":
            return self._struct()
        if token.value == "enum":
            return self._enum()
        if token.value == "exception":
            return self._exception()
        if token.value == "union":
            return self._union()
        if token.value == "const":
            return self._const()
        raise self._error(f"unexpected keyword {token.value!r}")

    def _module(self) -> ast.Module:
        start = self._expect("keyword", "module")
        name = self._expect_ident("module")
        self._expect("punct", "{")
        node = ast.Module(name.value, start.line, start.column)
        while not self._check("punct", "}"):
            node.body.append(self._definition())
        self._expect("punct", "}")
        self._expect("punct", ";")
        if not node.body:
            raise self._error(f"module '{node.name}' is empty", start)
        return node

    def _interface(self) -> ast.Declaration:
        start = self._expect("keyword", "interface")
        name = self._expect_ident("interface")
        if self._accept("punct", ";"):
            # Forward declaration: the definition must follow later in
            # the unit (checked by the semantic pass).
            return ast.InterfaceForward(
                name.value, start.line, start.column
            )
        node = ast.Interface(name.value, start.line, start.column)
        if self._accept("punct", ":"):
            node.bases.append(self._scoped_name())
            while self._accept("punct", ","):
                node.bases.append(self._scoped_name())
        self._expect("punct", "{")
        while not self._check("punct", "}"):
            node.body.append(self._export())
        self._expect("punct", "}")
        self._expect("punct", ";")
        return node

    def _export(self) -> ast.Declaration:
        token = self._current
        if token.kind == "keyword" and token.value in (
            "typedef",
            "struct",
            "enum",
            "exception",
            "union",
            "const",
        ):
            return self._common_decl()
        if token.kind == "keyword" and token.value in (
            "attribute",
            "readonly",
        ):
            return self._attribute()
        return self._operation()

    def _attribute(self) -> ast.Attribute:
        start = self._current
        readonly = bool(self._accept("keyword", "readonly"))
        self._expect("keyword", "attribute")
        type_expr = self._type_spec()
        name = self._expect_ident("attribute")
        self._expect("punct", ";")
        return ast.Attribute(
            name.value,
            start.line,
            start.column,
            type=type_expr,
            readonly=readonly,
        )

    def _operation(self) -> ast.Operation:
        start = self._current
        oneway = bool(self._accept("keyword", "oneway"))
        if self._accept("keyword", "void"):
            return_type: ast.TypeExpr = ast.BasicType("void")
        else:
            return_type = self._type_spec()
        name = self._expect_ident("operation")
        node = ast.Operation(
            name.value,
            start.line,
            start.column,
            return_type=return_type,
            oneway=oneway,
        )
        self._expect("punct", "(")
        if not self._check("punct", ")"):
            node.params.append(self._param())
            while self._accept("punct", ","):
                node.params.append(self._param())
        self._expect("punct", ")")
        if self._accept("keyword", "raises"):
            self._expect("punct", "(")
            node.raises.append(self._scoped_name())
            while self._accept("punct", ","):
                node.raises.append(self._scoped_name())
            self._expect("punct", ")")
        self._expect("punct", ";")
        return node

    def _param(self) -> ast.Param:
        token = self._current
        direction = None
        for mode in ("in", "out", "inout"):
            if self._accept("keyword", mode):
                direction = mode
                break
        if direction is None:
            raise self._error(
                "parameter must start with 'in', 'out' or 'inout'"
            )
        type_expr = self._type_spec()
        name = self._expect_ident("parameter")
        return ast.Param(name.value, direction, type_expr, token.line)

    def _typedef(self) -> ast.Typedef:
        start = self._expect("keyword", "typedef")
        type_expr = self._type_spec()
        name = self._expect_ident("typedef")
        dims = self._array_dims()
        self._expect("punct", ";")
        return ast.Typedef(
            name.value,
            start.line,
            start.column,
            type=type_expr,
            array_dims=dims,
        )

    def _array_dims(self) -> tuple:
        dims: list[ast.ConstExpr] = []
        while self._accept("punct", "["):
            dims.append(self._const_expr())
            self._expect("punct", "]")
        return tuple(dims)

    def _struct_members(self, owner: str) -> list[ast.StructMember]:
        members: list[ast.StructMember] = []
        while not self._check("punct", "}"):
            type_expr = self._type_spec()
            while True:
                name = self._expect_ident(f"{owner} member")
                dims = self._array_dims()
                members.append(
                    ast.StructMember(
                        name.value, type_expr, dims, name.line
                    )
                )
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ";")
        return members

    def _struct(self) -> ast.Struct:
        start = self._expect("keyword", "struct")
        name = self._expect_ident("struct")
        self._expect("punct", "{")
        members = self._struct_members("struct")
        self._expect("punct", "}")
        self._expect("punct", ";")
        if not members:
            raise self._error(f"struct '{name.value}' has no members", start)
        return ast.Struct(
            name.value, start.line, start.column, members=members
        )

    def _enum(self) -> ast.Enum:
        start = self._expect("keyword", "enum")
        name = self._expect_ident("enum")
        self._expect("punct", "{")
        members = [self._expect_ident("enum member").value]
        while self._accept("punct", ","):
            members.append(self._expect_ident("enum member").value)
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.Enum(
            name.value, start.line, start.column, members=tuple(members)
        )

    def _exception(self) -> ast.ExceptionDecl:
        start = self._expect("keyword", "exception")
        name = self._expect_ident("exception")
        self._expect("punct", "{")
        members = self._struct_members("exception")
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.ExceptionDecl(
            name.value, start.line, start.column, members=members
        )

    def _union(self) -> ast.UnionDecl:
        start = self._expect("keyword", "union")
        name = self._expect_ident("union")
        self._expect("keyword", "switch")
        self._expect("punct", "(")
        discriminator = self._type_spec()
        self._expect("punct", ")")
        self._expect("punct", "{")
        cases: list[ast.UnionCase] = []
        while not self._check("punct", "}"):
            cases.append(self._union_case())
        self._expect("punct", "}")
        self._expect("punct", ";")
        if not cases:
            raise self._error(f"union '{name.value}' has no cases", start)
        return ast.UnionDecl(
            name.value,
            start.line,
            start.column,
            discriminator=discriminator,
            cases=cases,
        )

    def _union_case(self) -> ast.UnionCase:
        start = self._current
        labels: list[ast.ConstExpr] = []
        is_default = False
        while True:
            if self._accept("keyword", "case"):
                labels.append(self._const_expr())
                self._expect("punct", ":")
            elif self._accept("keyword", "default"):
                is_default = True
                self._expect("punct", ":")
            else:
                break
        if not labels and not is_default:
            raise self._error(
                "union member must follow 'case' or 'default' labels"
            )
        type_expr = self._type_spec()
        member = self._expect_ident("union member")
        dims = self._array_dims()
        self._expect("punct", ";")
        return ast.UnionCase(
            labels=tuple(labels),
            is_default=is_default,
            member_name=member.value,
            type=type_expr,
            array_dims=dims,
            line=start.line,
        )

    def _const(self) -> ast.Const:
        start = self._expect("keyword", "const")
        type_expr = self._type_spec()
        name = self._expect_ident("constant")
        self._expect("punct", "=")
        expr = self._const_expr()
        self._expect("punct", ";")
        return ast.Const(
            name.value, start.line, start.column, type=type_expr, expr=expr
        )

    # -- types -------------------------------------------------------------

    def _type_spec(self) -> ast.TypeExpr:
        token = self._current
        if token.kind == "keyword":
            if token.value in _BASIC_STARTERS:
                return ast.BasicType(self._basic_type_name())
            if token.value == "string":
                return self._string_type()
            if token.value == "sequence":
                return self._sequence_type()
            if token.value == "dsequence":
                return self._dsequence_type()
            raise self._error(f"{token.value!r} is not a type")
        if token.kind == "ident" or (
            token.kind == "punct" and token.value == "::"
        ):
            return self._scoped_name()
        raise self._error(f"expected a type, found {token.value!r}")

    def _basic_type_name(self) -> str:
        token = self._advance()
        name = token.value
        if name == "unsigned":
            base = self._expect("keyword").value
            if base == "short":
                return "ushort"
            if base == "long":
                if self._accept("keyword", "long"):
                    return "ulonglong"
                return "ulong"
            raise self._error(
                f"'unsigned {base}' is not a type", token
            )
        if name == "long":
            if self._accept("keyword", "long"):
                return "longlong"
            if self._accept("keyword", "double"):
                raise self._error("'long double' is not supported", token)
            return "long"
        return name

    def _string_type(self) -> ast.StringType:
        self._expect("keyword", "string")
        bound = None
        if self._accept("punct", "<"):
            bound = self._const_expr()
            self._expect_close_angle()
        return ast.StringType(bound)

    def _sequence_type(self) -> ast.SequenceType:
        self._expect("keyword", "sequence")
        self._expect("punct", "<")
        element = self._type_spec()
        bound = None
        if self._accept("punct", ","):
            bound = self._const_expr()
        self._expect_close_angle()
        return ast.SequenceType(element, bound)

    def _dsequence_type(self) -> ast.DSequenceType:
        """``dsequence<element [, length] [, distribution]>``.

        Both trailing arguments are optional (paper §2.2: "Both the
        length and distribution are optional in the definition of the
        sequence"); a distribution is recognised by its keyword.
        """
        self._expect("keyword", "dsequence")
        self._expect("punct", "<")
        element = self._type_spec()
        bound = None
        dist = None
        if self._accept("punct", ","):
            if self._check("keyword", "block") or self._check(
                "keyword", "proportions"
            ):
                dist = self._dist_spec()
            else:
                bound = self._const_expr()
                if self._accept("punct", ","):
                    dist = self._dist_spec()
        self._expect_close_angle()
        return ast.DSequenceType(element, bound, dist)

    def _dist_spec(self) -> ast.DistSpec:
        if self._accept("keyword", "block"):
            return ast.DistSpec("block")
        self._expect("keyword", "proportions")
        self._expect("punct", "(")
        weights = [self._positive_int("proportion weight")]
        while self._accept("punct", ","):
            weights.append(self._positive_int("proportion weight"))
        self._expect("punct", ")")
        return ast.DistSpec("proportions", tuple(weights))

    def _positive_int(self, what: str) -> int:
        token = self._expect("int")
        value = int(token.value, 0)
        if value < 0:
            raise self._error(f"{what} must be non-negative", token)
        return value

    def _scoped_name(self) -> ast.NamedType:
        token = self._current
        parts: list[str] = []
        if self._accept("punct", "::"):
            parts.append("")  # leading :: = file scope
        parts.append(self._expect_ident("type").value)
        while self._accept("punct", "::"):
            parts.append(self._expect_ident("type").value)
        return ast.NamedType(tuple(parts), token.line, token.column)

    # -- constant expressions ---------------------------------------------

    def _const_expr(self) -> ast.ConstExpr:
        return self._or_expr()

    def _binary_level(self, ops: tuple[str, ...], next_level) -> ast.ConstExpr:
        left = next_level()
        while self._current.kind == "punct" and self._current.value in ops:
            op = self._advance().value
            left = ast.BinaryOp(op, left, next_level())
        return left

    def _or_expr(self) -> ast.ConstExpr:
        return self._binary_level(("|",), self._xor_expr)

    def _xor_expr(self) -> ast.ConstExpr:
        return self._binary_level(("^",), self._and_expr)

    def _and_expr(self) -> ast.ConstExpr:
        return self._binary_level(("&",), self._shift_expr)

    def _shift_expr(self) -> ast.ConstExpr:
        return self._binary_level(("<<", ">>"), self._add_expr)

    def _add_expr(self) -> ast.ConstExpr:
        return self._binary_level(("+", "-"), self._mult_expr)

    def _mult_expr(self) -> ast.ConstExpr:
        return self._binary_level(("*", "/", "%"), self._unary_expr)

    def _unary_expr(self) -> ast.ConstExpr:
        if self._current.kind == "punct" and self._current.value in "-+~":
            op = self._advance().value
            return ast.UnaryOp(op, self._unary_expr())
        return self._primary_expr()

    def _primary_expr(self) -> ast.ConstExpr:
        token = self._current
        if token.kind == "int":
            self._advance()
            return ast.Literal(int(token.value, 0))
        if token.kind == "float":
            self._advance()
            return ast.Literal(float(token.value))
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "char":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return ast.Literal(token.value == "TRUE")
        if token.kind == "ident" or (
            token.kind == "punct" and token.value == "::"
        ):
            named = self._scoped_name()
            return ast.ConstRef(named.parts, named.line)
        if self._accept("punct", "("):
            inner = self._const_expr()
            self._expect("punct", ")")
            return inner
        raise self._error(
            f"expected a constant expression, found {token.value!r}"
        )


def parse(source: str) -> ast.Specification:
    """Parse a translation unit into an AST."""
    return Parser(source).parse()
