"""IDL compiler driver: source text → importable Python module."""

from __future__ import annotations

import os
import re
import sys
import types
from dataclasses import dataclass

from repro.idl import codegen, parser, semantics
from repro.idl.errors import IdlError
from repro.idl.semantics import CompilationUnit

_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"\s*$', re.MULTILINE)


def preprocess_includes(
    source: str,
    include_dirs: tuple[str, ...] = (),
    *,
    _stack: tuple[str, ...] = (),
) -> str:
    """Expand ``#include "file.idl"`` directives textually.

    Includes resolve against ``include_dirs`` in order; each file is
    included at most once per translation unit (implicit include
    guard), and cycles are an error.  Other ``#`` lines remain for the
    lexer to skip, as before.
    """
    seen = set(_stack)

    def expand(text: str, stack: tuple[str, ...]) -> str:
        def replace(match: re.Match) -> str:
            name = match.group(1)
            if name in stack:
                raise IdlError(
                    f"circular #include of {name!r} "
                    f"(via {' -> '.join(stack)})"
                )
            if name in seen:
                return ""  # already included in this unit
            for directory in include_dirs or (".",):
                path = os.path.join(directory, name)
                if os.path.exists(path):
                    with open(path, "r", encoding="utf-8") as handle:
                        seen.add(name)
                        return expand(
                            handle.read(), stack + (name,)
                        )
            raise IdlError(
                f"#include {name!r} not found in "
                f"{list(include_dirs or ('.',))}"
            )

        return _INCLUDE.sub(replace, text)

    return expand(source, _stack)


@dataclass
class CompiledIdl:
    """The result of a compilation: analysis output, generated source,
    and the executed module."""

    unit: CompilationUnit
    source: str
    module: types.ModuleType

    def __getattr__(self, name: str):
        # Convenience: compiled.diff_object instead of
        # compiled.module.diff_object.
        try:
            return getattr(self.module, name)
        except AttributeError:
            raise AttributeError(
                f"compiled IDL defines no name {name!r}"
            ) from None


def analyze_idl(source: str) -> CompilationUnit:
    """Parse + semantic analysis, no code generation."""
    return semantics.analyze(parser.parse(source))


def generate_python(source: str) -> str:
    """Compile IDL to Python source text (what ``-o file.py`` writes)."""
    return codegen.generate(analyze_idl(source))


def compile_idl(
    source: str, module_name: str = "pardis_idl"
) -> CompiledIdl:
    """Full pipeline: returns the generated module, executed.

    The module is *not* registered in :data:`sys.modules`; use
    :func:`compile_idl_module` when importability elsewhere matters.
    """
    unit = analyze_idl(source)
    text = codegen.generate(unit)
    module = types.ModuleType(module_name)
    module.__dict__["__idl_source__"] = source
    exec(compile(text, f"<idl:{module_name}>", "exec"), module.__dict__)
    return CompiledIdl(unit=unit, source=text, module=module)


def compile_idl_module(
    source: str, module_name: str
) -> types.ModuleType:
    """Compile and register under ``module_name`` in sys.modules, so
    worker threads and pickled references can import it."""
    compiled = compile_idl(source, module_name)
    sys.modules[module_name] = compiled.module
    return compiled.module


def compile_idl_file(
    path: str,
    module_name: str | None = None,
    include_dirs: tuple[str, ...] = (),
) -> CompiledIdl:
    """Compile an ``.idl`` file from disk, expanding ``#include``
    directives (the file's own directory is always searched)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    own_dir = os.path.dirname(os.path.abspath(path))
    source = preprocess_includes(
        source, (own_dir, *include_dirs)
    )
    if module_name is None:
        stem = path.rsplit("/", 1)[-1]
        module_name = stem.removesuffix(".idl").replace("-", "_")
    return compile_idl(source, module_name)
