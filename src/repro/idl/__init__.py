"""The PARDIS IDL compiler.

CORBA IDL plus the paper's extension — the distributed sequence::

    typedef dsequence<double, 1024> diff_array;

    interface diff_object {
        void diffusion(in long timestep, inout diff_array darray);
    };

The compiler pipeline is the classic one: :mod:`lexer` → :mod:`parser`
(producing the :mod:`ast` tree) → :mod:`semantics` (scopes, name
resolution, typedef expansion, inheritance flattening) → :mod:`codegen`
(Python proxies, skeletons, typecodes).  :func:`compile_idl` runs the
whole pipeline and returns the generated module.
"""

from repro.idl.errors import IdlError, IdlSyntaxError, IdlSemanticError
from repro.idl.compiler import (
    CompiledIdl,
    compile_idl,
    compile_idl_file,
    compile_idl_module,
    generate_python,
    preprocess_includes,
)

__all__ = [
    "CompiledIdl",
    "IdlError",
    "IdlSemanticError",
    "IdlSyntaxError",
    "compile_idl",
    "compile_idl_file",
    "compile_idl_module",
    "generate_python",
    "preprocess_includes",
]
