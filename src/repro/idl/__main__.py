"""Command-line IDL compiler: ``python -m repro.idl input.idl [-o out.py]``.

Mirrors the paper's Figure 1: the IDL compiler translating object
specifications into stub code.
"""

from __future__ import annotations

import argparse
import sys

import os

from repro.idl.compiler import generate_python, preprocess_includes
from repro.idl.errors import IdlError


def main(argv: list[str] | None = None) -> int:
    cli = argparse.ArgumentParser(
        prog="python -m repro.idl",
        description="PARDIS IDL compiler: IDL → Python stubs/skeletons",
    )
    cli.add_argument("input", help="IDL source file")
    cli.add_argument(
        "-o",
        "--output",
        help="output .py file (defaults to stdout)",
    )
    cli.add_argument(
        "-I",
        "--include",
        action="append",
        default=[],
        help="additional #include search directory (repeatable)",
    )
    cli.add_argument(
        "--lint",
        action="store_true",
        help=(
            "run the PARDIS IDL lints (repro.lint family A) before "
            "generating code; any diagnostic aborts the compilation"
        ),
    )
    args = cli.parse_args(argv)

    with open(args.input, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        source = preprocess_includes(
            source,
            (os.path.dirname(os.path.abspath(args.input)),
             *args.include),
        )
        if args.lint:
            from repro.lint import lint_idl_source

            diagnostics = lint_idl_source(source, args.input)
            for diagnostic in diagnostics:
                print(diagnostic.render(), file=sys.stderr)
            if diagnostics:
                print(
                    f"{args.input}: {len(diagnostics)} lint "
                    f"diagnostic(s); no code generated",
                    file=sys.stderr,
                )
                return 1
        text = generate_python(source)
    except IdlError as exc:
        print(f"{args.input}: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
