"""Hand-written lexer for the PARDIS IDL dialect.

Produces a flat token stream with source positions.  Handles CORBA IDL
lexical structure: ``//`` and ``/* */`` comments, ``#`` preprocessor
lines (ignored, as we compile single translation units), integer
literals in decimal/hex/octal, floating literals, character and string
literals with the usual escapes, identifiers and the punctuation the
grammar needs (including ``::`` and ``<<``/``>>`` for const
expressions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.idl.errors import IdlSyntaxError

KEYWORDS = frozenset(
    {
        "module",
        "interface",
        "typedef",
        "struct",
        "enum",
        "exception",
        "union",
        "switch",
        "case",
        "default",
        "const",
        "attribute",
        "readonly",
        "oneway",
        "raises",
        "in",
        "out",
        "inout",
        "void",
        "short",
        "long",
        "unsigned",
        "float",
        "double",
        "boolean",
        "char",
        "octet",
        "string",
        "sequence",
        "dsequence",
        "block",
        "proportions",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character punctuation, longest first.
_PUNCT2 = ("::", "<<", ">>")
_PUNCT1 = "{}();,<>=[]+-*/%|&^~:"


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'char', 'punct', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming tokenizer over one IDL translation unit."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> IdlSyntaxError:
        return IdlSyntaxError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, n: int = 1) -> str:
        chunk = self.source[self.pos : self.pos + n]
        for ch in chunk:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return chunk

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line = self.line
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise IdlSyntaxError(
                            "unterminated /* comment", start_line
                        )
                    self._advance()
                self._advance(2)
            elif ch == "#" and self.column == 1:
                # Preprocessor line (e.g. #include, #pragma): skipped.
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, column = self.line, self.column
            if self.pos >= len(self.source):
                yield Token("eof", "", line, column)
                return
            ch = self._peek()
            if ch.isalpha() or ch == "_":
                yield self._identifier(line, column)
            elif ch.isdigit() or (
                ch == "." and self._peek(1).isdigit()
            ):
                yield self._number(line, column)
            elif ch == '"':
                yield self._string(line, column)
            elif ch == "'":
                yield self._char(line, column)
            else:
                yield self._punct(line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise self.error("malformed hexadecimal literal")
            while self._is_hex(self._peek()):
                self._advance()
            return Token("int", self.source[start : self.pos], line, column)
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "eE":
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            if not self._peek().isdigit():
                raise self.error("malformed exponent in float literal")
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        return Token("float" if is_float else "int", text, line, column)

    @staticmethod
    def _is_hex(ch: str) -> bool:
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    _ESCAPES = {
        "n": "\n",
        "t": "\t",
        "r": "\r",
        "0": "\0",
        "\\": "\\",
        '"': '"',
        "'": "'",
    }

    def _read_escaped(self, terminator: str) -> str:
        ch = self._peek()
        if not ch or ch == "\n":
            raise self.error(f"unterminated {terminator} literal")
        if ch == "\\":
            self._advance()
            escape = self._peek()
            if escape not in self._ESCAPES:
                raise self.error(f"unknown escape sequence '\\{escape}'")
            self._advance()
            return self._ESCAPES[escape]
        self._advance()
        return ch

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while self._peek() != '"':
            chars.append(self._read_escaped("string"))
        self._advance()  # closing quote
        return Token("string", "".join(chars), line, column)

    def _char(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        value = self._read_escaped("character")
        if self._peek() != "'":
            raise self.error("character literal must contain one character")
        self._advance()
        return Token("char", value, line, column)

    def _punct(self, line: int, column: int) -> Token:
        two = self.source[self.pos : self.pos + 2]
        if two in _PUNCT2:
            self._advance(2)
            return Token("punct", two, line, column)
        ch = self._peek()
        if ch in _PUNCT1:
            self._advance()
            return Token("punct", ch, line, column)
        raise self.error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize a full translation unit (always ends with an eof token)."""
    return list(Lexer(source).tokens())
