"""Collective-alignment checking (the dynamic PD201/PD210).

Every collective invocation must be issued by every computing thread
at the same point in the collective sequence (§2).  When a rank
diverges — a rank-guarded call, a data-dependent branch — the plain
runtime cross-matches collectives of *different* requests and every
rank hangs until the 60 s RTS timeout, with no hint of where the
sequences forked.

The checker turns that hang into an immediate, located error.  On the
application thread, before an invocation enters the engine, each rank
announces a digest ``(collective_index, operation, call_site)`` to
rank 0 over a dedicated communicator (a ``dup`` of the client group's
comm, so checker traffic can never interleave with engine
collectives).  Rank 0 compares the digests and answers with a
verdict; any mismatch — or a rank that never announces within
``PARDIS_SAN_TIMEOUT`` — raises :class:`~repro.san.SanitizerError`
on every participating rank, naming the divergent operation and the
exact source line that issued it.

The exchange is point-to-point, not an ``allgather``, deliberately:
the RTS collectives block *forever* on a missing participant (that is
the bug class under test), while a p2p receive takes a timeout.
"""

from __future__ import annotations

import itertools

from repro.rts.mpi import DeadlockError, Intracomm

from repro.san import (
    Finding,
    SanitizerError,
    bump,
    record,
    timeout as _default_timeout,
)


class CollectiveChecker:
    """Per-runtime alignment checker for one SPMD client group.

    One instance per :class:`~repro.orb.proxy.ClientRuntime`; the
    index counter advances in program order on the application
    thread, mirroring the runtime's collective-sequence counter.
    """

    def __init__(
        self, comm: Intracomm, timeout: float | None = None
    ) -> None:
        self.comm = comm
        self.rank = comm.rank
        self.size = comm.size
        self.timeout = (
            _default_timeout() if timeout is None else timeout
        )
        self._indexes = itertools.count()

    def check(self, operation: str, site: str) -> None:
        """Agree that every rank is entering ``operation`` at this
        collective index; raise on divergence (all ranks raise)."""
        index = next(self._indexes)
        bump("collective_checks")
        if self.rank == 0:
            self._check_root(index, operation, site)
        else:
            self._check_leaf(index, operation, site)

    # -- rank 0: collect digests, judge, publish the verdict ---------------

    def _check_root(
        self, index: int, operation: str, site: str
    ) -> None:
        digests: dict[int, tuple[str, str]] = {
            0: (operation, site)
        }
        missing: list[int] = []
        for source in range(1, self.size):
            try:
                rank, op, their_site = self.comm.recv(
                    source=source, tag=index, timeout=self.timeout
                )
                digests[rank] = (op, their_site)
            except DeadlockError:
                missing.append(source)
        verdict = self._judge(index, digests, missing)
        for source in digests:
            if source != 0:
                self.comm.send(verdict, dest=source, tag=index)
        if verdict is not None:
            self._fail(verdict, operation, index, site)

    def _judge(
        self,
        index: int,
        digests: dict[int, tuple[str, str]],
        missing: list[int],
    ) -> str | None:
        """``None`` when aligned, else the divergence message."""
        if missing:
            announced = ", ".join(
                f"rank {r}: '{op}' at {site}"
                for r, (op, site) in sorted(digests.items())
            )
            return (
                f"collective #{index} divergence: rank(s) "
                f"{', '.join(map(str, missing))} never announced a "
                f"collective within {self.timeout:g}s while "
                f"{announced} — a rank-dependent path skipped or "
                f"reordered a collective invocation"
            )
        ops = {op for op, _site in digests.values()}
        if len(ops) > 1:
            announced = "; ".join(
                f"rank {r} issued '{op}' at {site}"
                for r, (op, site) in sorted(digests.items())
            )
            return (
                f"collective #{index} divergence: the ranks are "
                f"issuing different operations — {announced}"
            )
        return None

    # -- other ranks: announce, await the verdict --------------------------

    def _check_leaf(
        self, index: int, operation: str, site: str
    ) -> None:
        self.comm.send(
            (self.rank, operation, site), dest=0, tag=index
        )
        try:
            verdict = self.comm.recv(
                source=0, tag=index, timeout=self.timeout
            )
        except DeadlockError:
            # Rank 0 itself never reached this collective (it took
            # the divergent path, or aborted on its own finding).
            verdict = (
                f"collective #{index} divergence: rank 0 never "
                f"judged '{operation}' within {self.timeout:g}s — "
                f"it is not issuing a collective at this point in "
                f"the sequence"
            )
        if verdict is not None:
            self._fail(verdict, operation, index, site)

    def _fail(
        self, message: str, operation: str, index: int, site: str
    ) -> None:
        record(
            Finding(
                detector="collective",
                message=message,
                site=site,
                extra={"operation": operation, "index": index},
            )
        )
        raise SanitizerError(message)
