"""Buffer-view escape detection (the zero-copy pool hazard).

The socket fabric's reader loop receives small frames into pooled
``bytearray`` buffers; payload views must be copied out before the
buffer is recycled (``copy_payload=True`` on dispatch).  A decoder
that holds a zero-copy ``memoryview`` past that point reads whatever
the *next* frame deposits — silent data corruption with no crash.

The guard exploits CPython's buffer-export protocol: a ``bytearray``
with live ``memoryview`` exports refuses size changes with
``BufferError``.  On every recycle the guard attempts a size-changing
no-op; failure means a view escaped — the buffer is reported and
*leaked* (never pooled again), so the stale view at least keeps
reading stable bytes.  Clean buffers are poisoned with ``0xDD``
before reuse, so any later use-after-recycle read that does slip
through yields an obviously-wrong pattern instead of plausible data.
"""

from __future__ import annotations

from repro.san import Finding, bump, record

#: The poison pattern: distinctive, and invalid as a frame header.
POISON_BYTE = 0xDD


class BufferGuard:
    """Recycle-time checks for one connection's buffer pool."""

    __slots__ = ("_epoch",)

    def __init__(self) -> None:
        self._epoch = 0  # recycles seen (the pool's logical clock)

    @property
    def epoch(self) -> int:
        return self._epoch

    def check_and_poison(self, buf: bytearray) -> bool:
        """May ``buf`` rejoin the pool?  ``False`` reports an escaped
        view and quarantines the buffer."""
        self._epoch += 1
        try:
            # A size-changing no-op: raises BufferError iff a
            # memoryview export is still alive.
            buf.append(0)
            del buf[-1:]
        except BufferError:
            record(
                Finding(
                    detector="buffer",
                    message=(
                        f"a memoryview into a pooled receive "
                        f"buffer ({len(buf)} bytes) is still alive "
                        f"at recycle (pool epoch {self._epoch}): a "
                        f"zero-copy payload view escaped its "
                        f"frame's lifetime and would read the next "
                        f"frame's bytes; the buffer is quarantined"
                    ),
                    extra={
                        "epoch": self._epoch,
                        "size": len(buf),
                    },
                )
            )
            return False
        # Poison so any un-exported stale reference that dodged the
        # export check reads 0xDD garbage, not the previous payload.
        buf[:] = bytes([POISON_BYTE]) * len(buf)
        bump("buffers_poisoned")
        return True
