"""Future-lifecycle tracking (the dynamic PD202).

The static rule only sees futures that are *syntactically* dropped.
At run time the hazard is broader: a future stored, passed around,
and then garbage-collected without anyone observing its outcome —
which silently swallows the invocation's exception, exactly the
error-hiding §4 warns about.

When the sanitizer is on, every future minted by the invocation
worker gets a :class:`_FutureState` and a ``weakref.finalize`` hook.
The :class:`~repro.rts.futures.Future` accessors mark the state as
the program consumes the future; at finalization an unconsumed result
or a never-retrieved exception becomes a registry finding naming the
call site that created the future.  Pure observation: no timing, no
blocking, nothing on the resolve path beyond one attribute store.
"""

from __future__ import annotations

import weakref
from typing import Any

from repro.san import Finding, bump, record


class _FutureState:
    """What the sanitizer remembers about one tracked future."""

    __slots__ = (
        "label",
        "site",
        "consumed",
        "resolved",
        "failed",
        "exc_retrieved",
        "exc_repr",
    )

    def __init__(self, label: str, site: str) -> None:
        self.label = label
        self.site = site
        self.consumed = False  # any blocking read completed
        self.resolved = False
        self.failed = False  # resolved with an exception
        self.exc_retrieved = False  # the exception was observed
        self.exc_repr = ""


def track(future: Any, label: str, site: str) -> _FutureState:
    """Attach lifecycle tracking to ``future``; report at GC."""
    state = _FutureState(label, site)
    future._san_state = state
    # finalize holds the *state*, never the future: tracking must not
    # extend the future's lifetime (that would mask the leak).
    weakref.finalize(future, _finalized, state)
    bump("futures_tracked")
    return state


def _finalized(state: _FutureState) -> None:
    if state.failed and not state.exc_retrieved:
        record(
            Finding(
                detector="future",
                message=(
                    f"future '{state.label}' was finalized with a "
                    f"never-retrieved exception "
                    f"({state.exc_repr}): the invocation failed "
                    f"and nothing observed it"
                ),
                site=state.site,
                extra={"label": state.label, "kind": "exception-leak"},
            )
        )
    elif not state.consumed:
        record(
            Finding(
                detector="future",
                message=(
                    f"future '{state.label}' was finalized without "
                    f"its result ever being consumed: the program "
                    f"cannot know whether the invocation completed"
                ),
                site=state.site,
                extra={"label": state.label, "kind": "never-consumed"},
            )
        )
