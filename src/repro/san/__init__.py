"""repro.san — the PARDIS runtime sanitizer.

The static lints (:mod:`repro.lint`) prove what they can from the
source; this package verifies the same SPMD invariants *dynamically*,
on the paths the analyzer cannot see (data-dependent divergence,
suppressed diagnostics, code built at run time).  Three detectors:

* **collective alignment** (:mod:`repro.san.collective`) — before a
  collective invocation enters the engine, the ranks agree a digest
  of ``(operation, collective_index)``; a divergent rank produces an
  immediate :class:`SanitizerError` naming both operations and call
  sites instead of the silent cross-matched deadlock of §2.
* **future lifecycle** (:mod:`repro.san.futures`) — the dynamic
  counterpart of lint rule PD202: a future finalized with a
  never-retrieved exception, or whose result was never consumed, is
  reported with the call site that created it.
* **buffer-view escapes** (:mod:`repro.san.buffers`) — pooled receive
  buffers are poisoned on recycle and a live ``memoryview`` that
  outlasts its pool epoch (the zero-copy hazard) is flagged instead
  of silently yielding another frame's bytes.

Everything is opt-in: set ``PARDIS_SAN=1`` in the environment or pass
``ORB(sanitize=True)``.  Findings accumulate in a process-wide
registry surfaced through ``orb.stats()["san"]`` and the trace
metrics registry; ``PARDIS_SAN_LOG=<path>`` additionally appends one
JSON line per finding (how CI asserts a zero-finding run).
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Finding",
    "SanitizerError",
    "call_site",
    "clear_findings",
    "enabled",
    "findings",
    "record",
    "stats",
    "timeout",
]

_TRUE = frozenset(("1", "true", "yes", "on"))


class SanitizerError(RuntimeError):
    """A sanitizer detector proved an invariant violation.

    Raised synchronously on the offending thread (collective
    divergence); lifecycle detectors only record findings.
    """


@dataclass
class Finding:
    """One detector hit."""

    detector: str  # 'collective' | 'future' | 'buffer'
    message: str
    site: str = ""  # 'file:line' of the application call site
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "message": self.message,
            "site": self.site,
            **({"extra": dict(self.extra)} if self.extra else {}),
        }

    def render(self) -> str:
        where = f" at {self.site}" if self.site else ""
        return f"[san:{self.detector}]{where}: {self.message}"


_lock = threading.Lock()
_findings: list[Finding] = []
_counters: dict[str, int] = {}


def enabled() -> bool:
    """Is the sanitizer globally enabled (``PARDIS_SAN=1``)?"""
    return os.environ.get("PARDIS_SAN", "").lower() in _TRUE


def timeout() -> float:
    """How long alignment checks wait for lagging ranks before
    declaring divergence (``PARDIS_SAN_TIMEOUT`` seconds, default
    20).  Bounded so a rank that *skipped* a collective produces a
    diagnostic, not the very hang the sanitizer exists to prevent."""
    try:
        return float(os.environ.get("PARDIS_SAN_TIMEOUT", "20"))
    except ValueError:
        return 20.0


def record(finding: Finding) -> Finding:
    """Register a finding (thread-safe) and mirror it to the
    ``PARDIS_SAN_LOG`` file when configured."""
    with _lock:
        _findings.append(finding)
        _counters[finding.detector] = (
            _counters.get(finding.detector, 0) + 1
        )
    log_path = os.environ.get("PARDIS_SAN_LOG")
    if log_path:
        try:
            with open(log_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(finding.to_dict()) + "\n")
        except OSError:
            pass  # never let reporting break the program
    return finding


def bump(counter: str, by: int = 1) -> None:
    """Increment a sanitizer activity counter (checks performed,
    buffers poisoned, futures tracked — the denominator that makes a
    zero-finding run meaningful)."""
    with _lock:
        _counters[counter] = _counters.get(counter, 0) + by


def findings() -> list[Finding]:
    with _lock:
        return list(_findings)


def clear_findings() -> list[Finding]:
    """Drain the registry (tests provoke findings on purpose and must
    not leak them into the process-wide zero-finding assertion)."""
    global _findings
    with _lock:
        drained, _findings = _findings, []
        return drained


def stats() -> dict[str, Any]:
    """The ``orb.stats()["san"]`` / metrics-source snapshot."""
    with _lock:
        return {
            "enabled": enabled(),
            "counters": dict(sorted(_counters.items())),
            "findings": [f.to_dict() for f in _findings],
        }


def call_site(skip_prefix: str = "repro.") -> str:
    """The nearest stack frame outside the ORB internals, as
    ``file:line`` — the application statement a finding points at.

    Skips ``repro.*`` frames and IDL-generated stub frames (their
    code objects carry ``<idl:...>`` filenames): both are plumbing
    between the application call and the detector.
    """
    frame = sys._getframe(1)
    while frame is not None:
        module = frame.f_globals.get("__name__", "")
        filename = frame.f_code.co_filename
        if not module.startswith(skip_prefix) and not (
            filename.startswith("<idl:")
        ):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


def _exit_summary() -> None:
    if not enabled():
        return
    found = findings()
    if not found:
        return
    print(
        f"pardis-san: {len(found)} finding(s)", file=sys.stderr
    )
    for finding in found:
        print(f"  {finding.render()}", file=sys.stderr)


atexit.register(_exit_summary)
