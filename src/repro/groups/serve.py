"""Server-side replication: serve N replicas behind one group name.

:func:`serve_replicated` is the group counterpart of
:meth:`repro.core.orb.ORB.serve`: it activates ``replicas``
independent servant groups — each a full SPMD object served as
``name#<rid>`` — and registers the membership with the group
directory of a :class:`~repro.groups.shard.ShardedNaming`.  The
returned :class:`ReplicatedGroup` is the operator's handle: kill a
replica (crash semantics, for tests and benchmarks), retire one
gracefully, push health readings, shut the whole group down.

Replication here is of the *service*, not of state: replicas are
independent servants (think stateless or externally synchronized
workers), which is exactly the PARDIS-era object-group model this
layer reproduces.  What the subsystem adds is availability — clients
fail over collectively and replay through the reply cache — not state
machine replication.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.groups import stats as groups_stats
from repro.groups.shard import ShardedNaming
from repro.orb.naming import NamingError


def replica_name(name: str, replica_id: int) -> str:
    """The naming-domain key of one replica (``name#rid``)."""
    return f"{name}#{replica_id}"


class ReplicatedGroup:
    """An activated replicated object group (server-side handle)."""

    def __init__(
        self, orb: Any, name: str, naming: ShardedNaming
    ) -> None:
        self.orb = orb
        self.name = name
        self.naming = naming
        #: replica id -> the replica's ServantGroup.
        self.members: dict[int, Any] = {}
        self._shut = False

    @property
    def replica_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.members))

    def kill(self, replica_id: int) -> None:
        """Crash one replica: abrupt port close, naming entry left
        dangling — exactly what a dead process looks like.  Clients
        notice through transport errors and fail over."""
        group = self.members.get(replica_id)
        if group is None:
            raise NamingError(
                f"group '{self.name}' has no replica {replica_id}"
            )
        group.kill()

    def shutdown_replica(self, replica_id: int) -> None:
        """Retire one replica gracefully: drain, unbind, and remove it
        from the group directory (no epoch bump — planned removal is
        not a failure)."""
        group = self.members.pop(replica_id, None)
        if group is None:
            raise NamingError(
                f"group '{self.name}' has no replica {replica_id}"
            )
        self.naming.remove_member(self.name, replica_id)
        group.shutdown()

    def report_health(self, loads: dict[int, float] | None = None) -> None:
        """Push per-replica load readings to the group directory.

        ``loads`` maps replica id to a load figure; ``None`` derives
        one per live replica from its reply-cache occupancy (a cheap
        stand-in for queue depth in this in-process reproduction).
        """
        if loads is None:
            loads = {}
            for rid, group in self.members.items():
                cache = getattr(group, "reply_cache", None)
                stats = cache.stats() if cache is not None else {}
                loads[rid] = float(stats.get("entries", 0))
        for rid, load in loads.items():
            self.naming.report_health(self.name, rid, load)

    def shutdown(self) -> None:
        """Shut every replica down and unbind the group."""
        if self._shut:
            return
        self._shut = True
        for group in self.members.values():
            group.shutdown()
        self.members.clear()
        try:
            self.naming.unbind_group(self.name)
        except NamingError:
            pass


def serve_replicated(
    orb: Any,
    name: str,
    servant_factory: Callable[..., Any],
    *,
    replicas: int = 3,
    nthreads: int = 1,
    reply_cache_bytes: int = 1 << 20,
    **serve_kwargs: Any,
) -> ReplicatedGroup:
    """Activate ``replicas`` servants of one object behind one group
    name and register the group with the sharded naming directory.

    ``orb.naming`` must be a :class:`~repro.groups.shard.ShardedNaming`
    (only the router keeps group membership and health epochs; the
    flat :class:`~repro.orb.naming.NamingService` has no directory to
    put them in).  Each replica is a normal ``orb.serve`` activation
    under ``name#<rid>`` — visible in the flat namespace too — and the
    reply cache defaults *on* (1 MiB per replica): failover replays
    requests, and a cache-less replica would re-execute them.
    """
    naming = orb.naming
    if not isinstance(naming, ShardedNaming):
        raise TypeError(
            "serve_replicated needs an ORB whose naming is a "
            f"ShardedNaming router, not {type(naming).__name__}; "
            "pass naming=ShardedNaming(...) when creating the ORB"
        )
    if replicas < 1:
        raise ValueError("a replicated group needs at least one replica")
    handle = ReplicatedGroup(orb, name, naming)
    try:
        for rid in range(replicas):
            handle.members[rid] = orb.serve(
                replica_name(name, rid),
                servant_factory,
                nthreads,
                reply_cache_bytes=reply_cache_bytes,
                **serve_kwargs,
            )
        naming.bind_group(
            name,
            handle.members[0].reference.repo_id,
            {
                rid: group.reference
                for rid, group in handle.members.items()
            },
        )
    except Exception:
        for group in handle.members.values():
            group.shutdown()
        raise
    return handle
