"""Replicated object groups with sharded naming and client failover.

The availability layer of the reproduction: N replica servants behind
one logical name, a consistent-hash **sharded naming service** whose
router keeps group membership and health epochs, and **client-side
replica selection** with collective failover.

- :mod:`repro.groups.hashring` — seeded consistent hashing (the shard
  partition function).
- :mod:`repro.groups.shard` — :class:`ShardedNaming`: a NamingService
  drop-in routing the flat namespace across shards, plus the group
  directory (membership, health epochs, load reports).
- :mod:`repro.groups.select` — :class:`GroupView` and the
  deterministic selection policies (:class:`RoundRobin`,
  :class:`LeastLoaded`).
- :mod:`repro.groups.failover` — per-binding failover state, the
  collective failover vote, and :class:`FailoverExhausted`.
- :mod:`repro.groups.serve` — :func:`serve_replicated` /
  :class:`ReplicatedGroup`, the server-side activation handle.
- :mod:`repro.groups.stats` — the ``groups`` section of
  ``orb.stats()``.

The client half lives in the proxy: binding to a group name yields a
normal proxy pinned to one replica; when an invocation exhausts its
:class:`~repro.ft.policy.FtPolicy` against that replica, all ranks
vote (:func:`~repro.groups.failover.agree_failover`), flip to the
same sibling, and replay — the reply cache makes the replay
effectively-once.  See ``docs/architecture.md`` ("Replicated object
groups") for the walkthrough.
"""

from repro.groups.failover import (
    FailoverExhausted,
    GroupBinding,
    agree_failover,
    failover_worthy,
)
from repro.groups.hashring import HashRing, stable_hash
from repro.groups.select import (
    GroupView,
    LeastLoaded,
    RoundRobin,
    SelectionError,
    SelectionPolicy,
    policy_for,
)
from repro.groups.serve import (
    ReplicatedGroup,
    replica_name,
    serve_replicated,
)
from repro.groups.shard import ShardedNaming

# NOTE: the snapshot *function* lives at ``repro.groups.stats.stats``;
# re-exporting it here would shadow the ``stats`` submodule on the
# package object, so only the class is lifted.
from repro.groups.stats import GroupsStats

__all__ = [
    "FailoverExhausted",
    "GroupBinding",
    "GroupView",
    "GroupsStats",
    "HashRing",
    "LeastLoaded",
    "ReplicatedGroup",
    "RoundRobin",
    "SelectionError",
    "SelectionPolicy",
    "ShardedNaming",
    "agree_failover",
    "failover_worthy",
    "policy_for",
    "replica_name",
    "serve_replicated",
    "stable_hash",
]
