"""Client-side failover state for replicated group bindings.

A :class:`GroupBinding` is the per-proxy (per client binding) record
of *which replica this binding currently targets* and how it got
there.  The proxy consults it on every launch and drives it through
:meth:`GroupBinding.fail_over` when an invocation against the current
replica dies with a failover-worthy error.

The SPMD discipline carries over from :mod:`repro.ft`: on a collective
binding every rank holds an identical binding (same view, same bind
token, same policy), the failing invocation already raised the *same*
group-agreed exception at the same collective index on every rank
(that is what the ft agreement vote guarantees), and the failover
decision itself is re-confirmed with one more collective —
:func:`agree_failover` — before any rank flips.  After the vote the
new replica is a pure function of shared state, so all ranks move
together and the replayed request keeps the collective sequence
aligned.

Replays are safe because of the PR 4 reply cache: the retried request
keeps its request id, so a replica that already executed it answers
from cache instead of re-executing (effectively-once).
"""

from __future__ import annotations

import threading
from typing import Any

from repro.ft.policy import (
    DeadlineExceeded,
    FtPolicy,
    InvocationRetriesExhausted,
)
from repro.groups import stats as groups_stats
from repro.groups.select import GroupView, SelectionError, SelectionPolicy
from repro.orb.operation import RemoteError
from repro.orb.reference import ObjectReference
from repro.orb.transport import TransportError


class FailoverExhausted(RemoteError):
    """A group invocation failed on every replica it was allowed to try.

    Raised with identical arguments on every rank of a collective
    binding (the per-replica failures were group-agreed, and the
    replica walk is deterministic).
    """

    def __init__(
        self,
        operation: str,
        group: str,
        *,
        replicas_tried: tuple[int, ...] = (),
        collective_index: int = 0,
        detail: str = "",
    ) -> None:
        tried = ", ".join(str(r) for r in replicas_tried) or "none"
        message = (
            f"invocation '{operation}' #{collective_index} on group "
            f"'{group}' failed over past replicas [{tried}]"
        )
        if detail:
            message = f"{message}; last failure: {detail}"
        super().__init__(message, category="COMM_FAILURE")
        self.operation = operation
        self.group = group
        self.replicas_tried = replicas_tried
        self.collective_index = collective_index


def failover_worthy(exc: BaseException, policy: FtPolicy | None) -> bool:
    """Should a group binding try another replica for this failure?

    Only with a retrying policy in force: failover is a *retry at
    group scope*, and without a policy the binding fails fast exactly
    like a singleton one (lint rule PD213 flags that configuration).
    Worthy failures are the ones that say "this replica, not this
    request, is the problem": exhausted transport-level retries,
    deadline expiry, raw transport errors, and retryable remote
    system exceptions.  User exceptions and non-retryable categories
    propagate untouched — a servant raising ``ValueError`` on replica
    1 would raise it on replica 2 too.
    """
    if policy is None:
        return False
    if isinstance(exc, (InvocationRetriesExhausted, DeadlineExceeded)):
        return True
    if isinstance(exc, RemoteError):
        return exc.category in policy.retryable_categories
    return isinstance(exc, TransportError)


def agree_failover(
    rts: Any, failed_replica: int, token: int
) -> tuple[int, int]:
    """The collective failover vote: all ranks confirm they are about
    to abandon the same replica with the same failover token.

    Each rank contributes its local ``(failed replica, token)``; the
    canonical decision is rank 0's pair (all pairs are identical by
    construction — the vote is the barrier that *proves* it before any
    rank flips, and catches divergence as a loud error instead of a
    hung collective three invocations later).
    """
    if rts is None:
        return failed_replica, token
    votes = rts.allgather((failed_replica, token))
    canonical = votes[0]
    if any(vote != canonical for vote in votes):
        raise RuntimeError(
            f"group failover diverged across ranks: votes {votes!r}"
        )
    return canonical


class GroupBinding:
    """One client binding's replica-targeting state (thread-safe).

    ``token`` seeds the selection policy: the router's bind token
    spreads initial placements across bindings; each failover advances
    it so the walk continues past the dead replica deterministically.
    """

    def __init__(
        self,
        view: GroupView,
        selection: SelectionPolicy,
        bind_token: int,
    ) -> None:
        self._lock = threading.Lock()
        self.view = view
        self.selection = selection
        self.token = bind_token
        self.replica_id = selection.choose(view, bind_token)
        #: ``(token, failed replica, new replica)`` per flip — ranks of
        #: a collective binding must end up with identical histories
        #: (the acceptance tests assert exactly that).
        self.history: list[tuple[int, int, int]] = []
        groups_stats.GLOBAL.bump("selections")

    @property
    def group_name(self) -> str:
        return self.view.name

    def current_ref(self) -> ObjectReference:
        with self._lock:
            return self.view.ref(self.replica_id)

    def current_replica(self) -> int:
        with self._lock:
            return self.replica_id

    def replicas_tried(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(f for _, f, _n in self.history)

    def budget(self, policy: FtPolicy) -> int:
        """How many flips this binding may still make under ``policy``
        (default budget: every sibling of the first replica, once)."""
        limit = policy.max_failovers
        if limit is None:
            limit = max(len(self.view.group.members) - 1, 0)
        with self._lock:
            return max(limit - len(self.history), 0)

    def fail_over(self, failed_replica: int) -> tuple[int, ObjectReference]:
        """Mark ``failed_replica`` down in the local view and select
        the replacement: the next live replica at the advanced token.

        Raises :class:`~repro.groups.select.SelectionError` when no
        live replica remains.  Call only after :func:`agree_failover`
        confirmed the flip collectively.
        """
        with self._lock:
            self.view = self.view.without(failed_replica)
            self.token += 1
            replacement = self.selection.choose(self.view, self.token)
            self.history.append(
                (self.token, failed_replica, replacement)
            )
            self.replica_id = replacement
        groups_stats.GLOBAL.bump("failovers")
        groups_stats.GLOBAL.bump("selections")
        return replacement, self.view.ref(replacement)

    def exhausted(
        self,
        operation: str,
        *,
        collective_index: int = 0,
        detail: str = "",
    ) -> FailoverExhausted:
        groups_stats.GLOBAL.bump("failovers_exhausted")
        return FailoverExhausted(
            operation,
            self.group_name,
            replicas_tried=self.replicas_tried() + (self.current_replica(),),
            collective_index=collective_index,
            detail=detail,
        )

    def __repr__(self) -> str:
        return (
            f"<GroupBinding '{self.group_name}' replica "
            f"{self.replica_id} token {self.token} "
            f"{len(self.history)} failovers>"
        )


__all__ = [
    "FailoverExhausted",
    "GroupBinding",
    "GroupView",
    "SelectionError",
    "agree_failover",
    "failover_worthy",
]
