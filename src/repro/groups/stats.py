"""Process-wide counters for the groups subsystem.

Mirrors the shape of :func:`repro.san.stats` / ``rts_stats``: one
module-level snapshot function the ORB folds into ``orb.stats()`` as
the ``groups`` section (deep-copied at the snapshot boundary with the
rest, so callers can mutate what they get back).
"""

from __future__ import annotations

import threading
from typing import Any

_FIELDS = (
    "binds",
    "selections",
    "failovers",
    "failovers_exhausted",
    "marked_down",
    "epoch_bumps",
    "health_reports",
)


class GroupsStats:
    """Thread-safe counters plus a per-group membership board."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(_FIELDS, 0)
        #: group name -> {"replicas": int, "down": int, "epoch": int}
        self._groups: dict[str, dict[str, int]] = {}

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            self._counts[field] += by

    def note_group(
        self, name: str, *, replicas: int, down: int, epoch: int
    ) -> None:
        with self._lock:
            self._groups[name] = {
                "replicas": replicas,
                "down": down,
                "epoch": epoch,
            }

    def forget_group(self, name: str) -> None:
        with self._lock:
            self._groups.pop(name, None)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            snap: dict[str, Any] = dict(self._counts)
            snap["groups"] = {
                name: dict(board) for name, board in self._groups.items()
            }
        return snap

    def reset(self) -> None:
        """Test hook: back to a fresh ledger."""
        with self._lock:
            self._counts = dict.fromkeys(_FIELDS, 0)
            self._groups = {}


#: The process-wide ledger behind ``orb.stats()["groups"]``.
GLOBAL = GroupsStats()


def stats() -> dict[str, Any]:
    """The ``groups`` section of ``orb.stats()``."""
    return GLOBAL.snapshot()
