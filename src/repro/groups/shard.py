"""A sharded naming service with a group directory.

``ShardedNaming`` partitions the flat PARDIS naming domain across N
:class:`~repro.orb.naming.NamingService` shards with a consistent-hash
ring (see :mod:`repro.groups.hashring`) and layers the *group
directory* on top: per group it keeps the replica membership, a
monotonic **health epoch** (bumped every time a replica is marked
down, so a client can tell whether its view predates a failure), and
the latest per-replica load reports that feed the least-loaded
selection policy.

It is a drop-in for ``NamingService`` everywhere the ORB takes a
``naming=`` argument — ``bind``/``rebind``/``resolve``/``unbind``/
``names`` route to the owning shard by name — so singleton servants
and replicated groups share one namespace.
"""

from __future__ import annotations

import threading

from repro.groups import stats as groups_stats
from repro.groups.hashring import HashRing
from repro.orb.naming import NamingError, NamingService
from repro.orb.reference import GroupReference, ObjectReference


class _GroupEntry:
    """One group's row in a shard's directory (guarded by shard lock)."""

    def __init__(self, repo_id: str) -> None:
        self.repo_id = repo_id
        self.members: dict[int, ObjectReference] = {}
        self.down: set[int] = set()
        self.loads: dict[int, float] = {}
        self.epoch = 0
        #: Round-robin spread across *binds* (not invocations): each
        #: bind draws the next token so successive clients start on
        #: successive replicas.
        self.bind_tokens = 0

    def reference(self, name: str) -> GroupReference:
        members = tuple(
            (rid, self.members[rid])
            for rid in sorted(self.members)
            if rid not in self.down
        )
        if not members:
            raise NamingError(
                f"group '{name}' has no live replicas"
            )
        loads = tuple(
            (rid, self.loads[rid])
            for rid in sorted(self.loads)
            if rid in self.members and rid not in self.down
        )
        return GroupReference(
            group_name=name,
            repo_id=self.repo_id,
            epoch=self.epoch,
            members=members,
            loads=loads,
        )


class _Shard:
    """One partition: a plain NamingService plus a group directory."""

    def __init__(self) -> None:
        self.naming = NamingService()
        self.lock = threading.Lock()
        self.groups: dict[str, _GroupEntry] = {}


class ShardedNaming:
    """A NamingService-compatible router over consistent-hash shards."""

    def __init__(self, shards: int = 4, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError("a sharded naming needs at least one shard")
        self._shard_names = [f"shard-{i}" for i in range(shards)]
        self._ring = HashRing(self._shard_names, vnodes=vnodes)
        self._shards = {name: _Shard() for name in self._shard_names}

    # -- routing -------------------------------------------------------

    @property
    def nshards(self) -> int:
        return len(self._shards)

    def shard_for(self, name: str) -> str:
        """Which shard owns ``name`` (diagnostics / tests)."""
        return self._ring.node_for(name)

    def _shard(self, name: str) -> _Shard:
        return self._shards[self._ring.node_for(name)]

    # -- flat NamingService surface ------------------------------------

    def bind(self, name: str, ref, host: str = "") -> None:
        self._shard(name).naming.bind(name, ref, host)

    def rebind(self, name: str, ref, host: str = "") -> None:
        self._shard(name).naming.rebind(name, ref, host)

    def resolve(self, name: str, host: str | None = None):
        return self._shard(name).naming.resolve(name, host)

    def unbind(self, name: str, host: str = "") -> None:
        self._shard(name).naming.unbind(name, host)

    def names(self) -> list[tuple[str, str]]:
        """All registrations across every shard, sorted (the ring is
        an implementation detail; the namespace reads as one)."""
        out: list[tuple[str, str]] = []
        for shard in self._shards.values():
            out.extend(shard.naming.names())
        return sorted(out)

    # -- group directory -----------------------------------------------

    def bind_group(
        self,
        name: str,
        repo_id: str,
        members: dict[int, ObjectReference],
    ) -> None:
        """Register a replicated group; duplicate names are an error."""
        if not name:
            raise NamingError("group name cannot be empty")
        if not members:
            raise NamingError(
                f"group '{name}' needs at least one replica"
            )
        shard = self._shard(name)
        with shard.lock:
            if name in shard.groups:
                raise NamingError(
                    f"a group is already bound as '{name}'"
                )
            entry = _GroupEntry(repo_id)
            entry.members = dict(members)
            shard.groups[name] = entry
        self._note(name)

    def unbind_group(self, name: str) -> None:
        shard = self._shard(name)
        with shard.lock:
            if shard.groups.pop(name, None) is None:
                raise NamingError(f"no group bound as '{name}'")
        groups_stats.GLOBAL.forget_group(name)

    def resolve_group(self, name: str) -> GroupReference:
        """The group's current membership view (live members only),
        stamped with its health epoch."""
        shard = self._shard(name)
        with shard.lock:
            entry = shard.groups.get(name)
            if entry is None:
                raise NamingError(f"no group bound as '{name}'")
            return entry.reference(name)

    def is_group(self, name: str) -> bool:
        shard = self._shard(name)
        with shard.lock:
            return name in shard.groups

    def group_names(self) -> list[str]:
        out = []
        for shard in self._shards.values():
            with shard.lock:
                out.extend(shard.groups)
        return sorted(out)

    def add_member(
        self, name: str, replica_id: int, ref: ObjectReference
    ) -> None:
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            if replica_id in entry.members:
                raise NamingError(
                    f"group '{name}' already has replica {replica_id}"
                )
            entry.members[replica_id] = ref
            # A re-added id sheds any stale down mark from a past life.
            entry.down.discard(replica_id)
        self._note(name)

    def remove_member(self, name: str, replica_id: int) -> None:
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            if entry.members.pop(replica_id, None) is None:
                raise NamingError(
                    f"group '{name}' has no replica {replica_id}"
                )
            entry.down.discard(replica_id)
            entry.loads.pop(replica_id, None)
        self._note(name)

    def mark_down(self, name: str, replica_id: int) -> int:
        """Record a replica failure and bump the health epoch.

        Idempotent per replica: concurrent clients agreeing on the
        same failure bump the epoch once.  Returns the current epoch.
        """
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            if replica_id not in entry.members:
                raise NamingError(
                    f"group '{name}' has no replica {replica_id}"
                )
            if replica_id not in entry.down:
                entry.down.add(replica_id)
                entry.epoch += 1
                bumped = True
            else:
                bumped = False
            epoch = entry.epoch
        if bumped:
            groups_stats.GLOBAL.bump("marked_down")
            groups_stats.GLOBAL.bump("epoch_bumps")
        self._note(name)
        return epoch

    def report_health(
        self, name: str, replica_id: int, load: float
    ) -> None:
        """A replica's periodic load reading (``orb.stats()``-derived);
        feeds the least-loaded selection policy at resolve time."""
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            if replica_id not in entry.members:
                raise NamingError(
                    f"group '{name}' has no replica {replica_id}"
                )
            entry.loads[replica_id] = float(load)
        groups_stats.GLOBAL.bump("health_reports")

    def epoch(self, name: str) -> int:
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            return entry.epoch

    def next_bind_token(self, name: str) -> int:
        """Draw the group's next bind token (round-robin spread across
        client bindings)."""
        entry = self._entry(name)
        shard = self._shard(name)
        with shard.lock:
            token = entry.bind_tokens
            entry.bind_tokens += 1
        return token

    # -- internals -----------------------------------------------------

    def _entry(self, name: str) -> _GroupEntry:
        shard = self._shard(name)
        with shard.lock:
            entry = shard.groups.get(name)
        if entry is None:
            raise NamingError(f"no group bound as '{name}'")
        return entry

    def _note(self, name: str) -> None:
        shard = self._shard(name)
        with shard.lock:
            entry = shard.groups.get(name)
            if entry is None:
                return
            groups_stats.GLOBAL.note_group(
                name,
                replicas=len(entry.members),
                down=len(entry.down),
                epoch=entry.epoch,
            )
