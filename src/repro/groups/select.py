"""Replica selection: the client-side load-balancing half of groups.

A :class:`GroupView` is one client binding's picture of a replicated
group — the :class:`~repro.orb.reference.GroupReference` it resolved
(membership, health epoch, load readings) plus the replicas it has
since marked down.  Selection policies are **pure functions of the
view and a token**: every rank of a collective binding holds an
identical view (rank 0 resolves, the group reference rides the bind
broadcast) and draws identical tokens (bind token from the router,
failover count per binding), so all ranks select the *same* replica
without communicating — the same determinism discipline as
:class:`~repro.ft.policy.FtPolicy` decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.orb.reference import GroupReference, ObjectReference


@dataclass(frozen=True)
class GroupView:
    """An immutable client-side snapshot of a replicated group."""

    group: GroupReference
    #: Replicas this binding has agreed are dead (health-epoch local
    #: knowledge; a fresh resolve starts clean at a newer epoch).
    down: frozenset[int] = field(default_factory=frozenset)

    @property
    def name(self) -> str:
        return self.group.group_name

    @property
    def epoch(self) -> int:
        return self.group.epoch

    def alive(self) -> tuple[int, ...]:
        """Replica ids not marked down, ascending (the deterministic
        candidate order every policy draws from)."""
        return tuple(
            rid
            for rid in sorted(self.group.replica_ids)
            if rid not in self.down
        )

    def ref(self, replica_id: int) -> ObjectReference:
        return self.group.member(replica_id)

    def without(self, replica_id: int) -> "GroupView":
        return replace(self, down=self.down | {replica_id})

    def load(self, replica_id: int) -> float | None:
        return self.group.load(replica_id)


class SelectionError(RuntimeError):
    """No replica is selectable (every member is marked down)."""


class SelectionPolicy:
    """Base class: a deterministic ``(view, token) -> replica id``."""

    name: str = ""

    def choose(self, view: GroupView, token: int) -> int:
        raise NotImplementedError

    def _require_alive(self, view: GroupView) -> tuple[int, ...]:
        alive = view.alive()
        if not alive:
            raise SelectionError(
                f"group '{view.name}' has no live replicas "
                f"({len(view.group.members)} members, all marked down)"
            )
        return alive


class RoundRobin(SelectionPolicy):
    """Rotate through the live membership by token.

    Bind tokens come from the router's per-group counter, so
    successive bindings land on successive replicas; failover tokens
    advance per flip, so repeated failovers walk the survivors.
    """

    name = "round-robin"

    def choose(self, view: GroupView, token: int) -> int:
        alive = self._require_alive(view)
        return alive[token % len(alive)]


class LeastLoaded(SelectionPolicy):
    """Pick the live replica with the lowest reported load.

    Loads are the ``orb.stats()``-style health readings replicas
    pushed to the router, carried in the group reference at resolve
    time.  Replicas that never reported count as load 0 (an idle
    newcomer should attract work); ties break by replica id, then the
    token rotates among the tied set so equally idle replicas still
    share arrivals.
    """

    name = "least-loaded"

    def choose(self, view: GroupView, token: int) -> int:
        alive = self._require_alive(view)
        loads = {rid: view.load(rid) or 0.0 for rid in alive}
        best = min(loads.values())
        tied = tuple(rid for rid in alive if loads[rid] == best)
        return tied[token % len(tied)]


_POLICIES = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
}


def policy_for(selection: Any) -> SelectionPolicy:
    """Resolve a ``selection=`` argument: a policy name
    (``"round-robin"`` / ``"least-loaded"``) or an instance."""
    if isinstance(selection, SelectionPolicy):
        return selection
    try:
        return _POLICIES[selection]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown selection policy {selection!r}; expected "
            f"{', '.join(sorted(_POLICIES))} or a SelectionPolicy"
        ) from None
