"""Consistent hashing for the sharded naming service.

The name space is partitioned across shards with a classic
consistent-hash ring: each shard projects ``vnodes`` virtual points
onto a 64-bit circle and a name is owned by the first point at or
after its own hash.  Adding or removing one shard then remaps only
the names between its points and their predecessors — ~1/N of the
space — instead of rehashing everything, which is what lets a naming
deployment grow shards without a global re-registration storm.

Hashes come from :func:`hashlib.blake2b` (seeded, process-independent)
rather than :func:`hash`, so every client and every shard router of a
deployment places the same name on the same shard regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of ``text``."""
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    ``vnodes`` virtual points per node smooth the partition: with one
    point per shard the largest arc is O(log N / N) unlucky; with 64
    the spread is within a few percent of uniform.
    """

    def __init__(self, nodes: list[str], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("ring nodes must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._nodes = list(nodes)
        #: Sorted virtual points and the node each belongs to.
        self._points: list[int] = []
        self._owners: list[str] = []
        points = []
        for node in nodes:
            for v in range(vnodes):
                points.append((stable_hash(f"{node}#{v}"), node))
        points.sort()
        for point, node in points:
            self._points.append(point)
            self._owners.append(node)

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key``: first ring point at or after the
        key's hash, wrapping at the top of the circle."""
        point = stable_hash(key)
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def spread(self, keys: list[str]) -> dict[str, int]:
        """How many of ``keys`` land on each node (diagnostics)."""
        counts = dict.fromkeys(self._nodes, 0)
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
