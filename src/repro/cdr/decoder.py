"""CDR decoder: the inverse of :mod:`repro.cdr.encoder`.

Reads the byte-order flag octet first, then honours the sender's
endianness for every primitive — a little-endian client can talk to a
big-endian server, which is the heterogeneity CORBA's CDR exists for.

The decoder is *zero-copy*: it walks a read-only :class:`memoryview`
of the stream, :meth:`CdrDecoder.read_octets` returns sub-views, and
numeric element runs come back as ``np.frombuffer`` **views** into the
stream (read-only, so a decoded array can never corrupt a reused
receive buffer).  Copies happen only on the cross-endian path, or when
the caller opts into mutable results with ``copy_arrays=True`` (the
mutable-escape path).  A view pins the underlying buffer alive via the
buffer protocol, so handing views out is safe even for transient
receive buffers.
"""

from __future__ import annotations

import struct
import sys
from typing import Any

import numpy as np

from repro.cdr import typecodes as tc
from repro.cdr.accounting import copied
from repro.cdr.typecodes import MarshalError, TypeCode

_NATIVE_LITTLE = sys.byteorder == "little"


class CdrDecoder:
    """A read-once CDR stream over ``data`` (bytes-like).

    ``copy_arrays=True`` returns freshly-copied (writable) arrays for
    numeric element runs instead of read-only views — use it when the
    decoded value must outlive the stream's buffer or be mutated in
    place.
    """

    def __init__(self, data: Any, *, copy_arrays: bool = False) -> None:
        view = memoryview(data)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        self._data = view.toreadonly()
        if len(self._data) == 0:
            raise MarshalError("empty CDR stream")
        self._pos = 1
        self.copy_arrays = copy_arrays
        self.little_endian = bool(self._data[0])
        self._endian_char = "<" if self.little_endian else ">"

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._data)

    # -- primitives --------------------------------------------------------

    def align(self, n: int) -> None:
        self._pos += (-self._pos) % n

    def read_octets(self, n: int) -> memoryview:
        """The next ``n`` octets as a read-only view (no copy)."""
        if self._pos + n > len(self._data):
            raise MarshalError(
                f"CDR stream truncated: need {n} octets at offset "
                f"{self._pos}, have {self.remaining}"
            )
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def _unpack(self, fmt: str, size: int) -> Any:
        self.align(size)
        raw = self.read_octets(size)
        return struct.unpack(self._endian_char + fmt, raw)[0]

    def read_ulong(self) -> int:
        return self._unpack("I", 4)

    def read_long(self) -> int:
        return self._unpack("i", 4)

    def read_string(self) -> str:
        n = self.read_ulong()
        if n == 0:
            raise MarshalError("string length prefix of 0 is malformed")
        raw = self.read_octets(n)
        if raw[-1] != 0:
            raise MarshalError("string is not NUL-terminated")
        copied(n - 1)
        return bytes(raw[:-1]).decode("utf-8")

    def read_boolean(self) -> bool:
        return self.read_octets(1) != b"\0"

    # -- typed values --------------------------------------------------------

    def read(self, typecode: TypeCode) -> Any:
        kind = typecode.kind
        if isinstance(typecode, tc.BasicTC):
            return self._read_basic(typecode)
        if kind == "void":
            return None
        if kind == "string":
            value = self.read_string()
            typecode.validate(value)
            return value
        if kind == "enum":
            ordinal = self.read_ulong()
            members = typecode.members  # type: ignore[attr-defined]
            if ordinal >= len(members):
                raise MarshalError(
                    f"enum ordinal {ordinal} out of range for "
                    f"{typecode.name}"  # type: ignore[attr-defined]
                )
            return members[ordinal]
        if kind == "struct":
            return {
                name: self.read(ftc)
                for name, ftc in typecode.fields  # type: ignore[attr-defined]
            }
        if kind == "sequence":
            n = self.read_ulong()
            bound = typecode.bound  # type: ignore[attr-defined]
            if bound is not None and n > bound:
                raise MarshalError(
                    f"sequence of length {n} exceeds bound {bound}"
                )
            return self._read_elements(typecode.element, n)  # type: ignore[attr-defined]
        if kind == "array":
            return self._read_elements(
                typecode.element, typecode.length  # type: ignore[attr-defined]
            )
        if kind == "dsequence":
            n = self.read_ulong()
            if typecode.bound is not None and n > typecode.bound:  # type: ignore[attr-defined]
                raise MarshalError(
                    f"dsequence of length {n} exceeds bound "
                    f"{typecode.bound}"  # type: ignore[attr-defined]
                )
            return self._read_elements(typecode.element, n)  # type: ignore[attr-defined]
        if kind == "union":
            discriminator = self.read(typecode.discriminator)  # type: ignore[attr-defined]
            _member, member_tc = typecode.arm_for(discriminator)  # type: ignore[attr-defined]
            return {"d": discriminator, "v": self.read(member_tc)}
        if kind == "objref":
            return self.read_string()
        if kind == "exception":
            repo_id = self.read_string()
            if repo_id != typecode.repo_id:  # type: ignore[attr-defined]
                raise MarshalError(
                    f"exception id mismatch: stream carries {repo_id!r}, "
                    f"expected {typecode.repo_id!r}"  # type: ignore[attr-defined]
                )
            return {
                name: self.read(ftc)
                for name, ftc in typecode.fields  # type: ignore[attr-defined]
            }
        raise MarshalError(f"cannot unmarshal typecode {typecode!r}")

    def _read_basic(self, typecode: tc.BasicTC) -> Any:
        if typecode.kind == "boolean":
            return self.read_boolean()
        if typecode.kind == "char":
            return bytes(self.read_octets(1)).decode("latin-1")
        return self._unpack(typecode.fmt, typecode.size)

    def _read_elements(self, element: TypeCode, count: int) -> Any:
        dtype = element.dtype
        if dtype is not None:
            if element.kind != "boolean":
                self.align(element.size)  # type: ignore[attr-defined]
            raw = self.read_octets(count * dtype.itemsize)
            arr = np.frombuffer(raw, dtype=dtype)
            if self.little_endian != _NATIVE_LITTLE:
                # Cross-endian: the one unavoidable copy.
                arr = arr.byteswap()
                copied(arr.nbytes)
            elif self.copy_arrays:
                # Mutable-escape path: the caller asked for a copy it
                # may write to and keep past the buffer's lifetime.
                arr = arr.copy()
                copied(arr.nbytes)
            if element.kind == "boolean" and arr.dtype != np.bool_:
                return arr.astype(bool)
            return arr
        return [self.read(element) for _ in range(count)]


def decode_value(
    typecode: TypeCode, data: Any, *, copy_arrays: bool = False
) -> Any:
    """One-shot helper matching :func:`repro.cdr.encoder.encode_value`."""
    return CdrDecoder(data, copy_arrays=copy_arrays).read(typecode)
