"""CDR encoder: TypeCode-driven marshaling into a byte buffer.

Layout rules follow CDR: primitives are aligned to their size relative
to the start of the stream, strings carry a ulong length including the
terminating NUL, sequences a ulong element count, enums travel as
ulong ordinals, arrays are bare element runs, structs are member
concatenations.  The stream's first octet is the byte-order flag
(0 = big endian, 1 = little endian); this encoder always writes the
native order and records which.

The stream is *segment-aware*: small writes accumulate in a bytearray
tail, while large payloads (ndarray element runs, message bodies) are
appended **by reference** as additional segments — no copy is made and
``getvalue()``'s flatten can be skipped entirely by handing
:meth:`CdrEncoder.segments` to a vectored writer
(``socket.sendmsg``).  The zero-copy contract: a buffer appended by
reference must not be mutated until the stream has been sent or
flattened (see ``docs/performance.md``).
"""

from __future__ import annotations

import struct
import sys
from typing import Any

import numpy as np

from repro.cdr import typecodes as tc
from repro.cdr.accounting import copied
from repro.cdr.typecodes import MarshalError, TypeCode

_NATIVE_LITTLE = sys.byteorder == "little"

#: Payloads below this many bytes are cheaper to copy into the tail
#: than to carry as separate segments through a vectored write.
SEGMENT_THRESHOLD = 2048


class CdrEncoder:
    """An append-only CDR stream.

    The byte-order flag octet is written by :meth:`__init__`, so
    alignment is computed from stream offset 0 exactly as GIOP does
    for message bodies.
    """

    def __init__(self, little_endian: bool | None = None) -> None:
        self.little_endian = (
            _NATIVE_LITTLE if little_endian is None else little_endian
        )
        self._endian_char = "<" if self.little_endian else ">"
        #: Sealed buffers (bytes / memoryview / bytearray) + open tail.
        self._segments: list[Any] = []
        self._tail = bytearray()
        self._sealed_len = 0
        self._tail.append(1 if self.little_endian else 0)

    def __len__(self) -> int:
        return self._sealed_len + len(self._tail)

    def _seal(self) -> None:
        """Close the current tail into the segment list."""
        if self._tail:
            self._segments.append(self._tail)
            self._sealed_len += len(self._tail)
            self._tail = bytearray()

    def segments(self) -> list[Any]:
        """The stream as a buffer list, in order, without flattening.

        Buffers appended by reference are returned as-is; feed the
        list to a vectored writer to send the stream without ever
        joining it.  The encoder remains usable afterwards.
        """
        self._seal()
        return list(self._segments)

    def getvalue(self) -> bytes:
        """Flatten the stream to one bytes object (copies everything)."""
        parts = self.segments()
        if len(parts) == 1 and isinstance(parts[0], bytes):
            return parts[0]
        copied(len(self))
        return b"".join(bytes(p) if not isinstance(p, bytes) else p
                        for p in parts)

    # -- primitives --------------------------------------------------------

    def align(self, n: int) -> None:
        """Pad with zero octets to the next multiple of ``n``."""
        pad = (-len(self)) % n
        if pad:
            self._tail.extend(b"\0" * pad)

    def write_octets(self, data: Any) -> None:
        """Append raw octets by copy (into the tail segment)."""
        copied(len(data))
        self._tail.extend(data)

    def write_octets_view(self, data: Any) -> None:
        """Append raw octets **by reference** when large enough.

        Large buffers become their own segment — zero copies now, and
        none later if the stream is sent vectored.  The caller must
        not mutate ``data`` until the stream is flattened or sent.
        Small buffers fall back to :meth:`write_octets`.
        """
        if len(data) < SEGMENT_THRESHOLD:
            self.write_octets(data)
            return
        self._seal()
        self._segments.append(data)
        self._sealed_len += len(data)

    def append_encoder(self, other: "CdrEncoder") -> None:
        """Append another encoder's whole stream (flag octet included)
        by reference — the segment-aware replacement for
        ``write_octets(other.getvalue())``."""
        for segment in other.segments():
            self.write_octets_view(segment)

    def _pack(self, fmt: str, size: int, value: Any) -> None:
        self.align(size)
        try:
            self._tail.extend(struct.pack(self._endian_char + fmt, value))
        except (struct.error, TypeError) as exc:
            raise MarshalError(
                f"cannot marshal {value!r} as '{fmt}': {exc}"
            ) from None

    def write_ulong(self, value: int) -> None:
        tc.TC_ULONG.validate(value)
        self._pack("I", 4, value)

    def write_long(self, value: int) -> None:
        tc.TC_LONG.validate(value)
        self._pack("i", 4, value)

    def write_string(self, value: str, bound: int | None = None) -> None:
        tc.StringTC(bound).validate(value)
        raw = value.encode("utf-8")
        self.write_ulong(len(raw) + 1)
        self.write_octets(raw + b"\0")

    def write_boolean(self, value: Any) -> None:
        if isinstance(value, (bool, np.bool_)):
            self._tail.append(1 if value else 0)
            return
        if isinstance(value, (int, np.integer)) and int(value) in (0, 1):
            self._tail.append(int(value))
            return
        raise MarshalError(
            f"boolean expects True/False or 0/1, got {value!r}"
        )

    # -- typed values --------------------------------------------------------

    def write(self, typecode: TypeCode, value: Any) -> None:
        """Marshal ``value`` per ``typecode``."""
        kind = typecode.kind
        if isinstance(typecode, tc.BasicTC):
            self._write_basic(typecode, value)
        elif kind == "void":
            typecode.validate(value)
        elif kind == "string":
            self.write_string(value, typecode.bound)  # type: ignore[attr-defined]
        elif kind == "enum":
            self.write_ulong(typecode.ordinal(value))  # type: ignore[attr-defined]
        elif kind == "struct":
            typecode.validate(value)
            for name, ftc in typecode.fields:  # type: ignore[attr-defined]
                self.write(ftc, value[name])
        elif kind == "sequence":
            self._write_sequence(typecode, value)  # type: ignore[arg-type]
        elif kind == "array":
            typecode.validate(value)
            self._write_elements(typecode.element, value, len(value))  # type: ignore[attr-defined]
        elif kind == "dsequence":
            self._write_dsequence(typecode, value)  # type: ignore[arg-type]
        elif kind == "union":
            typecode.validate(value)
            self.write(typecode.discriminator, value["d"])  # type: ignore[attr-defined]
            _member, member_tc = typecode.arm_for(value["d"])  # type: ignore[attr-defined]
            self.write(member_tc, value["v"])
        elif kind == "objref":
            self.write_string(value if isinstance(value, str) else value.ior())
        elif kind == "exception":
            self._write_exception(typecode, value)  # type: ignore[arg-type]
        else:
            raise MarshalError(f"cannot marshal typecode {typecode!r}")

    def _write_basic(self, typecode: tc.BasicTC, value: Any) -> None:
        if typecode.kind == "boolean":
            self.write_boolean(value)
            return
        if typecode.kind == "char":
            if isinstance(value, str):
                value = value.encode("latin-1")
            if not isinstance(value, bytes) or len(value) != 1:
                raise MarshalError(f"char expects one character, got {value!r}")
            self._tail.extend(value)
            return
        typecode.validate(value)
        if isinstance(value, (np.integer, np.floating)):
            value = value.item()
        self._pack(typecode.fmt, typecode.size, value)

    def _write_elements(
        self, element: TypeCode, values: Any, count: int
    ) -> None:
        """Element run shared by sequences and arrays.

        Native-order contiguous ndarrays large enough to matter are
        appended by reference — the zero-copy fast path the transfer
        engines rely on.  Cross-endian streams byteswap (one copy);
        small runs copy into the tail.
        """
        dtype = element.dtype
        if dtype is not None:
            arr = np.asarray(values, dtype=dtype)
            if arr.shape != (count,):
                raise MarshalError(
                    f"expected {count} elements, got shape {arr.shape}"
                )
            if element.kind != "boolean":
                self.align(element.size)  # type: ignore[attr-defined]
            if not self._native_order():
                arr = arr.byteswap()
                copied(arr.nbytes)
            elif not arr.flags.c_contiguous:
                arr = np.ascontiguousarray(arr)
                copied(arr.nbytes)
            self.write_octets_view(memoryview(arr).cast("B"))
            return
        for value in values:
            self.write(element, value)

    def _native_order(self) -> bool:
        return self.little_endian == _NATIVE_LITTLE

    def _write_sequence(self, typecode: tc.SequenceTC, value: Any) -> None:
        typecode.validate(value)
        n = len(value)
        self.write_ulong(n)
        self._write_elements(typecode.element, value, n)

    def _write_dsequence(self, typecode: tc.DSequenceTC, value: Any) -> None:
        """Materialized (centralized-method) form: length + all elements.

        ``value`` may be a DistributedSequence whose full content is
        locally available (gathered), or a plain ndarray.
        """
        if isinstance(value, np.ndarray):
            data = value
        else:
            typecode.validate(value)
            if value.comm is not None:
                raise MarshalError(
                    "cannot materialize a group-distributed sequence "
                    "inline; the transfer engine must gather it first"
                )
            data = value.local_data()
        if typecode.bound is not None and len(data) > typecode.bound:
            raise MarshalError(
                f"dsequence of length {len(data)} exceeds bound "
                f"{typecode.bound}"
            )
        self.write_ulong(len(data))
        self._write_elements(typecode.element, data, len(data))

    def _write_exception(self, typecode: tc.ExceptionTC, value: Any) -> None:
        self.write_string(typecode.repo_id)
        members = getattr(value, "members", None)
        mapping = members() if callable(members) else (value or {})
        for name, ftc in typecode.fields:
            self.write(ftc, mapping[name])


def encode_value(typecode: TypeCode, value: Any) -> bytes:
    """One-shot helper: a fresh stream holding just ``value``."""
    encoder = CdrEncoder()
    encoder.write(typecode, value)
    return encoder.getvalue()
