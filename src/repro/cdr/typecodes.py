"""Runtime descriptions of IDL types (CORBA TypeCodes).

Every IDL type the compiler accepts has a TypeCode; the encoder and
decoder are driven entirely by these, so generated stubs contain no
per-type marshaling logic — they pass the TypeCode of each argument to
the CDR layer, exactly as a CORBA ORB interprets TypeCodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


class MarshalError(ValueError):
    """A value does not conform to its TypeCode."""


class TypeCode:
    """Base class; concrete codes below.

    ``kind`` is a short stable identifier used in reprs and the IDL
    compiler's dispatch tables.
    """

    kind: str = "abstract"

    #: NumPy dtype for fixed-width numeric codes, else ``None``.
    dtype: np.dtype | None = None

    def validate(self, value: Any) -> None:
        """Raise :class:`MarshalError` when ``value`` doesn't fit."""

    def __repr__(self) -> str:
        return f"<TypeCode {self.kind}>"


@dataclass(frozen=True, repr=False)
class BasicTC(TypeCode):
    """A fixed-width primitive: IDL basic numeric/char/boolean types.

    Note: ``kind`` inherits the base-class default, so every field may
    carry one; the module-level constants construct by keyword.
    """

    kind: str = "basic"
    size: int = 1
    fmt: str = "B"
    np_dtype: str | None = None
    signed: bool | None = None

    @property
    def alignment(self) -> int:
        return self.size

    @property
    def dtype(self) -> np.dtype | None:  # type: ignore[override]
        return np.dtype(self.np_dtype) if self.np_dtype else None

    def validate(self, value: Any) -> None:
        if self.signed is None:
            return
        if isinstance(value, (np.integer, np.floating)):
            value = value.item()
        if not isinstance(value, int):
            raise MarshalError(
                f"{self.kind} expects an integer, got {type(value).__name__}"
            )
        bits = self.size * 8
        if self.signed:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        else:
            lo, hi = 0, (1 << bits) - 1
        if not lo <= value <= hi:
            raise MarshalError(
                f"{value} out of range for IDL {self.kind} [{lo}, {hi}]"
            )


TC_SHORT = BasicTC("short", 2, "h", "int16", signed=True)
TC_USHORT = BasicTC("ushort", 2, "H", "uint16", signed=False)
TC_LONG = BasicTC("long", 4, "i", "int32", signed=True)
TC_ULONG = BasicTC("ulong", 4, "I", "uint32", signed=False)
TC_LONGLONG = BasicTC("longlong", 8, "q", "int64", signed=True)
TC_ULONGLONG = BasicTC("ulonglong", 8, "Q", "uint64", signed=False)
TC_FLOAT = BasicTC("float", 4, "f", "float32")
TC_DOUBLE = BasicTC("double", 8, "d", "float64")
TC_BOOLEAN = BasicTC("boolean", 1, "B", "bool")
TC_OCTET = BasicTC("octet", 1, "B", "uint8", signed=False)
TC_CHAR = BasicTC("char", 1, "c")


@dataclass(frozen=True, repr=False)
class _VoidTC(TypeCode):
    kind: str = "void"

    def validate(self, value: Any) -> None:
        if value is not None:
            raise MarshalError("void carries no value")


TC_VOID = _VoidTC()


@dataclass(frozen=True, repr=False)
class StringTC(TypeCode):
    """IDL string, optionally bounded."""

    bound: int | None = None
    kind: str = "string"

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise MarshalError(
                f"string expects str, got {type(value).__name__}"
            )
        if self.bound is not None and len(value) > self.bound:
            raise MarshalError(
                f"string of length {len(value)} exceeds bound {self.bound}"
            )


TC_STRING = StringTC()


@dataclass(frozen=True, repr=False)
class EnumTC(TypeCode):
    """IDL enum: marshaled as ulong ordinal, surfaced as the label."""

    name: str
    members: tuple[str, ...]
    kind: str = "enum"

    def __post_init__(self) -> None:
        if len(set(self.members)) != len(self.members):
            raise MarshalError(f"enum {self.name} has duplicate members")

    def ordinal(self, value: Any) -> int:
        if isinstance(value, str):
            try:
                return self.members.index(value)
            except ValueError:
                raise MarshalError(
                    f"{value!r} is not a member of enum {self.name}"
                ) from None
        if isinstance(value, (int, np.integer)):
            if not 0 <= int(value) < len(self.members):
                raise MarshalError(
                    f"ordinal {value} out of range for enum {self.name}"
                )
            return int(value)
        raise MarshalError(
            f"enum {self.name} expects a member name or ordinal"
        )

    def validate(self, value: Any) -> None:
        self.ordinal(value)


@dataclass(frozen=True, repr=False)
class StructTC(TypeCode):
    """IDL struct: named, ordered fields.

    Values are dicts keyed by field name (the Python mapping used by
    the generated code).
    """

    name: str
    fields: tuple[tuple[str, TypeCode], ...]
    kind: str = "struct"

    def validate(self, value: Any) -> None:
        if not isinstance(value, dict):
            raise MarshalError(
                f"struct {self.name} expects a dict, got "
                f"{type(value).__name__}"
            )
        expected = {name for name, _ in self.fields}
        missing = expected - set(value)
        if missing:
            raise MarshalError(
                f"struct {self.name} missing fields {sorted(missing)}"
            )
        extra = set(value) - expected
        if extra:
            raise MarshalError(
                f"struct {self.name} has unknown fields {sorted(extra)}"
            )


@dataclass(frozen=True, repr=False)
class SequenceTC(TypeCode):
    """Plain CORBA sequence (non-distributed), optionally bounded."""

    element: TypeCode
    bound: int | None = None
    kind: str = "sequence"

    def validate(self, value: Any) -> None:
        try:
            n = len(value)
        except TypeError:
            raise MarshalError(
                "sequence expects a sized iterable"
            ) from None
        if self.bound is not None and n > self.bound:
            raise MarshalError(
                f"sequence of length {n} exceeds bound {self.bound}"
            )


@dataclass(frozen=True, repr=False)
class ArrayTC(TypeCode):
    """IDL fixed-length array (no length prefix on the wire)."""

    element: TypeCode
    length: int
    kind: str = "array"

    def validate(self, value: Any) -> None:
        try:
            n = len(value)
        except TypeError:
            raise MarshalError("array expects a sized iterable") from None
        if n != self.length:
            raise MarshalError(
                f"array expects exactly {self.length} elements, got {n}"
            )


@dataclass(frozen=True, repr=False)
class DSequenceTC(TypeCode):
    """The PARDIS distributed sequence (paper §2.2).

    Wire layout when fully materialized (centralized method) is that
    of the equivalent plain sequence; the multi-port method never
    materializes it, marshaling per-thread chunks instead.  ``bound``
    is the optional fixed length, ``template`` the optional preset
    distribution recorded in the IDL definition.
    """

    element: TypeCode
    bound: int | None = None
    template: Any = None
    kind: str = "dsequence"

    def __post_init__(self) -> None:
        if self.element.dtype is None:
            raise MarshalError(
                "distributed sequences require a fixed-width numeric "
                f"element type, not {self.element.kind}"
            )

    @property
    def element_dtype(self) -> np.dtype:
        assert self.element.dtype is not None
        return self.element.dtype

    def validate(self, value: Any) -> None:
        length = getattr(value, "length", None)
        if not callable(length):
            raise MarshalError(
                "dsequence expects a DistributedSequence-like value"
            )
        if self.bound is not None and value.length() > self.bound:
            raise MarshalError(
                f"dsequence of length {value.length()} exceeds bound "
                f"{self.bound}"
            )


@dataclass(frozen=True, repr=False)
class UnionTC(TypeCode):
    """IDL discriminated union.

    ``cases`` holds ``(label, member name, member TypeCode)`` triples;
    ``default_case`` optionally names the ``default:`` arm as a
    ``(member name, TypeCode)`` pair.  Values are dicts of the form
    ``{"d": discriminator, "v": member value}`` (the mapping generated
    code constructs via its union factory).  On the wire: the
    discriminator, then the selected member — standard CDR.
    """

    name: str = ""
    discriminator: TypeCode = None  # type: ignore[assignment]
    cases: tuple[tuple[Any, str, TypeCode], ...] = ()
    default_case: tuple[str, TypeCode] | None = None
    kind: str = "union"

    def __post_init__(self) -> None:
        labels = [label for label, _, _ in self.cases]
        if len(set(labels)) != len(labels):
            raise MarshalError(
                f"union {self.name} has duplicate case labels"
            )
        if self.discriminator is None or self.discriminator.kind not in (
            "short",
            "ushort",
            "long",
            "ulong",
            "longlong",
            "ulonglong",
            "boolean",
            "char",
            "enum",
        ):
            kind = getattr(self.discriminator, "kind", None)
            raise MarshalError(
                f"union {self.name}: {kind!r} cannot discriminate a "
                f"union"
            )

    def arm_for(self, discriminator: Any) -> tuple[str, TypeCode]:
        """The (member name, TypeCode) selected by a discriminator."""
        for label, member, tc in self.cases:
            if label == discriminator:
                return member, tc
        if self.default_case is not None:
            return self.default_case
        raise MarshalError(
            f"union {self.name}: discriminator {discriminator!r} "
            f"matches no case and there is no default"
        )

    def validate(self, value: Any) -> None:
        if (
            not isinstance(value, dict)
            or "d" not in value
            or "v" not in value
        ):
            raise MarshalError(
                f"union {self.name} expects {{'d': …, 'v': …}}, got "
                f"{type(value).__name__}"
            )
        self.discriminator.validate(value["d"])
        self.arm_for(value["d"])


@dataclass(frozen=True, repr=False)
class ObjRefTC(TypeCode):
    """Object reference: marshaled as its stringified IOR."""

    interface: str
    kind: str = "objref"


@dataclass(frozen=True, repr=False)
class ExceptionTC(TypeCode):
    """IDL user exception: repository id plus struct-like members."""

    name: str
    repo_id: str
    fields: tuple[tuple[str, TypeCode], ...] = field(default_factory=tuple)
    kind: str = "exception"


def fixed_width(tc: TypeCode) -> bool:
    """Can sequences of ``tc`` use the NumPy bulk fast path?"""
    return tc.dtype is not None
