"""Copy accounting: measure how many bytes the wire path memcpy's.

The zero-copy work (buffer-view CDR, vectored socket writes,
``recv_into`` receives) is only honest if it can be *audited*: every
place the data plane physically copies payload bytes — a
``bytearray.extend``, a ``bytes()`` materialization, an ndarray
``byteswap``, a ``recv_into``, an ``out[...] = view`` landing store —
reports the copy here.  A benchmark then wraps a request in
:func:`copy_audit` and divides the observed total by the payload size:
*bytes copied per payload byte* is the wire path's figure of merit
(see ``docs/performance.md`` and ``tools/bench_wirepath.py``).

Accounting is off by default and costs one truthiness test per
instrumented site; an active audit costs one lock per event, which is
negligible next to the copies being measured.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "CopyAccount",
    "copied",
    "copy_audit",
    "register_account",
    "unregister_account",
]


class CopyAccount:
    """A running tally of wire-path byte copies.

    ``bytes`` is the total number of bytes physically copied while the
    account was active; ``events`` the number of distinct copy
    operations.  Both include every instrumented layer (CDR codecs,
    fabrics, transfer engines), so nested protocol copies of the same
    payload are counted each time they happen — that is the point.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes = 0
        self.events = 0

    def add(self, nbytes: int) -> None:
        with self._lock:
            self.bytes += nbytes
            self.events += 1

    def snapshot(self) -> tuple[int, int]:
        with self._lock:
            return self.bytes, self.events

    def __repr__(self) -> str:
        return f"<CopyAccount {self.bytes} bytes in {self.events} copies>"


# Active accounts.  Registration swaps in a fresh tuple so ``copied``
# can iterate without taking the registry lock (reads see either the
# old or the new tuple, never a half-built one).
_registry_lock = threading.Lock()
_accounts: tuple[CopyAccount, ...] = ()


def copied(nbytes: int) -> None:
    """Report a physical copy of ``nbytes`` payload/protocol bytes.

    Called by the instrumented layers; a no-op (one tuple truthiness
    test) unless an audit is active.
    """
    accounts = _accounts
    if accounts and nbytes:
        for account in accounts:
            account.add(nbytes)


def register_account(account: CopyAccount) -> None:
    """Activate an account for open-ended accounting (until
    :func:`unregister_account`) — e.g. the lifetime tally behind
    ``ORB.stats()``.  Prefer :func:`copy_audit` for scoped audits."""
    global _accounts
    with _registry_lock:
        _accounts = _accounts + (account,)


def unregister_account(account: CopyAccount) -> None:
    """Deactivate a registered account (idempotent)."""
    global _accounts
    with _registry_lock:
        _accounts = tuple(a for a in _accounts if a is not account)


@contextmanager
def copy_audit() -> Iterator[CopyAccount]:
    """Measure wire-path copies for the duration of the ``with`` body.

    Audits nest and may run concurrently from several threads; each
    sees every copy made anywhere in the process while it is active
    (the wire path spans threads — reader loops, servant ranks — so
    per-thread attribution would undercount).
    """
    account = CopyAccount()
    register_account(account)
    try:
        yield account
    finally:
        unregister_account(account)
