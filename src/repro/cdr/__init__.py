"""CDR-style marshaling — the ORB's wire representation.

CORBA's Common Data Representation (CDR) defines how IDL-typed values
are laid out in request and reply messages: natural alignment for
primitives, explicit byte-order flag, length-prefixed strings and
sequences, structs as the concatenation of their members.  PARDIS
generates stub code "containing all the code necessary to perform
argument marshaling"; this subpackage is that machinery.

Type codes (:mod:`repro.cdr.typecodes`) are runtime descriptions of
IDL types; the encoder/decoder walk them.  Sequences of fixed-width
numeric elements take a NumPy fast path (bulk ``tobytes`` /
``frombuffer``), which is what makes the multi-port method's
per-thread chunk marshaling cheap.
"""

from repro.cdr.typecodes import (
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_STRING,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TC_VOID,
    ArrayTC,
    DSequenceTC,
    EnumTC,
    ExceptionTC,
    ObjRefTC,
    SequenceTC,
    StructTC,
    TypeCode,
    UnionTC,
    MarshalError,
)
from repro.cdr.encoder import CdrEncoder, encode_value
from repro.cdr.decoder import CdrDecoder, decode_value

__all__ = [
    "ArrayTC",
    "CdrDecoder",
    "CdrEncoder",
    "DSequenceTC",
    "EnumTC",
    "ExceptionTC",
    "MarshalError",
    "ObjRefTC",
    "SequenceTC",
    "StructTC",
    "TC_BOOLEAN",
    "TC_CHAR",
    "TC_DOUBLE",
    "TC_FLOAT",
    "TC_LONG",
    "TC_LONGLONG",
    "TC_OCTET",
    "TC_SHORT",
    "TC_STRING",
    "TC_ULONG",
    "TC_ULONGLONG",
    "TC_USHORT",
    "TC_VOID",
    "TypeCode",
    "UnionTC",
    "decode_value",
    "encode_value",
]
