"""CDR-style marshaling — the ORB's wire representation.

CORBA's Common Data Representation (CDR) defines how IDL-typed values
are laid out in request and reply messages: natural alignment for
primitives, explicit byte-order flag, length-prefixed strings and
sequences, structs as the concatenation of their members.  PARDIS
generates stub code "containing all the code necessary to perform
argument marshaling"; this subpackage is that machinery.

Type codes (:mod:`repro.cdr.typecodes`) are runtime descriptions of
IDL types; the encoder/decoder walk them.  Sequences of fixed-width
numeric elements take a NumPy **zero-copy** path: the encoder appends
large ndarray payloads by reference as stream segments, and the
decoder returns read-only ``np.frombuffer`` views into the stream —
which is what makes both transfer methods' marshaling cheap.  Every
physical copy the wire path does make is reported to
:mod:`repro.cdr.accounting`, so benchmarks can audit the pipeline
(``bytes copied per payload byte``, see ``docs/performance.md``).
"""

from repro.cdr.typecodes import (
    TC_BOOLEAN,
    TC_CHAR,
    TC_DOUBLE,
    TC_FLOAT,
    TC_LONG,
    TC_LONGLONG,
    TC_OCTET,
    TC_SHORT,
    TC_STRING,
    TC_ULONG,
    TC_ULONGLONG,
    TC_USHORT,
    TC_VOID,
    ArrayTC,
    DSequenceTC,
    EnumTC,
    ExceptionTC,
    ObjRefTC,
    SequenceTC,
    StructTC,
    TypeCode,
    UnionTC,
    MarshalError,
)
from repro.cdr.encoder import CdrEncoder, encode_value
from repro.cdr.decoder import CdrDecoder, decode_value
from repro.cdr.accounting import CopyAccount, copy_audit

__all__ = [
    "ArrayTC",
    "CopyAccount",
    "copy_audit",
    "CdrDecoder",
    "CdrEncoder",
    "DSequenceTC",
    "EnumTC",
    "ExceptionTC",
    "MarshalError",
    "ObjRefTC",
    "SequenceTC",
    "StructTC",
    "TC_BOOLEAN",
    "TC_CHAR",
    "TC_DOUBLE",
    "TC_FLOAT",
    "TC_LONG",
    "TC_LONGLONG",
    "TC_OCTET",
    "TC_SHORT",
    "TC_STRING",
    "TC_ULONG",
    "TC_ULONGLONG",
    "TC_USHORT",
    "TC_VOID",
    "TypeCode",
    "UnionTC",
    "decode_value",
    "encode_value",
]
