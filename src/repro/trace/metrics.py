"""Counters, histograms, and the metrics registry.

The registry is the aggregation point for everything countable:
instrumentation sites bump :class:`Counter`\\ s and observe
:class:`Histogram`\\ s by name; existing snapshot producers (the
``orb.stats()`` sections, the trace recorder itself) plug in as
*sources* and are folded into :meth:`MetricsRegistry.snapshot`.

Snapshots are JSON-ready and **deep-copied**: mutating a snapshot
never perturbs live counters, and later bumps never mutate an
already-taken snapshot.

>>> registry = MetricsRegistry()
>>> registry.counter("requests").inc(3)
>>> registry.histogram("latency_us", bounds=(10.0, 100.0)).observe(42.0)
>>> snap = registry.snapshot()
>>> snap["counters"]["requests"]
3
>>> snap["histograms"]["latency_us"]["count"]
1
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, Mapping, Sequence

#: Default histogram bucket upper bounds — decades from 10 µs to 10 s,
#: suiting the span-duration histograms (recorded in microseconds).
DEFAULT_BOUNDS: tuple[float, ...] = (
    1e1,
    1e2,
    1e3,
    1e4,
    1e5,
    1e6,
    1e7,
)


class Counter:
    """A monotonically increasing named tally."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, by: int = 1) -> None:
        with self._lock:
            self._value += by

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot(self) -> int:
        return self.value


class Histogram:
    """A fixed-bucket histogram with count/total/min/max.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in a final overflow bucket.
    """

    __slots__ = ("name", "bounds", "_lock", "_buckets", "_count", "_total", "_min", "_max")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self._lock = threading.Lock()
        self._buckets = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            mean = self._total / self._count if self._count else 0.0
            return {
                "count": self._count,
                "total": self._total,
                "mean": mean,
                "min": self._min,
                "max": self._max,
                "buckets": {
                    **{
                        f"le_{bound:g}": self._buckets[i]
                        for i, bound in enumerate(self.bounds)
                    },
                    "overflow": self._buckets[-1],
                },
            }


class MetricsRegistry:
    """Named counters and histograms plus pluggable snapshot sources.

    ``counter(name)`` / ``histogram(name)`` create on first use and
    return the same instance thereafter, so hot paths can cache the
    returned object.  ``register_source(name, fn)`` folds an external
    snapshot producer — e.g. ``orb.stats`` — into :meth:`snapshot`
    under ``sources[name]``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], Mapping[str, Any]]] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, bounds)
            return histogram

    def register_source(
        self, name: str, fn: Callable[[], Mapping[str, Any]]
    ) -> None:
        with self._lock:
            self._sources[name] = fn

    def unregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    def snapshot(self, *, include_sources: bool = True) -> dict[str, Any]:
        """A deep-copied, JSON-ready snapshot of every counter,
        histogram, and (optionally) registered source."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            sources = dict(self._sources) if include_sources else {}
        snap: dict[str, Any] = {
            "counters": {n: c.snapshot() for n, c in sorted(counters.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(histograms.items())
            },
        }
        if include_sources:
            snap["sources"] = {
                name: copy.deepcopy(dict(fn()))
                for name, fn in sorted(sources.items())
            }
        return copy.deepcopy(snap)
