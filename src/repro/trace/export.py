"""Chrome-trace/Perfetto JSON export (and re-import) of spans.

The emitted document follows the Trace Event Format: one ``"X"``
(complete) event per span with microsecond ``ts``/``dur``, plus
``"M"`` metadata events naming processes and threads.  Sides map to
processes (client=pid 1, server=pid 2) and SPMD ranks to threads, so
a collective invocation renders as one trace with a lane per rank on
each side — load ``trace.json`` in ``chrome://tracing`` or
https://ui.perfetto.dev.

``read_chrome_trace`` inverts the export losslessly for the span
fields we emit, which the tests use to assert exporter round-trips.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.trace.span import Span, TraceRecorder

#: Side → synthetic pid in the exported document.
SIDE_PIDS: dict[str, int] = {"client": 1, "server": 2}


def chrome_trace_events(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """The ``traceEvents`` list: metadata events first, then one
    ``"X"`` event per span."""
    spans = list(spans)
    events: list[dict[str, Any]] = []
    lanes = {(s.side, s.rank) for s in spans}
    for side, pid in sorted(SIDE_PIDS.items(), key=lambda kv: kv[1]):
        if any(lane_side == side for lane_side, _ in lanes):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": side},
                }
            )
    for side, rank in sorted(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": SIDE_PIDS[side],
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": span.side,
                "ph": "X",
                "ts": span.start_us,
                "dur": span.dur_us,
                "pid": SIDE_PIDS.get(span.side, 0),
                "tid": span.rank,
                "args": {
                    "trace_id": f"0x{span.trace_id:016x}",
                    **span.attrs,
                },
            }
        )
    return events


def to_chrome_trace(
    spans: Iterable[Span] | TraceRecorder,
    *,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The full JSON-object-format document.  Accepts a recorder
    directly (all its spans are exported); a metrics snapshot, if
    given, rides along under ``otherData``."""
    if isinstance(spans, TraceRecorder):
        recorder = spans
        if metrics is None:
            metrics = recorder.metrics.snapshot(include_sources=False)
        spans = recorder.spans()
    doc: dict[str, Any] = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["otherData"] = {"metrics": dict(metrics)}
    return doc


def write_chrome_trace(
    path: str,
    spans: Iterable[Span] | TraceRecorder,
    *,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Export to ``path``; returns the document written."""
    doc = to_chrome_trace(spans, metrics=metrics)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def spans_from_chrome_trace(doc: Mapping[str, Any]) -> list[Span]:
    """Reconstruct :class:`Span` records from an exported document
    (or a bare ``traceEvents`` list wrapped in a dict)."""
    events = doc.get("traceEvents", [])
    pid_side = {pid: side for side, pid in SIDE_PIDS.items()}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            pid_side[event["pid"]] = event["args"]["name"]
    spans: list[Span] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        trace_id = int(args.pop("trace_id", "0x0"), 16)
        spans.append(
            Span(
                name=event["name"],
                trace_id=trace_id,
                side=pid_side.get(event.get("pid"), event.get("cat", "")),
                rank=int(event.get("tid", 0)),
                start_us=float(event.get("ts", 0.0)),
                dur_us=float(event.get("dur", 0.0)),
                attrs=args,
            )
        )
    return spans


def read_chrome_trace(path: str) -> list[Span]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return spans_from_chrome_trace(doc)
