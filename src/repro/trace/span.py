"""Spans and the trace recorder.

A :class:`Span` is one timed stage of an invocation (``bind``,
``encode``, ``transfer``, ``dispatch``, ``reply``, ``retry``,
``degrade``, ``invoke``) on one side (client or server) and one SPMD
rank.  Spans carrying the same ``trace_id`` — propagated in the
request header — belong to one logical collective invocation.

Timestamps come from a single process-wide monotonic epoch so spans
recorded on different threads (client ranks, server ranks, the reply
sender) share one timeline and render coherently in the Chrome trace
viewer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.rts import backends as rts_backends
from repro.trace.metrics import MetricsRegistry

#: Process-wide monotonic epoch: all recorders measure from here, so
#: traces gathered from several recorders still share a timeline.
_EPOCH_NS = time.perf_counter_ns()


def _now_us() -> float:
    return (time.perf_counter_ns() - _EPOCH_NS) / 1_000.0


#: Which group replica the current thread is invoking (set by the
#: proxy's group path around the engine phases).  Mirrors the ``rts``
#: tag: spans opened inside the scope are tagged ``replica=<id>``;
#: spans of singleton bindings stay untagged.
_REPLICA = threading.local()


def active_replica() -> int | None:
    """The replica id the calling thread currently targets, if any."""
    return getattr(_REPLICA, "replica", None)


class replica_scope:
    """Tag spans opened by this thread with ``replica=<id>``.

    Reentrant-safe via save/restore, so a failover replay nested in an
    outer scope retags with the *new* replica and restores the old tag
    on exit.
    """

    __slots__ = ("_replica", "_prev")

    def __init__(self, replica: int) -> None:
        self._replica = replica
        self._prev: int | None = None

    def __enter__(self) -> "replica_scope":
        self._prev = getattr(_REPLICA, "replica", None)
        _REPLICA.replica = self._replica
        return self

    def __exit__(self, *_exc: Any) -> bool:
        _REPLICA.replica = self._prev
        return False


@dataclass(frozen=True)
class Span:
    """One completed, immutable timed stage."""

    name: str
    trace_id: int
    side: str  # "client" or "server"
    rank: int
    start_us: float
    dur_us: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


class _NullSpan:
    """The disabled-path span: every operation is a no-op.

    A single shared instance is returned by :func:`span_or_null` when
    tracing is off, so disabled instrumentation sites allocate
    nothing.
    """

    __slots__ = ()

    def note(self, **_attrs: Any) -> "_NullSpan":
        return self

    def end(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanHandle:
    """An open span; call :meth:`end` (or exit the ``with`` block) to
    record it.  ``note(**attrs)`` attaches attributes at any point
    while the span is open."""

    __slots__ = (
        "_recorder",
        "name",
        "trace_id",
        "side",
        "rank",
        "attrs",
        "_start_us",
        "_ended",
    )

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        trace_id: int,
        side: str,
        rank: int,
        attrs: dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.trace_id = trace_id
        self.side = side
        self.rank = rank
        self.attrs = attrs
        self._start_us = _now_us()
        self._ended = False

    def note(self, **attrs: Any) -> "SpanHandle":
        self.attrs.update(attrs)
        return self

    def end(self) -> Span | None:
        if self._ended:
            return None
        self._ended = True
        span = Span(
            name=self.name,
            trace_id=self.trace_id,
            side=self.side,
            rank=self.rank,
            start_us=self._start_us,
            dur_us=_now_us() - self._start_us,
            attrs=self.attrs,
        )
        self._recorder.record(span)
        return span

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.end()
        return False

    def __bool__(self) -> bool:
        return True


class TraceRecorder:
    """Thread-safe bounded span store plus a metrics registry.

    ``capacity`` bounds memory: once full, the oldest span is evicted
    per new span and ``dropped`` counts the evictions.  Every recorded
    span also feeds a per-stage duration histogram
    (``span.<side>.<name>_us``) in :attr:`metrics`.
    """

    def __init__(
        self,
        capacity: int = 65536,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque()
        self.dropped = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- recording ---------------------------------------------------

    def begin(
        self,
        name: str,
        *,
        trace_id: int = 0,
        side: str = "client",
        rank: int = 0,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span; also usable as a context manager.

        Spans opened inside an SPMD rank are tagged with that rank's
        RTS backend (``rts: thread|process``) unless the caller set
        one explicitly, so traces from mixed-backend runs stay
        separable; serial-code spans stay untagged.  Spans opened
        while the thread is invoking a replicated-group member
        (:class:`replica_scope`) are tagged ``replica=<id>`` the same
        way; singleton-binding spans stay untagged.
        """
        backend = rts_backends.active_backend()
        if backend is not None:
            attrs.setdefault("rts", backend)
        replica = active_replica()
        if replica is not None:
            attrs.setdefault("replica", replica)
        return SpanHandle(self, name, trace_id, side, rank, attrs)

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self._capacity:
                self._spans.popleft()
                self.dropped += 1
            self._spans.append(span)
        self.metrics.histogram(
            f"span.{span.side}.{span.name}_us"
        ).observe(span.dur_us)

    # -- querying ----------------------------------------------------

    def spans(
        self,
        *,
        trace_id: int | None = None,
        name: str | None = None,
        side: str | None = None,
        rank: int | None = None,
    ) -> list[Span]:
        """A filtered snapshot, in recording order."""
        with self._lock:
            snapshot: Iterable[Span] = list(self._spans)
        return [
            s
            for s in snapshot
            if (trace_id is None or s.trace_id == trace_id)
            and (name is None or s.name == name)
            and (side is None or s.side == side)
            and (rank is None or s.rank == rank)
        ]

    def trace_ids(self) -> list[int]:
        """Distinct non-zero trace ids, in first-seen order."""
        seen: dict[int, None] = {}
        for span in self.spans():
            if span.trace_id:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- integration hooks -------------------------------------------

    def fabric_meter(self):
        """A fabric :class:`~repro.orb.transport.Meter` that tallies
        frames and bytes by frame kind into the metrics registry."""
        metrics = self.metrics

        def meter(src: int, dest: int, kind: str, nbytes: int) -> None:
            metrics.counter(f"fabric.frames.{kind}").inc()
            metrics.counter(f"fabric.bytes.{kind}").inc(nbytes)

        return meter

    def ft_observer(self):
        """An ``FtStats(on_bump=...)`` observer mirroring fault-
        tolerance counters into the metrics registry."""
        metrics = self.metrics

        def on_bump(name: str, by: int) -> None:
            metrics.counter(f"ft.{name}").inc(by)

        return on_bump

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "spans": len(self._spans),
                "capacity": self._capacity,
                "dropped": self.dropped,
            }


def span_or_null(trace: TraceRecorder | None, name: str, **kw: Any):
    """``trace.begin(name, **kw)`` when tracing is on, else the shared
    :data:`NULL_SPAN`.  This is the one call every instrumentation
    site makes; with ``trace is None`` it is a function call, an
    ``is`` test, and a constant return."""
    if trace is None:
        return NULL_SPAN
    return trace.begin(name, **kw)
