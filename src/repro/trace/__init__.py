"""Collective-aware tracing and metrics (``repro.trace``).

PARDIS's evaluation hinges on knowing *where time goes* in a
collective invocation — argument gather/scatter, network transfer,
servant dispatch — per SPMD rank and per protocol stage.  This
package provides:

- :class:`TraceRecorder` — a bounded, thread-safe recorder of
  :class:`Span` records.  Spans are rank-tagged and carry a *trace
  id* that is propagated in the request header, so the client- and
  server-side spans of one collective invocation — across every SPMD
  thread on both sides — correlate into a single logical trace.
- :class:`MetricsRegistry` — named counters and histograms plus
  pluggable snapshot *sources*, folding in the existing
  ``orb.stats()`` counters.
- A Chrome-trace/Perfetto JSON exporter (:func:`to_chrome_trace`,
  :func:`write_chrome_trace`, :func:`read_chrome_trace`) and a text
  timeline (:func:`format_timeline`, also ``tools/trace_view.py``).

Tracing is **off by default**: every instrumentation site in the ORB
guards on ``trace is None`` (see :func:`span_or_null`), so the
disabled fast path costs one attribute load and an ``is`` test.
Enable it per ORB with ``ORB(trace=True)`` or by passing a
:class:`TraceRecorder`.

See ``docs/observability.md`` for the span vocabulary, metric names,
and exporter usage.
"""

from __future__ import annotations

from repro.trace.export import (
    chrome_trace_events,
    read_chrome_trace,
    spans_from_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.trace.metrics import Counter, Histogram, MetricsRegistry
from repro.trace.span import (
    NULL_SPAN,
    Span,
    TraceRecorder,
    active_replica,
    replica_scope,
    span_or_null,
)
from repro.trace.view import format_timeline, summarize

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TraceRecorder",
    "active_replica",
    "chrome_trace_events",
    "format_timeline",
    "read_chrome_trace",
    "replica_scope",
    "span_or_null",
    "spans_from_chrome_trace",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
]
