"""Text timelines for traces — the ``tools/trace_view.py`` backend.

``format_timeline`` renders one logical trace (client + server, all
ranks) as aligned ASCII bars on a shared time axis; ``summarize``
aggregates per-stage totals.  Both accept any span iterable, so they
work on a live recorder or on a re-imported Chrome-trace file.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.trace.span import Span

#: Render order of lanes: client above server, ranks ascending.
_SIDE_ORDER = {"client": 0, "server": 1}


def _lane_key(span: Span) -> tuple[int, int]:
    return (_SIDE_ORDER.get(span.side, 2), span.rank)


def format_timeline(
    spans: Iterable[Span],
    *,
    width: int = 64,
    attrs: bool = True,
) -> str:
    """An ASCII timeline of the given spans on one shared axis.

    Each span prints as one line: lane label, span name, a bar
    positioned/scaled to the trace window, duration, and (optionally)
    attributes.  Spans should share a trace id — filter first with
    ``recorder.spans(trace_id=...)``.
    """
    spans = sorted(spans, key=lambda s: (_lane_key(s), s.start_us))
    if not spans:
        return "(no spans)"
    t0 = min(s.start_us for s in spans)
    t1 = max(s.end_us for s in spans)
    window = max(t1 - t0, 1e-9)
    name_w = max(len(s.name) for s in spans)
    lines: list[str] = []
    trace_ids = {s.trace_id for s in spans if s.trace_id}
    if len(trace_ids) == 1:
        lines.append(f"trace 0x{next(iter(trace_ids)):016x}")
    lines.append(
        f"window {window / 1000.0:.3f} ms"
        f"  ({len(spans)} spans)"
    )
    last_lane: tuple[int, int] | None = None
    for span in spans:
        lane = _lane_key(span)
        if lane != last_lane:
            lines.append(f"-- {span.side} rank {span.rank} --")
            last_lane = lane
        lead = int((span.start_us - t0) / window * width)
        bar = max(1, int(span.dur_us / window * width))
        bar = min(bar, width - min(lead, width - 1))
        line = (
            f"  {span.name:<{name_w}} "
            f"|{' ' * min(lead, width - 1)}{'=' * bar}"
            f"{' ' * (width - min(lead, width - 1) - bar)}| "
            f"{span.dur_us / 1000.0:9.3f} ms"
        )
        if attrs and span.attrs:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            line += f"  {pairs}"
        lines.append(line)
    return "\n".join(lines)


def summarize(spans: Iterable[Span]) -> dict[str, Any]:
    """Per-(side, name) aggregate: count and total/mean duration."""
    totals: dict[tuple[str, str], list[float]] = defaultdict(list)
    ranks: set[int] = set()
    trace_ids: set[int] = set()
    for span in spans:
        totals[(span.side, span.name)].append(span.dur_us)
        ranks.add(span.rank)
        if span.trace_id:
            trace_ids.add(span.trace_id)
    return {
        "traces": len(trace_ids),
        "ranks": sorted(ranks),
        "stages": {
            f"{side}.{name}": {
                "count": len(durs),
                "total_us": sum(durs),
                "mean_us": sum(durs) / len(durs),
            }
            for (side, name), durs in sorted(totals.items())
        },
    }


def format_summary(spans: Iterable[Span]) -> str:
    summary = summarize(spans)
    lines = [
        f"traces: {summary['traces']}  ranks: {summary['ranks']}",
        f"{'stage':<24} {'count':>6} {'total ms':>10} {'mean ms':>10}",
    ]
    for stage, agg in summary["stages"].items():
        lines.append(
            f"{stage:<24} {agg['count']:>6}"
            f" {agg['total_us'] / 1000.0:>10.3f}"
            f" {agg['mean_us'] / 1000.0:>10.3f}"
        )
    return "\n".join(lines)
