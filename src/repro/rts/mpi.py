"""A thread-based MPI-like message-passing library.

This is the reproduction's stand-in for MPICH: the paper's SPMD
applications communicate internally through "the PARDIS interface to
the run-time system underlying the object implementation", which for
the evaluation was MPI.  Here each rank is a Python thread; messages
are tag-matched, and payloads are isolated on send (NumPy arrays are
copied, everything else goes through pickle) so the distributed-memory
semantics of real MPI hold — a receiver can never observe later
mutations by the sender, and unpicklable payloads fail loudly exactly
as they would under mpi4py.

Following the mpi4py convention from the guides, lowercase methods
(``send``/``recv``/``bcast``/…) accept arbitrary Python objects, while
the uppercase ``Send``/``Recv`` pair moves NumPy buffers directly into
caller-provided storage.

All blocking calls take an optional ``timeout``; the group-wide
default (:data:`DEFAULT_TIMEOUT`) bounds how long a mismatched program
can hang before a :class:`DeadlockError` pinpoints the stuck call.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

#: Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1

#: Default number of seconds a blocking call may wait before raising
#: :class:`DeadlockError`.  Long enough for any legitimate test-suite
#: wait, short enough that a deadlocked suite still terminates.
DEFAULT_TIMEOUT = 60.0


class DeadlockError(RuntimeError):
    """A blocking call exceeded its timeout — the program is stuck."""


class GroupAbortedError(RuntimeError):
    """The group was aborted (a peer rank raised) mid-operation."""


class CollectiveMismatchError(RuntimeError):
    """Ranks of a group disagreed about which collective they entered."""


@dataclass
class _ReduceOp:
    """A named reduction operator usable with ``reduce``/``allreduce``."""

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:
        return f"<op {self.name}>"


SUM = _ReduceOp("sum", lambda a, b: a + b)
PROD = _ReduceOp("prod", lambda a, b: a * b)
MAX = _ReduceOp("max", lambda a, b: np.maximum(a, b))
MIN = _ReduceOp("min", lambda a, b: np.minimum(a, b))


def _isolate(payload: Any) -> Any:
    """Copy a payload so sender and receiver share no mutable state."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if payload is None or isinstance(payload, (bool, int, float, str, bytes)):
        return payload
    return pickle.loads(pickle.dumps(payload))


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any


class Request:
    """Handle for a non-blocking operation.

    Sends are buffered (the payload is isolated eagerly), so a send
    request is born complete.  Receive requests complete on
    :meth:`wait`/:meth:`test`.
    """

    def __init__(
        self,
        completed: bool = True,
        result: Any = None,
        poll: Callable[[float | None], Any] | None = None,
        try_poll: Callable[[], tuple[bool, Any]] | None = None,
    ) -> None:
        self._completed = completed
        self._result = result
        self._poll = poll
        self._try_poll = try_poll

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; return the received object (or None
        for sends)."""
        if not self._completed:
            assert self._poll is not None
            self._result = self._poll(timeout)
            self._completed = True
        return self._result

    def test(self) -> tuple[bool, Any]:
        """Non-blocking completion check, mpi4py-style."""
        if not self._completed and self._try_poll is not None:
            done, result = self._try_poll()
            if done:
                self._completed = True
                self._result = result
        return self._completed, self._result


class _Group:
    """Shared state of one communicator group."""

    def __init__(self, size: int, name: str) -> None:
        if size <= 0:
            raise ValueError("group size must be positive")
        self.size = size
        self.name = name
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.mailboxes: list[list[_Message]] = [[] for _ in range(size)]
        self.aborted = False
        self.abort_reason: str | None = None
        # Collective rendezvous state (phased; see _Collective).
        self.coll_lock = threading.Lock()
        self.coll_cond = threading.Condition(self.coll_lock)
        self.coll_generation = 0
        self.coll_arrived = 0
        self.coll_opname: str | None = None
        self.coll_board: dict[int, Any] = {}
        # Completed boards, keyed by generation, each paired with the
        # number of ranks still to read it (so a fast rank starting the
        # next collective can never clobber an unread result).
        self.coll_published: dict[int, list[Any]] = {}

    def abort(self, reason: str) -> None:
        with self.cond:
            self.aborted = True
            self.abort_reason = reason
            self.cond.notify_all()
        with self.coll_cond:
            self.coll_cond.notify_all()

    def check_alive(self) -> None:
        if self.aborted:
            raise GroupAbortedError(
                f"group '{self.name}' aborted: {self.abort_reason}"
            )


class Intracomm:
    """Communicator over a thread group, one instance per rank.

    API mirrors mpi4py's ``Intracomm`` for the subset PARDIS needs:
    point-to-point with tags and wildcards, non-blocking variants, the
    buffer-based ``Send``/``Recv`` fast path, and the collective set
    ``barrier``, ``bcast``, ``scatter``, ``gather``, ``allgather``,
    ``alltoall``, ``reduce``, ``allreduce``.
    """

    def __init__(self, group: _Group, rank: int) -> None:
        if not 0 <= rank < group.size:
            raise ValueError(f"rank {rank} outside group of {group.size}")
        self._group = group
        self._rank = rank

    # -- introspection --------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._group.size

    @property
    def name(self) -> str:
        return self._group.name

    def __repr__(self) -> str:
        return (
            f"<Intracomm '{self._group.name}' rank {self._rank} of "
            f"{self._group.size}>"
        )

    # -- point-to-point --------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send: isolates ``obj`` and deposits it, never blocks."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} outside group")
        if tag < 0:
            raise ValueError("send tag must be non-negative")
        message = _Message(self._rank, tag, _isolate(obj))
        group = self._group
        with group.cond:
            group.check_alive()
            group.mailboxes[dest].append(message)
            group.cond.notify_all()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; buffered, so complete at once."""
        self.send(obj, dest, tag)
        return Request(completed=True)

    def _match(
        self, source: int, tag: int
    ) -> _Message | None:
        """Pop the first matching message.  Caller holds the lock."""
        box = self._group.mailboxes[self._rank]
        for i, message in enumerate(box):
            if source not in (ANY_SOURCE, message.src):
                continue
            if tag not in (ANY_TAG, message.tag):
                continue
            return box.pop(i)
        return None

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        status: dict | None = None,
    ) -> Any:
        """Blocking tag-matched receive.

        ``status``, when given, is filled with the matched ``source``
        and ``tag`` (a light-weight MPI_Status).
        """
        deadline = time.monotonic() + (
            DEFAULT_TIMEOUT if timeout is None else timeout
        )
        group = self._group
        with group.cond:
            while True:
                group.check_alive()
                message = self._match(source, tag)
                if message is not None:
                    if status is not None:
                        status["source"] = message.src
                        status["tag"] = message.tag
                    return message.payload
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {self._rank} of '{group.name}': recv("
                        f"source={source}, tag={tag}) timed out"
                    )
                group.cond.wait(remaining)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive returning a :class:`Request`."""

        def poll(timeout: float | None) -> Any:
            return self.recv(source, tag, timeout=timeout)

        def try_poll() -> tuple[bool, Any]:
            with self._group.cond:
                self._group.check_alive()
                message = self._match(source, tag)
            if message is None:
                return False, None
            return True, message.payload

        return Request(completed=False, poll=poll, try_poll=try_poll)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking: is a matching message pending?"""
        group = self._group
        with group.cond:
            group.check_alive()
            for message in group.mailboxes[self._rank]:
                if source not in (ANY_SOURCE, message.src):
                    continue
                if tag not in (ANY_TAG, message.tag):
                    continue
                return True
        return False

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        """Combined send+receive (safe against exchange deadlock since
        sends are buffered)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag, timeout=timeout)

    # -- NumPy buffer fast path -------------------------------------------

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer send of a NumPy array (uppercase mpi4py convention)."""
        array = np.asarray(array)
        self.send(array, dest, tag)

    def Recv(
        self,
        buffer: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> None:
        """Receive directly into ``buffer`` (must be large enough)."""
        payload = self.recv(source, tag, timeout=timeout)
        payload = np.asarray(payload)
        if payload.size > buffer.size:
            raise ValueError(
                f"receive buffer holds {buffer.size} elements but the "
                f"message carries {payload.size}"
            )
        flat = buffer.reshape(-1)
        flat[: payload.size] = payload.reshape(-1)

    # -- collectives -------------------------------------------------------

    def _collective(self, opname: str, contribute: Any) -> dict[int, Any]:
        """Phased rendezvous shared by all collectives.

        Every rank deposits ``contribute`` on the board, everyone waits
        until the group is complete, reads the full board, and the last
        reader opens the next generation.  Mismatched collective names
        across ranks raise :class:`CollectiveMismatchError` on every
        rank, which is the failure mode the tests inject.
        """
        group = self._group
        deadline = time.monotonic() + DEFAULT_TIMEOUT
        with group.coll_cond:
            if group.aborted:
                raise GroupAbortedError(
                    f"group '{group.name}' aborted: {group.abort_reason}"
                )
            generation = group.coll_generation
            if group.coll_arrived == 0:
                group.coll_opname = opname
                group.coll_board = {}
            elif group.coll_opname != opname:
                mismatch = (
                    f"rank {self._rank} entered collective '{opname}' "
                    f"while the group is executing "
                    f"'{group.coll_opname}'"
                )
                group.aborted = True
                group.abort_reason = mismatch
                group.coll_cond.notify_all()
                raise CollectiveMismatchError(mismatch)
            group.coll_board[self._rank] = contribute
            group.coll_arrived += 1
            if group.coll_arrived == group.size:
                # Rendezvous complete: publish for the waiters, reset
                # the rendezvous slots for the next collective.
                board = dict(group.coll_board)
                if group.size > 1:
                    group.coll_published[generation] = [
                        board, group.size - 1
                    ]
                group.coll_generation += 1
                group.coll_arrived = 0
                group.coll_board = {}
                group.coll_opname = None
                group.coll_cond.notify_all()
                return board
            while group.coll_generation == generation:
                if group.aborted:
                    raise GroupAbortedError(
                        f"group '{group.name}' aborted: "
                        f"{group.abort_reason}"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlockError(
                        f"rank {self._rank} of '{group.name}': collective "
                        f"'{opname}' timed out waiting for peers"
                    )
                group.coll_cond.wait(remaining)
            entry = group.coll_published[generation]
            entry[1] -= 1
            if entry[1] == 0:
                del group.coll_published[generation]
            return entry[0]

    def barrier(self) -> None:
        """Block until all ranks arrive."""
        self._collective("barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from ``root``; all ranks return the value."""
        self._check_root(root)
        board = self._collective(
            f"bcast@{root}", _isolate(obj) if self._rank == root else None
        )
        # Isolate on every rank: the board entry is shared with the
        # other readers, so handing it out directly would alias them.
        return _isolate(board[root])

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Root supplies one object per rank; each rank gets its own."""
        self._check_root(root)
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(
                    f"scatter root must supply exactly {self.size} items"
                )
            contribution: Any = [_isolate(o) for o in objs]
        else:
            contribution = None
        board = self._collective(f"scatter@{root}", contribution)
        return _isolate(board[root][self._rank])

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Root returns the list of contributions in rank order."""
        self._check_root(root)
        board = self._collective(f"gather@{root}", _isolate(obj))
        if self._rank != root:
            return None
        return [board[r] for r in range(self.size)]

    def allgather(self, obj: Any) -> list[Any]:
        """Every rank returns all contributions in rank order."""
        board = self._collective("allgather", _isolate(obj))
        return [_isolate(board[r]) for r in range(self.size)]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Rank i's element j goes to rank j's slot i."""
        if len(objs) != self.size:
            raise ValueError(
                f"alltoall requires exactly {self.size} items per rank"
            )
        board = self._collective(
            "alltoall", [_isolate(o) for o in objs]
        )
        return [_isolate(board[r][self._rank]) for r in range(self.size)]

    def reduce(
        self, obj: Any, op: _ReduceOp = SUM, root: int = 0
    ) -> Any | None:
        """Reduce contributions with ``op``; only root gets the result."""
        self._check_root(root)
        board = self._collective(f"reduce@{root}:{op.name}", _isolate(obj))
        if self._rank != root:
            return None
        return self._fold(board, op)

    def allreduce(self, obj: Any, op: _ReduceOp = SUM) -> Any:
        """Reduce and broadcast the result to every rank."""
        board = self._collective(f"allreduce:{op.name}", _isolate(obj))
        return self._fold(board, op)

    def _fold(self, board: dict[int, Any], op: _ReduceOp) -> Any:
        result = board[0]
        for r in range(1, self.size):
            result = op(result, board[r])
        return _isolate(result)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} outside group")

    def dup(self, name: str | None = None) -> "Intracomm":
        """Collective.  A new communicator over the same ranks with
        independent mailboxes and collective state (MPI_Comm_dup) —
        traffic on the duplicate can never match traffic here."""
        fresh = (
            _Group(self.size, name or f"{self._group.name}:dup")
            if self._rank == 0
            else None
        )
        board = self._collective("dup", fresh)
        shared = board[0]
        assert isinstance(shared, _Group)
        return Intracomm(shared, self._rank)

    # -- control -----------------------------------------------------------

    def abort(self, reason: str = "application abort") -> None:
        """Abort the whole group: every blocked peer raises
        :class:`GroupAbortedError`."""
        self._group.abort(reason)


def create_group(size: int, name: str = "group") -> list[Intracomm]:
    """Create a fresh group and return one communicator per rank."""
    group = _Group(size, name)
    return [Intracomm(group, r) for r in range(size)]
