"""True-parallel SPMD: ranks as OS processes, shm data plane.

The thread backend (:mod:`repro.rts.mpi`) gives PARDIS concurrency but
not compute — every rank shares one GIL, so the zero-copy wire path
and pipelining scale overlap, never cores.  This module is the other
half of ROADMAP item 1: the same SPMD contract with every rank a
forked OS process, mirroring the paper's MPI-processes-on-SGI-nodes
testbed.

Three planes:

- **Control** — a full mesh of OS pipes carries tagged, pickled
  messages (:class:`ProcComm`, the mpi4py-style communicator).
  Collectives rendezvous through rank 0, which detects mismatched
  collective names exactly like the thread backend.
- **Data** — payloads at or above :data:`repro.rts.shm.SHM_THRESHOLD`
  never cross a pipe: the sender writes them into a shared-memory
  segment and ships a descriptor; :class:`ProcessRTS` goes further
  and has every rank write its gather/scatter chunks *directly* into
  one pooled segment, in parallel, with the root handing out a
  zero-copy leased view.
- **Supervision** — the parent keeps a registry of every segment name
  any rank announces, and sweeps (unlinks) whatever is still
  registered when the group ends, so even a SIGKILLed rank leaks
  nothing into ``/dev/shm``.

Ranks are created with the ``fork`` start method, so rank bodies may
be closures and lambdas, exactly like the thread backend; only rank
*results* (and raised exceptions) must be picklable, since they
travel back to the parent over a pipe.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from multiprocessing import connection as mpconn
from typing import Any, Callable, Sequence

import numpy as np

from repro.rts import backends, shm
from repro.rts.interface import RuntimeSystem
from repro.rts.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    DEFAULT_TIMEOUT,
    SUM,
    CollectiveMismatchError,
    DeadlockError,
    GroupAbortedError,
    Request,
    _isolate,
    _ReduceOp,
)

#: How often blocked operations re-check the abort flag (seconds).
_POLL = 0.02

#: Envelope channels: application point-to-point, collective
#: contributions (to rank 0), and collective results (from rank 0).
_CH_P2P, _CH_COLL, _CH_COLLRES = 0, 1, 2


class RankDiedError(RuntimeError):
    """A rank process exited without reporting a result."""


def process_backend_supported() -> bool:
    """Fork-based process groups need a platform with ``fork``."""
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Per-process group state
# ---------------------------------------------------------------------------


class _Pending:
    """One buffered, not-yet-matched incoming message."""

    __slots__ = ("src", "tag", "kind", "data")

    def __init__(self, src: int, tag: int, kind: str, data: Any) -> None:
        self.src = src
        self.tag = tag
        self.kind = kind
        self.data = data


class _RankState:
    """Everything one rank process knows about its group."""

    def __init__(
        self,
        name: str,
        rank: int,
        size: int,
        readers: dict[int, Any],
        writers: dict[int, Any],
        up: Any,
        abort_event: Any,
    ) -> None:
        self.name = name
        self.rank = rank
        self.size = size
        self.readers = readers
        self.writers = writers
        self.up = up
        self.abort_event = abort_event
        #: Buffered messages keyed by (ctx, channel).
        self.pending: dict[tuple[int, int], list[_Pending]] = {}
        #: Context ids: 0 is the base comm; rank 0 allocates for dup.
        self.next_ctx = 1
        self.pool = shm.ShmPool(
            on_register=lambda n: self._up_send(("reg", n)),
            on_unregister=lambda n: self._up_send(("unreg", n)),
        )
        self.attach_cache: dict[str, Any] = {}
        self._closed = False

    # -- supervisor link ---------------------------------------------------

    def _up_send(self, message: tuple) -> None:
        try:
            self.up.send(message)
        except (BrokenPipeError, OSError):
            pass

    def register_oneshot(self, name: str) -> None:
        self._up_send(("reg", name))

    def unregister_oneshot(self, name: str) -> None:
        self._up_send(("unreg", name))

    # -- payload encode / decode ------------------------------------------

    def encode(self, payload: Any) -> tuple[str, Any]:
        """Choose the wire form: inline pickle or shm descriptor."""
        if (
            isinstance(payload, np.ndarray)
            and payload.nbytes >= shm.SHM_THRESHOLD
        ):
            arr = np.ascontiguousarray(payload)
            seg = self._oneshot_segment(arr.nbytes)
            np.ndarray(arr.shape, arr.dtype, buffer=seg.buf)[...] = arr
            desc = (seg.name, arr.dtype, arr.shape)
            seg.close()
            return "nd_shm", desc
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) >= shm.SHM_THRESHOLD:
            seg = self._oneshot_segment(len(blob))
            seg.buf[: len(blob)] = blob
            desc = (seg.name, len(blob))
            seg.close()
            return "pickle_shm", desc
        return "inline", blob

    def _oneshot_segment(self, nbytes: int) -> Any:
        """A single-message segment; the *receiver* unlinks it."""
        name = f"{shm.NAME_PREFIX}_{os.getpid()}_p2p_{time.monotonic_ns():x}"
        self.register_oneshot(name)
        try:
            seg = multiprocessing.shared_memory.SharedMemory(  # type: ignore[attr-defined]
                name=name, create=True, size=max(nbytes, 1)
            )
        except (FileExistsError, AttributeError):
            seg = shm.create_segment(nbytes)
            self.register_oneshot(seg.name)
        else:
            shm.untrack(seg)
        return seg

    def decode(self, kind: str, data: Any) -> Any:
        if kind == "inline":
            return pickle.loads(data)
        if kind == "isolated":
            return data
        if kind == "nd_shm":
            name, dtype, shape = data
            seg = shm.attach_segment(name)
            arr = np.ndarray(shape, dtype, buffer=seg.buf).copy()
            self._consume_oneshot(seg, name)
            return arr
        if kind == "pickle_shm":
            name, nbytes = data
            seg = shm.attach_segment(name)
            blob = bytes(seg.buf[:nbytes])
            self._consume_oneshot(seg, name)
            return pickle.loads(blob)
        raise RuntimeError(f"unknown payload kind {kind!r}")

    def _consume_oneshot(self, seg: Any, name: str) -> None:
        shm.unlink_segment(seg)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        self.unregister_oneshot(name)

    # -- transport ---------------------------------------------------------

    def check_alive(self) -> None:
        if self.abort_event.is_set():
            raise GroupAbortedError(f"group '{self.name}' aborted")

    def send_raw(
        self, dst: int, ctx: int, channel: int, tag: int, payload: Any
    ) -> None:
        self.check_alive()
        if dst == self.rank:
            entry = _Pending(self.rank, tag, "isolated", _isolate(payload))
            self.pending.setdefault((ctx, channel), []).append(entry)
            return
        kind, data = self.encode(payload)
        try:
            self.writers[dst].send((ctx, channel, tag, self.rank, kind, data))
        except (BrokenPipeError, OSError) as exc:
            raise GroupAbortedError(
                f"group '{self.name}': rank {dst} is gone ({exc})"
            ) from None

    def drain(self, timeout: float) -> None:
        """Pull every ready incoming message into the pending queues."""
        conns = list(self.readers.values())
        if not conns:
            time.sleep(min(timeout, _POLL))
            return
        for conn in mpconn.wait(conns, timeout):
            try:
                ctx, channel, tag, src, kind, data = conn.recv()
            except (EOFError, OSError):
                for peer, reader in list(self.readers.items()):
                    if reader is conn:
                        del self.readers[peer]
                continue
            self.pending.setdefault((ctx, channel), []).append(
                _Pending(src, tag, kind, data)
            )

    def match(
        self, ctx: int, channel: int, source: int, tag: int
    ) -> _Pending | None:
        box = self.pending.get((ctx, channel))
        if not box:
            return None
        for i, entry in enumerate(box):
            if source not in (ANY_SOURCE, entry.src):
                continue
            if tag not in (ANY_TAG, entry.tag):
                continue
            return box.pop(i)
        return None

    def recv_match(
        self,
        ctx: int,
        channel: int,
        source: int,
        tag: int,
        timeout: float | None,
        what: str,
    ) -> _Pending:
        deadline = time.monotonic() + (
            DEFAULT_TIMEOUT if timeout is None else timeout
        )
        while True:
            self.check_alive()
            entry = self.match(ctx, channel, source, tag)
            if entry is not None:
                return entry
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"rank {self.rank} of '{self.name}': {what} timed out"
                )
            self.drain(min(_POLL, remaining))

    # -- shm attachments ---------------------------------------------------

    def attach_cached(self, name: str) -> Any:
        seg = self.attach_cache.get(name)
        if seg is None:
            seg = shm.attach_segment(name)
            self.attach_cache[name] = seg
        return seg

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        stats = self.pool.stats()
        self.pool.close()
        for seg in self.attach_cache.values():
            try:
                seg.close()
            except BufferError:
                pass
        self.attach_cache.clear()
        self._up_send(("shmstats", stats))


# ---------------------------------------------------------------------------
# The communicator
# ---------------------------------------------------------------------------


class ProcComm:
    """mpi4py-style communicator over a process group.

    The surface mirrors :class:`repro.rts.mpi.Intracomm` — tagged
    point-to-point with wildcards, non-blocking variants, the NumPy
    ``Send``/``Recv`` pair, the collective set, and ``dup`` — so the
    ORB, distributed sequences, and applications written against the
    thread backend run unmodified.  ``dup`` multiplexes a fresh
    context id onto the same pipe mesh (traffic on the duplicate can
    never match traffic here), since new pipes cannot be created
    between already-running processes.
    """

    def __init__(
        self, state: _RankState, ctx: int = 0, name: str | None = None
    ) -> None:
        self._state = state
        self._ctx = ctx
        self._name = name or (
            state.name if ctx == 0 else f"{state.name}:ctx{ctx}"
        )

    # -- introspection -----------------------------------------------------

    @property
    def rank(self) -> int:
        return self._state.rank

    @property
    def size(self) -> int:
        return self._state.size

    @property
    def name(self) -> str:
        return self._name

    def __repr__(self) -> str:
        return (
            f"<ProcComm '{self._name}' rank {self.rank} of {self.size}>"
        )

    # -- point-to-point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} outside group")
        if tag < 0:
            raise ValueError("send tag must be non-negative")
        self._state.send_raw(dest, self._ctx, _CH_P2P, tag, obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(completed=True)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
        status: dict | None = None,
    ) -> Any:
        entry = self._state.recv_match(
            self._ctx,
            _CH_P2P,
            source,
            tag,
            timeout,
            f"recv(source={source}, tag={tag})",
        )
        if status is not None:
            status["source"] = entry.src
            status["tag"] = entry.tag
        return self._state.decode(entry.kind, entry.data)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        def poll(timeout: float | None) -> Any:
            return self.recv(source, tag, timeout=timeout)

        def try_poll() -> tuple[bool, Any]:
            self._state.drain(0)
            entry = self._state.match(self._ctx, _CH_P2P, source, tag)
            if entry is None:
                return False, None
            return True, self._state.decode(entry.kind, entry.data)

        return Request(completed=False, poll=poll, try_poll=try_poll)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        self._state.check_alive()
        self._state.drain(0)
        box = self._state.pending.get((self._ctx, _CH_P2P), [])
        return any(
            source in (ANY_SOURCE, e.src) and tag in (ANY_TAG, e.tag)
            for e in box
        )

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        sendtag: int = 0,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> Any:
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag, timeout=timeout)

    # -- NumPy buffer fast path -------------------------------------------

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        self.send(np.asarray(array), dest, tag)

    def Recv(
        self,
        buffer: np.ndarray,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = None,
    ) -> None:
        payload = np.asarray(self.recv(source, tag, timeout=timeout))
        if payload.size > buffer.size:
            raise ValueError(
                f"receive buffer holds {buffer.size} elements but the "
                f"message carries {payload.size}"
            )
        flat = buffer.reshape(-1)
        flat[: payload.size] = payload.reshape(-1)

    # -- collectives -------------------------------------------------------

    def _collective(
        self,
        opname: str,
        contribute: Any,
        project: Callable[[int, dict[int, Any]], Any] | None = None,
    ) -> Any:
        """Rendezvous through rank 0.

        Every rank ships ``(opname, contribution)`` to rank 0, which
        waits for the full group, verifies all ranks entered the
        *same* collective, and answers each rank with
        ``project(rank, board)`` (the full board when ``project`` is
        None).  Mismatched opnames abort the group and raise
        :class:`CollectiveMismatchError`, mirroring the thread
        backend's phased rendezvous.
        """
        state = self._state
        if self.size == 1:
            board = {0: _isolate(contribute)}
            return project(0, board) if project else board
        if state.rank != 0:
            state.send_raw(
                0, self._ctx, _CH_COLL, 0, (opname, contribute)
            )
            entry = state.recv_match(
                self._ctx, _CH_COLLRES, 0, ANY_TAG, None,
                f"collective '{opname}'",
            )
            status, result = state.decode(entry.kind, entry.data)
            if status == "mismatch":
                raise CollectiveMismatchError(result)
            return result
        # Rank 0: coordinator and participant.
        opnames = {0: opname}
        board: dict[int, Any] = {0: _isolate(contribute)}
        for src in range(1, self.size):
            entry = state.recv_match(
                self._ctx, _CH_COLL, src, ANY_TAG, None,
                f"collective '{opname}' waiting for rank {src}",
            )
            peer_op, contribution = state.decode(entry.kind, entry.data)
            opnames[src] = peer_op
            board[src] = contribution
        if len(set(opnames.values())) > 1:
            detail = ", ".join(
                f"rank {r}: '{opnames[r]}'" for r in sorted(opnames)
            )
            mismatch = (
                f"group '{state.name}' ranks entered different "
                f"collectives — {detail}"
            )
            for dst in range(1, self.size):
                state.send_raw(
                    dst, self._ctx, _CH_COLLRES, 0, ("mismatch", mismatch)
                )
            state.abort_event.set()
            raise CollectiveMismatchError(mismatch)
        for dst in range(1, self.size):
            result = project(dst, board) if project else board
            state.send_raw(
                dst, self._ctx, _CH_COLLRES, 0, ("ok", result)
            )
        return project(0, board) if project else board

    def barrier(self) -> None:
        self._collective("barrier", None, project=lambda d, b: None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_root(root)
        return self._collective(
            f"bcast@{root}",
            obj if self.rank == root else None,
            project=lambda d, b: b[root],
        )

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_root(root)
        if self.rank == root and (objs is None or len(objs) != self.size):
            raise ValueError(
                f"scatter root must supply exactly {self.size} items"
            )
        return self._collective(
            f"scatter@{root}",
            list(objs) if self.rank == root else None,
            project=lambda d, b: b[root][d],
        )

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_root(root)
        size = self.size
        return self._collective(
            f"gather@{root}",
            obj,
            project=lambda d, b: (
                [b[r] for r in range(size)] if d == root else None
            ),
        )

    def allgather(self, obj: Any) -> list[Any]:
        size = self.size
        return self._collective(
            "allgather",
            obj,
            project=lambda d, b: [b[r] for r in range(size)],
        )

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise ValueError(
                f"alltoall requires exactly {self.size} items per rank"
            )
        size = self.size
        return self._collective(
            "alltoall",
            list(objs),
            project=lambda d, b: [b[r][d] for r in range(size)],
        )

    def reduce(
        self, obj: Any, op: _ReduceOp = SUM, root: int = 0
    ) -> Any | None:
        self._check_root(root)
        memo: list[Any] = []

        def project(dst: int, board: dict[int, Any]) -> Any:
            if dst != root:
                return None
            if not memo:
                memo.append(self._fold(board, op))
            return memo[0]

        return self._collective(f"reduce@{root}:{op.name}", obj, project)

    def allreduce(self, obj: Any, op: _ReduceOp = SUM) -> Any:
        memo: list[Any] = []

        def project(dst: int, board: dict[int, Any]) -> Any:
            if not memo:
                memo.append(self._fold(board, op))
            return memo[0]

        return self._collective(f"allreduce:{op.name}", obj, project)

    def _fold(self, board: dict[int, Any], op: _ReduceOp) -> Any:
        result = board[0]
        for r in range(1, self.size):
            result = op(result, board[r])
        return result

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root rank {root} outside group")

    def dup(self, name: str | None = None) -> "ProcComm":
        """Collective: a fresh context over the same ranks."""
        state = self._state
        fresh = None
        if state.rank == 0:
            fresh = state.next_ctx
            state.next_ctx += 1
        ctx = self._collective("dup", fresh, project=lambda d, b: b[0])
        return ProcComm(state, ctx, name or f"{self._name}:dup")

    # -- control -----------------------------------------------------------

    def abort(self, reason: str = "application abort") -> None:
        self._state.abort_event.set()


# ---------------------------------------------------------------------------
# The shared-memory RTS data plane
# ---------------------------------------------------------------------------


class ProcessRTS(RuntimeSystem):
    """The RuntimeSystem contract over a process group's shm plane.

    Gathers and scatters never serialize payload bytes: the root
    checks a pooled segment out, broadcasts its name, and every rank
    moves exactly its schedule slices between its local block and the
    segment — concurrently, in different processes, on different
    cores.  With ``out=None`` the root's gather result is a zero-copy
    leased view of the segment itself.
    """

    backend = backends.PROCESS

    def __init__(self, comm: ProcComm) -> None:
        if not isinstance(comm, ProcComm):
            raise TypeError("ProcessRTS requires a ProcComm")
        self._comm = comm
        self._state = comm._state

    @property
    def comm(self) -> ProcComm:
        return self._comm

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def synchronize(self) -> None:
        self._comm.barrier()

    def allgather(self, obj: Any) -> list[Any]:
        return self._comm.allgather(obj)

    def broadcast(self, obj: Any, root: int) -> Any:
        """Large ndarrays fan out through one segment, read in
        parallel; everything else rides the control plane."""
        comm, state = self._comm, self._state
        if comm.size == 1:
            return _isolate(obj)
        if comm.rank == root:
            if (
                isinstance(obj, np.ndarray)
                and obj.nbytes >= shm.SHM_THRESHOLD
            ):
                arr = np.ascontiguousarray(obj)
                seg = state.pool.acquire(arr.nbytes)
                np.ndarray(arr.shape, arr.dtype, buffer=seg.buf)[...] = arr
                comm.bcast(("shm", seg.name, arr.dtype, arr.shape), root)
                comm.barrier()
                state.pool.release(seg)
                return obj
            comm.bcast(("inline", obj), root)
            return obj
        desc = comm.bcast(None, root)
        if desc[0] == "inline":
            return desc[1]
        _, name, dtype, shape = desc
        seg = state.attach_cached(name)
        arr = np.ndarray(shape, dtype, buffer=seg.buf).copy()
        comm.barrier()
        return arr

    def gather_chunks(
        self,
        local: np.ndarray,
        steps: list,
        root: int,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        comm, state = self._comm, self._state
        me = comm.rank
        total = steps[-1].global_hi if steps else 0
        if total == 0 or comm.size == 1:
            if me != root:
                return None
            if out is None:
                out = np.zeros(total, dtype=local.dtype)
            for step in steps:
                out[step.global_lo : step.global_hi] = local[step.src_slice]
            return out
        mine = [s for s in steps if s.src_rank == me]
        if me == root:
            dtype = local.dtype
            seg = state.pool.acquire(total * dtype.itemsize)
            view = np.ndarray((total,), dtype, buffer=seg.buf)
            comm.bcast((seg.name, dtype, total), root)
            for step in mine:
                view[step.global_lo : step.global_hi] = local[step.src_slice]
            comm.barrier()
            if out is not None:
                out[:total] = view
                state.pool.release(seg)
                return out
            return shm.leased_view(view, state.pool.lease(seg))
        name, dtype, total = comm.bcast(None, root)
        seg = state.attach_cached(name)
        view = np.ndarray((total,), dtype, buffer=seg.buf)
        for step in mine:
            view[step.global_lo : step.global_hi] = local[step.src_slice]
        comm.barrier()
        return None

    def scatter_chunks(
        self,
        full: np.ndarray | None,
        steps: list,
        root: int,
        out: np.ndarray,
    ) -> None:
        comm, state = self._comm, self._state
        me = comm.rank
        total = steps[-1].global_hi if steps else 0
        if total == 0 or comm.size == 1:
            if me == root:
                assert full is not None
                for step in steps:
                    if step.dst_rank == me:
                        out[step.dst_slice] = full[
                            step.global_lo : step.global_hi
                        ]
            return
        mine = [s for s in steps if s.dst_rank == me]
        if me == root:
            assert full is not None
            arr = np.ascontiguousarray(full[:total])
            seg = state.pool.acquire(arr.nbytes)
            view = np.ndarray((total,), arr.dtype, buffer=seg.buf)
            view[:] = arr
            comm.bcast((seg.name, arr.dtype, total), root)
            for step in mine:
                out[step.dst_slice] = full[step.global_lo : step.global_hi]
            comm.barrier()
            state.pool.release(seg)
            return
        name, dtype, total = comm.bcast(None, root)
        seg = state.attach_cached(name)
        view = np.ndarray((total,), dtype, buffer=seg.buf)
        for step in mine:
            out[step.dst_slice] = view[step.global_lo : step.global_hi]
        comm.barrier()


# ---------------------------------------------------------------------------
# Spawning and supervision
# ---------------------------------------------------------------------------


def _picklable_exception(exc: BaseException) -> BaseException:
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _child_main(
    rank: int,
    size: int,
    name: str,
    fn: Callable[..., Any],
    args: tuple,
    extra: tuple,
    pipes: list[list[Any]],
    up_pairs: list[Any],
    abort_event: Any,
) -> None:
    # Keep only this rank's pipe ends; close the inherited rest.
    readers: dict[int, Any] = {}
    writers: dict[int, Any] = {}
    for src in range(size):
        for dst in range(size):
            if src == dst:
                continue
            r_end, w_end = pipes[src][dst]
            if dst == rank:
                readers[src] = r_end
            else:
                r_end.close()
            if src == rank:
                writers[dst] = w_end
            else:
                w_end.close()
    for r, (r_end, w_end) in enumerate(up_pairs):
        r_end.close()
        if r != rank:
            w_end.close()
    up = up_pairs[rank][1]
    backends.set_process_context(rank, size)
    state = _RankState(
        name, rank, size, readers, writers, up, abort_event
    )
    from repro.rts.executor import RankContext

    comm = ProcComm(state, 0, name)
    status: tuple
    try:
        result = fn(
            RankContext(rank=rank, size=size, comm=comm), *args, *extra
        )
        status = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 - reported via join
        if not isinstance(exc, GroupAbortedError):
            abort_event.set()
        status = ("err", _picklable_exception(exc))
    state.close()
    try:
        up.send(("result",) + status)
    except Exception:
        try:
            up.send(
                (
                    "result",
                    "err",
                    RuntimeError(
                        f"rank {rank} result could not be pickled"
                    ),
                )
            )
        except Exception:
            pass
    up.close()


class ProcHandle:
    """A running (possibly detached) process SPMD group.

    The parent-side mirror of :class:`repro.rts.executor.SpmdHandle`:
    ``join`` returns per-rank results in rank order or raises
    :class:`~repro.rts.executor.SpmdError`; ``abort`` releases blocked
    ranks.  Additionally supervises shared memory: every segment name
    a rank announces is swept (unlinked) when the group ends, however
    it ends — including a rank killed outright.
    """

    def __init__(
        self,
        name: str,
        procs: list[Any],
        up_conns: list[Any],
        abort_event: Any,
    ) -> None:
        self._name = name
        self._procs = procs
        self._up = up_conns
        self._abort_event = abort_event
        self._results: dict[int, Any] = {}
        self._failures: dict[int, BaseException] = {}
        self._segments: set[str] = set()
        self._shm_stats: dict[str, int] = {}
        self._done = False
        import weakref

        self._sweeper = weakref.finalize(
            self, _emergency_cleanup, procs, list(self._segments)
        )

    @property
    def size(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> list[int]:
        return [p.pid for p in self._procs]

    def alive(self) -> bool:
        return any(p.is_alive() for p in self._procs)

    def abort(self, reason: str = "aborted by caller") -> None:
        self._abort_event.set()

    def kill_rank(self, rank: int) -> None:
        """SIGKILL one rank (fault-injection support; no cleanup runs
        in the child — the parent sweep must cover it)."""
        self._procs[rank].kill()

    # -- supervision -------------------------------------------------------

    def _handle_message(self, rank: int, message: tuple) -> None:
        kind = message[0]
        if kind == "reg":
            self._segments.add(message[1])
        elif kind == "unreg":
            self._segments.discard(message[1])
        elif kind == "shmstats":
            shm.merge_retired_stats(message[1])
            for key, value in message[1].items():
                self._shm_stats[key] = (
                    self._shm_stats.get(key, 0) + int(value)
                )
        elif kind == "result":
            _, status, payload = message
            if status == "ok":
                self._results[rank] = payload
            else:
                self._failures[rank] = payload

    def _drain(self, timeout: float) -> None:
        pending = [
            (r, conn)
            for r, conn in enumerate(self._up)
            if conn is not None
        ]
        if not pending:
            time.sleep(min(timeout, _POLL))
            return
        ready = mpconn.wait([conn for _, conn in pending], timeout)
        for rank, conn in pending:
            if conn not in ready:
                continue
            while True:
                try:
                    if not conn.poll(0):
                        break
                    message = conn.recv()
                except (EOFError, OSError):
                    self._up[rank] = None
                    break
                self._handle_message(rank, message)

    def _reported(self, rank: int) -> bool:
        return rank in self._results or rank in self._failures

    def join(self, timeout: float | None = None) -> list[Any]:
        """Wait for every rank; sweep segments; return rank results."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not all(self._reported(r) for r in range(self.size)):
            self._drain(_POLL * 5)
            for rank, proc in enumerate(self._procs):
                if self._reported(rank) or proc.is_alive():
                    continue
                # One more drain: the result may be sitting in the pipe.
                self._drain(0)
                if self._reported(rank):
                    continue
                self._failures[rank] = RankDiedError(
                    f"rank {rank} of '{self._name}' exited with code "
                    f"{proc.exitcode} before reporting a result"
                )
                # Peers blocked on the dead rank must fail, not hang.
                self._abort_event.set()
            if deadline is not None and time.monotonic() > deadline:
                if not all(self._reported(r) for r in range(self.size)):
                    raise TimeoutError(
                        f"SPMD group '{self._name}' did not finish "
                        f"within {timeout} seconds"
                    )
        self._finish()
        from repro.rts.executor import SpmdError

        primary = {
            r: e
            for r, e in self._failures.items()
            if not isinstance(e, GroupAbortedError)
        }
        if primary:
            raise SpmdError(self._name, primary)
        if self._failures:
            raise SpmdError(self._name, dict(self._failures))
        return [self._results[r] for r in range(self.size)]

    def _finish(self) -> None:
        if self._done:
            return
        self._done = True
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=5.0)
        # Everything the ranks will ever say is now in the pipes.
        self._drain(0)
        for conn in self._up:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.sweep_segments()
        self._sweeper.detach()

    def sweep_segments(self) -> int:
        """Unlink every registered-but-not-unregistered segment."""
        swept = 0
        for name in sorted(self._segments):
            if shm.unlink_quietly(name):
                swept += 1
        self._segments.clear()
        return swept

    def shm_stats(self) -> dict[str, int]:
        """Aggregated pool counters reported by joined ranks."""
        return dict(self._shm_stats)


def _emergency_cleanup(procs: list[Any], segments: list[str]) -> None:
    """GC/exit fallback when a handle is dropped without join."""
    for proc in procs:
        if proc.is_alive():
            proc.kill()
    for name in segments:
        shm.unlink_quietly(name)


def spawn_process_group(
    fn: Callable[..., Any],
    nranks: int,
    *args: Any,
    name: str = "spmd",
    rank_args: Sequence[Sequence[Any]] | None = None,
) -> ProcHandle:
    """Start ``fn(ctx, *args)`` on ``nranks`` forked processes.

    The process-backend twin of
    :meth:`repro.rts.executor.SpmdExecutor.spawn`.  Because ranks are
    forked, ``fn`` may be any callable (closures included); results
    and exceptions must be picklable.
    """
    if nranks <= 0:
        raise ValueError("an SPMD group needs at least one rank")
    if rank_args is not None and len(rank_args) != nranks:
        raise ValueError(f"rank_args must have exactly {nranks} entries")
    if not process_backend_supported():
        raise RuntimeError(
            "the process RTS backend requires the 'fork' start method"
        )
    mp = multiprocessing.get_context("fork")
    pipes = [
        [
            mp.Pipe(duplex=False) if src != dst else (None, None)
            for dst in range(nranks)
        ]
        for src in range(nranks)
    ]
    up_pairs = [mp.Pipe(duplex=False) for _ in range(nranks)]
    abort_event = mp.Event()
    procs = []
    for rank in range(nranks):
        extra = tuple(rank_args[rank]) if rank_args is not None else ()
        procs.append(
            mp.Process(
                target=_child_main,
                args=(
                    rank,
                    nranks,
                    name,
                    fn,
                    args,
                    extra,
                    pipes,
                    up_pairs,
                    abort_event,
                ),
                name=f"{name}-{rank}",
                daemon=True,
            )
        )
    for proc in procs:
        proc.start()
    # The parent needs only the uplink read ends; release the rest.
    for src in range(nranks):
        for dst in range(nranks):
            if src == dst:
                continue
            pipes[src][dst][0].close()
            pipes[src][dst][1].close()
    up_conns = []
    for r_end, w_end in up_pairs:
        w_end.close()
        up_conns.append(r_end)
    return ProcHandle(name, procs, up_conns, abort_event)
