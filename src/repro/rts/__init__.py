"""The PARDIS run-time-system (RTS) interface and its implementation.

Paper §2.3: "A generic run-time system interface has therefore been
built into PARDIS libraries and may also be used by the
compiler-generated stubs.  To date only one run-time system interface
has been specified; it encompasses the functionality of
message-passing libraries."

This subpackage provides:

- :mod:`repro.rts.mpi` — a deterministic, thread-based message-passing
  library with the mpi4py surface (lowercase pickling methods and
  uppercase buffer methods, tag matching, full collective set).  It
  plays the role MPICH played in the paper's testbed.
- :mod:`repro.rts.executor` — SPMD execution: run a function over
  ``n`` ranks, one thread per rank, fork-join or detached.
- :mod:`repro.rts.futures` — ABC++-style futures returned by the
  non-blocking stub methods.
- :mod:`repro.rts.interface` — the abstract RTS interface the ORB and
  generated stubs program against, and its message-passing realization.
- :mod:`repro.rts.onesided` — the one-sided (put/get window) RTS
  interface the paper lists as future work.
"""

from repro.rts.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    DeadlockError,
    GroupAbortedError,
    Intracomm,
    MAX,
    MIN,
    PROD,
    Request,
    SUM,
    create_group,
)
from repro.rts.executor import RankContext, SpmdExecutor, SpmdHandle, spmd_run
from repro.rts.futures import Future, FutureError
from repro.rts.interface import MessagePassingRTS, RuntimeSystem
from repro.rts.onesided import OneSidedRTS, Window, WindowError

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveMismatchError",
    "DeadlockError",
    "Future",
    "FutureError",
    "GroupAbortedError",
    "Intracomm",
    "MAX",
    "MIN",
    "MessagePassingRTS",
    "OneSidedRTS",
    "PROD",
    "RankContext",
    "Window",
    "WindowError",
    "Request",
    "RuntimeSystem",
    "SUM",
    "SpmdExecutor",
    "SpmdHandle",
    "create_group",
    "spmd_run",
]
