"""The PARDIS run-time-system (RTS) interface and its implementation.

Paper §2.3: "A generic run-time system interface has therefore been
built into PARDIS libraries and may also be used by the
compiler-generated stubs.  To date only one run-time system interface
has been specified; it encompasses the functionality of
message-passing libraries."

This subpackage provides:

- :mod:`repro.rts.mpi` — a deterministic, thread-based message-passing
  library with the mpi4py surface (lowercase pickling methods and
  uppercase buffer methods, tag matching, full collective set).  It
  plays the role MPICH played in the paper's testbed.
- :mod:`repro.rts.executor` — SPMD execution: run a function over
  ``n`` ranks, one thread per rank, fork-join or detached.
- :mod:`repro.rts.futures` — ABC++-style futures returned by the
  non-blocking stub methods.
- :mod:`repro.rts.interface` — the abstract RTS interface the ORB and
  generated stubs program against, and its message-passing realization.
- :mod:`repro.rts.onesided` — the one-sided (put/get window) RTS
  interface the paper lists as future work.
- :mod:`repro.rts.backends` — backend selection (``PARDIS_RTS``) and
  per-rank execution-context tracking.
- :mod:`repro.rts.procs` — the true-parallel backend: ranks as forked
  processes, large payloads through pooled shared-memory segments.
- :mod:`repro.rts.shm` — the pooled, refcounted shared-memory
  segments underneath the process backend's data plane.
"""

from repro.rts import backends
from repro.rts.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    CollectiveMismatchError,
    DeadlockError,
    GroupAbortedError,
    Intracomm,
    MAX,
    MIN,
    PROD,
    Request,
    SUM,
    create_group,
)
from repro.rts.executor import (
    RankContext,
    SpmdExecutor,
    SpmdHandle,
    spawn_spmd,
    spmd_run,
)
from repro.rts.futures import Future, FutureError
from repro.rts.interface import MessagePassingRTS, RuntimeSystem
from repro.rts.onesided import OneSidedRTS, Window, WindowError
from repro.rts.procs import (
    ProcComm,
    ProcessRTS,
    ProcHandle,
    process_backend_supported,
    spawn_process_group,
)


def rts_for(comm, style: str = "message-passing") -> RuntimeSystem:
    """The right :class:`RuntimeSystem` for ``comm``, whatever backend.

    A :class:`~repro.rts.procs.ProcComm` gets the shared-memory
    :class:`~repro.rts.procs.ProcessRTS`; a thread
    :class:`~repro.rts.mpi.Intracomm` gets the ``style``-selected
    realization (``"message-passing"`` or ``"one-sided"``, the same
    vocabulary as ``ORB.init(rts_style=...)``).
    """
    if isinstance(comm, ProcComm):
        if style == "one-sided":
            raise ValueError(
                "the one-sided RTS is thread-backend only; the process "
                "backend's shm data plane already provides direct "
                "memory placement"
            )
        return ProcessRTS(comm)
    if style == "one-sided":
        return OneSidedRTS(comm)
    if style != "message-passing":
        raise ValueError(
            f"unknown RTS style {style!r}; expected 'message-passing' "
            f"or 'one-sided'"
        )
    return MessagePassingRTS(comm)


__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CollectiveMismatchError",
    "DeadlockError",
    "Future",
    "FutureError",
    "GroupAbortedError",
    "Intracomm",
    "MAX",
    "MIN",
    "MessagePassingRTS",
    "OneSidedRTS",
    "PROD",
    "ProcComm",
    "ProcHandle",
    "ProcessRTS",
    "RankContext",
    "Window",
    "WindowError",
    "Request",
    "RuntimeSystem",
    "SUM",
    "SpmdExecutor",
    "SpmdHandle",
    "backends",
    "create_group",
    "process_backend_supported",
    "rts_for",
    "spawn_process_group",
    "spawn_spmd",
    "spmd_run",
]
