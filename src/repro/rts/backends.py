"""RTS backend selection and the current SPMD execution context.

PARDIS can run an SPMD group two ways:

- ``"thread"`` — every rank is a Python thread in this process (the
  original reproduction substrate; concurrency but, behind the GIL, no
  multi-core compute).
- ``"process"`` — every rank is an OS process
  (:mod:`repro.rts.procs`); ranks exchange large payloads through
  shared-memory segments, so compute *and* transfer scale with cores,
  like the paper's MPI-processes-on-SGI-nodes testbed.

The backend is picked per launch: an explicit ``backend=`` argument to
:func:`repro.rts.spawn_spmd` / :func:`repro.rts.spmd_run` /
:class:`repro.rts.SpmdExecutor` wins, otherwise the ``PARDIS_RTS``
environment variable, otherwise ``"thread"``.  Components that share
in-process state by construction (the ORB's servant groups and
in-process client helpers) pin ``"thread"`` explicitly.

This module also tracks *where the caller currently runs*: launchers
register each rank's identity (backend, rank, size) — thread ranks in
a thread-local, process ranks process-globally — so ``orb.stats()``
and :mod:`repro.trace` spans can tag measurements with the backend
that produced them.
"""

from __future__ import annotations

import os
import threading
from typing import Any

#: The valid backend names.
THREAD = "thread"
PROCESS = "process"
BACKENDS = (THREAD, PROCESS)

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "PARDIS_RTS"

#: Identity of a rank running in this *process* (set by the process
#: backend's child bootstrap; the parent keeps the default).
_process_context: dict[str, Any] = {}

#: Identity of a rank running on this *thread* (set by the thread
#: backend's rank bodies; empty elsewhere).
_thread_context = threading.local()


def resolve_backend(backend: str | None = None) -> str:
    """The backend a launcher should use: explicit > env > thread."""
    chosen = backend if backend is not None else os.environ.get(ENV_VAR)
    if chosen is None or chosen == "":
        return THREAD
    if chosen not in BACKENDS:
        raise ValueError(
            f"unknown RTS backend {chosen!r}; expected one of {BACKENDS}"
        )
    return chosen


def set_thread_context(rank: int, size: int) -> None:
    """Mark the calling thread as rank ``rank`` of a thread group."""
    _thread_context.ctx = {"backend": THREAD, "rank": rank, "size": size}


def clear_thread_context() -> None:
    """Drop this thread's rank context when its SPMD body returns."""
    _thread_context.ctx = None


def set_process_context(rank: int, size: int) -> None:
    """Mark this whole process as rank ``rank`` of a process group."""
    _process_context.update(
        {"backend": PROCESS, "rank": rank, "size": size}
    )


def current_context() -> dict[str, Any]:
    """Identity of the caller: backend name, rank, size.

    Inside a thread-backend rank body this is that rank's identity; in
    a process-backend child it is the child's rank; anywhere else it
    is the serial default (the backend a bare launch would resolve to,
    rank 0 of 1).
    """
    ctx = getattr(_thread_context, "ctx", None)
    if ctx is not None:
        return dict(ctx)
    if _process_context:
        return dict(_process_context)
    return {"backend": resolve_backend(), "rank": 0, "size": 1}


def current_backend() -> str:
    """The backend name of the calling rank (cheap; used by spans)."""
    ctx = getattr(_thread_context, "ctx", None)
    if ctx is not None:
        return ctx["backend"]
    if _process_context:
        return PROCESS
    return THREAD


def active_backend() -> str | None:
    """Like :func:`current_backend`, but None outside any SPMD rank.

    Trace spans use this so serial-code spans stay untagged: a tag
    asserts "this measurement ran on rank R of backend B", which is
    only meaningful inside a launched group.
    """
    ctx = getattr(_thread_context, "ctx", None)
    if ctx is not None:
        return ctx["backend"]
    if _process_context:
        return PROCESS
    return None


def rts_stats() -> dict[str, Any]:
    """The ``rts`` section of ``orb.stats()``: identity + shm pool."""
    from repro.rts import shm

    info = current_context()
    info["shm"] = shm.pool_stats()
    return info
