"""SPMD execution: run a function over ``n`` ranks.

The paper's computing threads — "a collaboration of computing threads,
each of which is working on a similar task" — map to Python threads
here.  :func:`spmd_run` is the fork-join entry point used by examples
and tests; :class:`SpmdExecutor` additionally supports detached groups
(an SPMD *server* keeps running its dispatch loop until shut down).

Since PR 7 a group can also run with every rank an OS *process*
(:mod:`repro.rts.procs`), which is what unlocks multi-core compute.
The ``backend`` argument — or the ``PARDIS_RTS`` environment variable,
see :mod:`repro.rts.backends` — selects per launch; the spawned
handle's surface (``join``/``abort``/``alive``) is identical either
way, so callers need not care which they got.

Error containment: when any rank raises, the group is aborted so peers
blocked in sends/receives/collectives fail fast with
:class:`~repro.rts.mpi.GroupAbortedError` instead of hanging, and the
original exception is re-raised to the caller.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.rts import backends
from repro.rts.mpi import GroupAbortedError, Intracomm, create_group


@dataclass
class RankContext:
    """Everything a rank's function receives: identity plus comm."""

    rank: int
    size: int
    comm: Intracomm

    def __repr__(self) -> str:
        return f"<RankContext {self.rank}/{self.size}>"


class SpmdError(RuntimeError):
    """A rank of an SPMD run raised; carries the per-rank failures."""

    def __init__(
        self, name: str, failures: dict[int, BaseException]
    ) -> None:
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}"
            for r, e in sorted(failures.items())
        )
        super().__init__(f"SPMD group '{name}' failed — {detail}")
        self.failures = failures


class SpmdHandle:
    """A running (possibly detached) SPMD group."""

    def __init__(
        self,
        name: str,
        comms: list[Intracomm],
        threads: list[threading.Thread],
        results: list[Any],
        failures: dict[int, BaseException],
    ) -> None:
        self._name = name
        self._comms = comms
        self._threads = threads
        self._results = results
        self._failures = failures

    @property
    def size(self) -> int:
        return len(self._threads)

    def alive(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    def join(self, timeout: float | None = None) -> list[Any]:
        """Wait for all ranks; return per-rank results in rank order.

        Raises :class:`SpmdError` if any rank raised (peer aborts are
        folded into the primary failure rather than reported alongside
        it).
        """
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                raise TimeoutError(
                    f"SPMD group '{self._name}' did not finish within "
                    f"{timeout} seconds"
                )
        primary = {
            r: e
            for r, e in self._failures.items()
            if not isinstance(e, GroupAbortedError)
        }
        if primary:
            raise SpmdError(self._name, primary)
        if self._failures:
            # Only abort echoes — surface them as-is.
            raise SpmdError(self._name, dict(self._failures))
        return list(self._results)

    def abort(self, reason: str = "aborted by caller") -> None:
        """Abort the group: blocked ranks raise GroupAbortedError."""
        if self._comms:
            self._comms[0].abort(reason)


class SpmdExecutor:
    """Factory for SPMD groups of a fixed size.

    ``backend`` may be ``"thread"``, ``"process"``, or None (consult
    ``PARDIS_RTS``, default thread).  Process groups are spawned via
    :func:`repro.rts.procs.spawn_process_group` and return a
    :class:`repro.rts.procs.ProcHandle`, whose join/abort surface
    matches :class:`SpmdHandle`.
    """

    def __init__(
        self,
        nranks: int,
        name: str = "spmd",
        backend: str | None = None,
    ) -> None:
        if nranks <= 0:
            raise ValueError("an SPMD group needs at least one rank")
        self.nranks = nranks
        self.name = name
        self.backend = backend

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        rank_args: Sequence[Sequence[Any]] | None = None,
    ):
        """Start ``fn(ctx, *args)`` on every rank; return immediately.

        ``rank_args`` optionally appends per-rank positional arguments
        (entry ``r`` goes to rank ``r``).
        """
        if rank_args is not None and len(rank_args) != self.nranks:
            raise ValueError(
                f"rank_args must have exactly {self.nranks} entries"
            )
        if backends.resolve_backend(self.backend) == backends.PROCESS:
            from repro.rts.procs import spawn_process_group

            return spawn_process_group(
                fn,
                self.nranks,
                *args,
                name=self.name,
                rank_args=rank_args,
            )
        comms = create_group(self.nranks, self.name)
        results: list[Any] = [None] * self.nranks
        failures: dict[int, BaseException] = {}
        failure_lock = threading.Lock()

        def body(rank: int) -> None:
            ctx = RankContext(rank=rank, size=self.nranks, comm=comms[rank])
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            backends.set_thread_context(rank, self.nranks)
            try:
                results[rank] = fn(ctx, *args, *extra)
            except BaseException as exc:  # noqa: BLE001 - reported via join
                with failure_lock:
                    failures[rank] = exc
                if not isinstance(exc, GroupAbortedError):
                    comms[rank].abort(
                        f"rank {rank} raised {type(exc).__name__}: {exc}"
                    )
            finally:
                backends.clear_thread_context()

        threads = [
            threading.Thread(
                target=body,
                args=(rank,),
                name=f"{self.name}-{rank}",
                daemon=True,
            )
            for rank in range(self.nranks)
        ]
        for thread in threads:
            thread.start()
        return SpmdHandle(self.name, comms, threads, results, failures)

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        timeout: float | None = 120.0,
        rank_args: Sequence[Sequence[Any]] | None = None,
    ) -> list[Any]:
        """Fork-join: spawn, wait, return per-rank results."""
        return self.spawn(fn, *args, rank_args=rank_args).join(timeout)


def spmd_run(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    name: str = "spmd",
    timeout: float | None = 120.0,
    backend: str | None = None,
) -> list[Any]:
    """Run ``fn(ctx, *args)`` over ``nranks`` ranks and join.

    The convenience entry point::

        def body(ctx):
            return ctx.comm.allreduce(ctx.rank)

        totals = spmd_run(4, body)   # [6, 6, 6, 6]
    """
    return SpmdExecutor(nranks, name, backend=backend).run(
        fn, *args, timeout=timeout
    )


def spawn_spmd(
    fn: Callable[..., Any],
    size: int,
    *args: Any,
    backend: str | None = None,
    name: str = "spmd",
    rank_args: Sequence[Sequence[Any]] | None = None,
):
    """Launch a detached SPMD group on the chosen backend.

    The ISSUE-7 launcher: ``spawn_spmd(fn, 4, backend="process")``
    starts four forked rank processes and returns a handle;
    ``backend=None`` consults ``PARDIS_RTS`` and defaults to threads.
    ``handle.join()`` returns per-rank results in rank order.
    """
    return SpmdExecutor(size, name, backend=backend).spawn(
        fn, *args, rank_args=rank_args
    )
