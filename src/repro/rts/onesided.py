"""One-sided RTS interface — the paper's planned second interface.

§2.3: "In the future PARDIS will provide an alternative run-time
system interface capturing the functionality of the more flexible
one-sided run-time systems", and §2.2 notes that SPMD-style collective
sequence access exists only because message-passing systems "cannot
handle asynchronous access to an arbitrary context".

This module supplies that alternative: :class:`Window` exposes a
rank's memory for remote ``put``/``get``/``accumulate`` without the
owner's participation (MPI-2 RMA semantics with passive-target
locking), and :class:`OneSidedRTS` realizes the
:class:`~repro.rts.interface.RuntimeSystem` contract over windows, so
the ORB's gathers and scatters can run one-sided.  On top of it,
distributed sequences gain truly asynchronous element access
(:func:`remote_element`), lifting the collective-access restriction.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.dist.schedule import TransferStep
from repro.rts.interface import RuntimeSystem
from repro.rts.mpi import Intracomm


class WindowError(RuntimeError):
    """Out-of-range access or misuse of a window."""


class _WindowState:
    """Group-shared state: every rank's exposed buffer and lock."""

    def __init__(self, size: int) -> None:
        self.buffers: list[np.ndarray | None] = [None] * size
        self.locks = [threading.RLock() for _ in range(size)]
        self.attached = threading.Barrier(size)


class Window:
    """A per-rank handle onto group-wide exposed memory.

    Creation is collective (:meth:`create`); afterwards any rank may
    ``put``/``get``/``accumulate`` against any target rank without
    that rank's involvement — the defining one-sided property.  Each
    access takes the target's lock (passive-target exclusive lock), so
    concurrent accesses to one target serialize.
    """

    def __init__(
        self, state: _WindowState, rank: int, comm: Intracomm
    ) -> None:
        self._state = state
        self._rank = rank
        self._comm = comm

    @classmethod
    def create(cls, comm: Intracomm, local: np.ndarray) -> "Window":
        """Collective.  Expose ``local`` (aliased, not copied) to the
        group."""
        local = np.asarray(local)
        if local.ndim != 1:
            raise WindowError("windows expose one-dimensional buffers")
        # Rank 0 allocates the shared state; everyone learns it via
        # the collective board (same mechanism as Intracomm.dup).
        state = (
            _WindowState(comm.size) if comm.rank == 0 else None
        )
        board = comm._collective("window-create", state)
        shared: _WindowState = board[0]
        shared.buffers[comm.rank] = local
        shared.attached.wait()
        return cls(shared, comm.rank, comm)

    # -- introspection ---------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._comm.size

    def local(self) -> np.ndarray:
        buffer = self._state.buffers[self._rank]
        assert buffer is not None
        return buffer

    def _target(self, rank: int) -> np.ndarray:
        if not 0 <= rank < self.size:
            raise WindowError(f"target rank {rank} outside group")
        buffer = self._state.buffers[rank]
        if buffer is None:
            raise WindowError(f"rank {rank} has no attached buffer")
        return buffer

    def _check_range(
        self, buffer: np.ndarray, offset: int, count: int
    ) -> None:
        if offset < 0 or count < 0 or offset + count > len(buffer):
            raise WindowError(
                f"access [{offset}, {offset + count}) outside window "
                f"of {len(buffer)} elements"
            )

    # -- RMA operations ----------------------------------------------------

    def get(self, target: int, offset: int, count: int) -> np.ndarray:
        """Read ``count`` elements at ``offset`` from ``target``'s
        window; the target does not participate."""
        buffer = self._target(target)
        self._check_range(buffer, offset, count)
        with self._state.locks[target]:
            return buffer[offset : offset + count].copy()

    def put(self, target: int, offset: int, data: np.ndarray) -> None:
        """Write ``data`` into ``target``'s window at ``offset``."""
        data = np.asarray(data)
        buffer = self._target(target)
        self._check_range(buffer, offset, len(data))
        with self._state.locks[target]:
            buffer[offset : offset + len(data)] = data

    def accumulate(
        self, target: int, offset: int, data: np.ndarray
    ) -> None:
        """Atomic element-wise add into the target window (MPI_SUM)."""
        data = np.asarray(data)
        buffer = self._target(target)
        self._check_range(buffer, offset, len(data))
        with self._state.locks[target]:
            buffer[offset : offset + len(data)] += data

    def fence(self) -> None:
        """Collective.  Orders all preceding RMA against all ranks'
        subsequent local reads (MPI_Win_fence)."""
        self._comm.barrier()


class OneSidedRTS(RuntimeSystem):
    """The RuntimeSystem contract realized one-sided.

    Gather and scatter become sequences of ``get``/``put`` driven
    entirely by the root (or by each owner), with fences standing in
    for the message-passing version's sends and receives.  The ORB can
    swap this in wherever :class:`MessagePassingRTS` is used; both are
    tested against the same contract suite.
    """

    def __init__(self, comm: Intracomm) -> None:
        self._comm = comm

    @property
    def comm(self) -> Intracomm:
        return self._comm

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def synchronize(self) -> None:
        self._comm.barrier()

    def broadcast(self, obj: Any, root: int) -> Any:
        return self._comm.bcast(obj, root=root)

    def allgather(self, obj: Any) -> list[Any]:
        return self._comm.allgather(obj)

    def gather_chunks(
        self,
        local: np.ndarray,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        window = Window.create(self._comm, np.ascontiguousarray(local))
        window.fence()  # all buffers attached and filled
        result: np.ndarray | None = None
        if self.rank == root:
            total = steps[-1].global_hi if steps else 0
            result = (
                out
                if out is not None
                else np.zeros(total, dtype=local.dtype)
            )
            for step in steps:
                result[step.global_lo : step.global_hi] = window.get(
                    step.src_rank, step.src_offset, step.nelems
                )
        window.fence()  # root done reading; windows may be reused
        return result

    def scatter_chunks(
        self,
        full: np.ndarray | None,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray,
    ) -> None:
        window = Window.create(self._comm, out)
        window.fence()
        if self.rank == root:
            assert full is not None
            for step in steps:
                window.put(
                    step.dst_rank,
                    step.dst_offset,
                    full[step.global_lo : step.global_hi],
                )
        window.fence()  # targets may not read `out` before this


def remote_element(seq: Any, index: int, window: Window) -> float:
    """Asynchronously read one element of a distributed sequence via a
    window over its local blocks — the access style the paper's
    collective-only mapping could not offer (§2.2)."""
    layout = seq.layout
    owner = layout.owner_of(index)
    lo, _hi = layout.local_range(owner)
    return float(window.get(owner, index - lo, 1)[0])
