"""The generic run-time-system interface of paper §2.3.

"In order to provide support for interaction with SPMD objects and
distributed sequences, PARDIS may need to issue calls to the run-time
system underlying a parallel application.  A generic run-time system
interface has therefore been built into PARDIS libraries and may also
be used by the compiler-generated stubs."

:class:`RuntimeSystem` is that interface: the small set of operations
the ORB and generated stubs need from whatever parallel package the
application is built on.  :class:`MessagePassingRTS` realizes it over
the message-passing library (the paper's only specified interface,
"tested using applications based on MPI and the Tulip run-time
system"); :mod:`repro.rts.onesided` adds the one-sided realization the
paper lists as future work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.dist.schedule import TransferStep
from repro.rts.mpi import Intracomm

#: Tag namespace for RTS-internal traffic performed on behalf of the
#: ORB (gathers/scatters of distributed arguments).
_TAG_RTS = 1 << 21


class RuntimeSystem(ABC):
    """What PARDIS needs from the application's run-time system."""

    #: Which execution substrate carries this RTS's ranks
    #: (``"thread"`` or ``"process"``); the process backend overrides.
    backend = "thread"

    @property
    @abstractmethod
    def rank(self) -> int:
        """This computing thread's rank within the application."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of computing threads of the application."""

    @abstractmethod
    def synchronize(self) -> None:
        """Group-wide barrier (pre/post-invocation synchronization)."""

    @abstractmethod
    def broadcast(self, obj: Any, root: int) -> Any:
        """Deliver ``obj`` from ``root`` to every computing thread."""

    @abstractmethod
    def gather_chunks(
        self,
        local: np.ndarray,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        """Gather distributed-argument chunks onto ``root``.

        ``steps`` is a transfer schedule whose destination is a
        single-rank layout; each source rank contributes the pieces of
        ``local`` the schedule assigns it.  Only ``root`` receives the
        assembled array (into ``out`` when provided).
        """

    @abstractmethod
    def scatter_chunks(
        self,
        full: np.ndarray | None,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray,
    ) -> None:
        """Scatter from an assembled array on ``root`` into per-rank
        ``out`` blocks, following a single-source schedule."""

    def allgather(self, obj: Any) -> list[Any]:
        """Every thread's ``obj``, by rank, on every thread.

        The fault-tolerance agreement protocol votes through this
        call.  The default realizes it as ``size`` broadcasts, which
        any RTS supports; concrete systems override with their native
        collective.
        """
        return [
            self.broadcast(obj if self.rank == root else None, root)
            for root in range(self.size)
        ]


class MessagePassingRTS(RuntimeSystem):
    """Message-passing realization over :class:`Intracomm`.

    This is the reproduction of the paper's MPI-backed RTS interface:
    the centralized transfer method's gathers and scatters run through
    these calls, exactly as the paper's communicating thread drives
    MPICH.
    """

    def __init__(self, comm: Intracomm) -> None:
        self._comm = comm

    @property
    def comm(self) -> Intracomm:
        return self._comm

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def synchronize(self) -> None:
        self._comm.barrier()

    def broadcast(self, obj: Any, root: int) -> Any:
        return self._comm.bcast(obj, root=root)

    def allgather(self, obj: Any) -> list[Any]:
        return self._comm.allgather(obj)

    def gather_chunks(
        self,
        local: np.ndarray,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray | None,
    ) -> np.ndarray | None:
        me = self.rank
        mine = [s for s in steps if s.src_rank == me]
        if me == root:
            total = steps[-1].global_hi if steps else 0
            if out is None:
                out = np.zeros(total, dtype=local.dtype)
            for step in mine:
                out[step.global_lo : step.global_hi] = local[step.src_slice]
            pending = sorted(
                (s for s in steps if s.src_rank != me),
                key=lambda s: s.src_rank,
            )
            for step in pending:
                chunk = self._comm.recv(source=step.src_rank, tag=_TAG_RTS)
                out[step.global_lo : step.global_hi] = chunk
            return out
        for step in mine:
            self._comm.send(
                local[step.src_slice].copy(), dest=root, tag=_TAG_RTS
            )
        return None

    def scatter_chunks(
        self,
        full: np.ndarray | None,
        steps: list[TransferStep],
        root: int,
        out: np.ndarray,
    ) -> None:
        me = self.rank
        if me == root:
            assert full is not None
            for step in steps:
                chunk = full[step.global_lo : step.global_hi]
                if step.dst_rank == me:
                    out[step.dst_slice] = chunk
                else:
                    self._comm.send(
                        chunk.copy(), dest=step.dst_rank, tag=_TAG_RTS
                    )
            return
        mine = sorted(
            (s for s in steps if s.dst_rank == me),
            key=lambda s: s.global_lo,
        )
        for step in mine:
            chunk = self._comm.recv(source=root, tag=_TAG_RTS)
            out[step.dst_slice] = chunk
