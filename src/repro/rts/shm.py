"""Pooled, refcounted shared-memory segments for the process backend.

The process RTS moves every large payload through POSIX shared memory
(``multiprocessing.shared_memory``) instead of pickling it across a
pipe: the producing rank writes straight into a segment, consumers map
the same physical pages, and only a tiny descriptor (name, dtype,
shape) crosses the control plane.

Hygiene is the hard part, and it is handled on three levels:

1. **Tracker opt-out.**  CPython's ``resource_tracker`` registers every
   ``SharedMemory`` *attach* as an owned segment, which makes it warn
   about — and unlink — segments that a sibling process still uses.
   Every create/attach here is immediately unregistered
   (:func:`untrack`); PARDIS manages segment lifetime itself.
2. **Pooling + refcounts.**  Segments come from a per-process
   :class:`ShmPool` keyed by size class.  A zero-copy array returned to
   the application holds a :class:`SegmentLease`; the segment returns
   to the free list only when the last lease dies, so reuse can never
   overwrite live data.
3. **Supervisor sweep.**  Ranks report every name they create to the
   parent process *before* first use and report unlinks back
   (:mod:`repro.rts.procs`).  When the group ends — normally, by
   abort, or because a rank was SIGKILLed mid-operation — the parent
   unlinks every name still registered.  No ``/dev/shm`` entry
   outlives the group.

All segment names carry :data:`NAME_PREFIX`, so tests can assert that
``/dev/shm`` holds no PARDIS segments after a suite run.
"""

from __future__ import annotations

import itertools
import os
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable

import numpy as np

#: Every PARDIS segment name starts with this (followed by the
#: creating pid and a counter), so leak checks can filter /dev/shm.
NAME_PREFIX = "pardis_shm"

#: Payloads at or above this many bytes ride in shared memory; smaller
#: ones are cheaper to pickle straight through the pipe.
SHM_THRESHOLD = 32 * 1024

_counter = itertools.count()

#: Process-wide pool accounting, including pools that were already
#: closed and stats merged back from joined child ranks, so
#: ``orb.stats()["rts"]["shm"]`` in a parent reflects the whole run.
_stats_lock = threading.Lock()
_retired_stats = {"allocated": 0, "reused": 0, "freed": 0}
_live_pools: list["ShmPool"] = []


def untrack(seg: shared_memory.SharedMemory) -> None:
    """Remove ``seg`` from the resource tracker's ledger.

    Attaching registers the segment as if this process owned it; left
    in place, a child's exit would unlink segments the group still
    uses and the interpreter would warn about "leaked" objects that
    are in fact owned elsewhere.  Lifetime is managed by the pool and
    the supervisor sweep instead.
    """
    try:
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a fresh, untracked segment with a PARDIS name."""
    while True:
        name = f"{NAME_PREFIX}_{os.getpid()}_{next(_counter):x}"
        try:
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=max(nbytes, 1)
            )
        except FileExistsError:
            # A stale segment from a recycled pid; claim the next name.
            continue
        untrack(seg)
        return seg


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership."""
    seg = shared_memory.SharedMemory(name=name)
    untrack(seg)
    return seg


def unlink_segment(seg: shared_memory.SharedMemory) -> None:
    """Unlink an *untracked* segment, keeping the tracker balanced.

    ``SharedMemory.unlink`` unregisters from the resource tracker as a
    side effect; since every segment here was untracked at creation,
    re-register first so the tracker's ledger never goes negative (a
    stray unregister makes the tracker process log ``KeyError``).
    """
    try:
        resource_tracker.register(seg._name, "shared_memory")
    except Exception:
        pass
    try:
        seg.unlink()
    except FileNotFoundError:
        # shm_unlink failed before the stdlib's unregister ran.
        untrack(seg)


def unlink_quietly(name: str) -> bool:
    """Unlink ``name`` if it still exists; True when removed."""
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    untrack(seg)
    unlink_segment(seg)
    _close_quietly(seg)
    return True


def _close_quietly(seg: shared_memory.SharedMemory) -> None:
    try:
        seg.close()
    except BufferError:
        # A view is still exported; the mapping dies with the process.
        pass


def leaked_segments(prefixes: tuple[str, ...] = (NAME_PREFIX, "psm_")) -> list[str]:
    """Names under ``/dev/shm`` matching ``prefixes`` (Linux only)."""
    try:
        entries = os.listdir("/dev/shm")
    except FileNotFoundError:
        return []
    return sorted(
        e for e in entries if any(e.startswith(p) for p in prefixes)
    )


class SegmentLease:
    """Keeps one pooled segment checked out while references exist.

    NumPy views handed to the application carry the lease on a
    subclass attribute; when the last view is collected the lease's
    finalizer returns the segment to its pool for reuse.
    """

    __slots__ = ("_release", "_done")

    def __init__(self, release: Callable[[], None]) -> None:
        self._release = release
        self._done = False

    def release(self) -> None:
        if not self._done:
            self._done = True
            self._release()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.release()


class ShmArray(np.ndarray):
    """An ndarray whose storage is a leased shm segment.

    Behaves exactly like ``ndarray``; the extra ``_pardis_lease``
    attribute pins the segment until the last view dies.  Pickling
    (e.g. returning one from a process-backend rank body) copies the
    data and drops the lease, as it must.
    """

    _pardis_lease: Any = None


def leased_view(arr: np.ndarray, lease: SegmentLease) -> ShmArray:
    """Return ``arr`` as a view that keeps ``lease`` alive."""
    view = arr.view(ShmArray)
    view._pardis_lease = lease
    return view


def _size_class(nbytes: int) -> int:
    """Round a request up to a power-of-two class (min 4 KiB)."""
    size = 4096
    while size < nbytes:
        size <<= 1
    return size


class ShmPool:
    """A per-process pool of reusable shared-memory segments.

    ``on_register(name)`` / ``on_unregister(name)`` hook the parent
    supervisor's registry: every created name is announced *before*
    the segment is first used and withdrawn when actually unlinked,
    so a SIGKILL at any instant leaves the parent able to sweep.
    """

    def __init__(
        self,
        on_register: Callable[[str], None] | None = None,
        on_unregister: Callable[[str], None] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._free: dict[int, list[shared_memory.SharedMemory]] = {}
        self._owned: dict[str, shared_memory.SharedMemory] = {}
        self._on_register = on_register
        self._on_unregister = on_unregister
        self._closed = False
        self.allocated = 0
        self.reused = 0
        self.freed = 0
        with _stats_lock:
            _live_pools.append(self)

    # -- checkout / return -------------------------------------------------

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes``; reused when possible."""
        size = _size_class(nbytes)
        with self._lock:
            bucket = self._free.get(size)
            if bucket:
                self.reused += 1
                return bucket.pop()
        if self._on_register is not None:
            # Announce the name *before* creation: if this rank dies
            # between the two steps the sweep's unlink is a no-op.
            name = f"{NAME_PREFIX}_{os.getpid()}_{next(_counter):x}"
            self._on_register(name)
            try:
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=max(size, 1)
                )
            except FileExistsError:
                seg = create_segment(size)
                self._on_register(seg.name)
            else:
                untrack(seg)
        else:
            seg = create_segment(size)
        with self._lock:
            self._owned[seg.name] = seg
            self.allocated += 1
        return seg

    def release(self, seg: shared_memory.SharedMemory) -> None:
        """Return a segment to the free list (or unlink if closed)."""
        with self._lock:
            if not self._closed and seg.name in self._owned:
                self._free.setdefault(seg.size, []).append(seg)
                return
        self._unlink(seg)

    def lease(self, seg: shared_memory.SharedMemory) -> SegmentLease:
        return SegmentLease(lambda: self.release(seg))

    # -- lifecycle ---------------------------------------------------------

    def _unlink(self, seg: shared_memory.SharedMemory) -> None:
        name = seg.name
        unlink_segment(seg)
        _close_quietly(seg)
        with self._lock:
            self._owned.pop(name, None)
            self.freed += 1
        if self._on_unregister is not None:
            self._on_unregister(name)

    def close(self) -> None:
        """Unlink every owned segment (leased ones included).

        Called at rank shutdown; outstanding zero-copy views keep
        their mapping (the pages survive until the process exits) but
        the names disappear from ``/dev/shm`` immediately.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned = list(self._owned.values())
            self._free.clear()
        for seg in owned:
            self._unlink(seg)
        with _stats_lock:
            if self in _live_pools:
                _live_pools.remove(self)
            _retired_stats["allocated"] += self.allocated
            _retired_stats["reused"] += self.reused
            _retired_stats["freed"] += self.freed

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "allocated": self.allocated,
                "reused": self.reused,
                "freed": self.freed,
                "active": len(self._owned),
            }


def merge_retired_stats(stats: dict[str, int]) -> None:
    """Fold a joined child rank's pool counters into this process."""
    with _stats_lock:
        for key in ("allocated", "reused", "freed"):
            _retired_stats[key] += int(stats.get(key, 0))


def pool_stats() -> dict[str, int]:
    """Process-wide segment accounting (live pools + retired)."""
    with _stats_lock:
        totals = dict(_retired_stats)
        totals["active"] = 0
        pools = list(_live_pools)
    for pool in pools:
        snap = pool.stats()
        for key in ("allocated", "reused", "freed", "active"):
            totals[key] += snap[key]
    return totals
