"""Wire-path microbenchmark: functional-plane roundtrip bandwidth.

Unlike the :mod:`repro.simnet` tables (simulated 1997 hardware), this
benchmark times the *real* marshaling and transport pipeline of this
reproduction: a serial client invokes ``roundtrip(in payload)`` on a
serial servant, so every measured byte crosses the full CDR → message
→ fabric → decode path twice (request and reply).

Two fabrics are measured with the identical Port contract:

- ``inproc`` — the in-process :class:`~repro.orb.transport.Fabric`;
- ``socket`` — two :class:`~repro.orb.socketnet.SocketFabric`
  instances joined over TCP loopback.

Besides wall-clock MB/s, each point runs under
:func:`repro.cdr.accounting.copy_audit` and reports **bytes copied
per payload byte** — the zero-copy pipeline's figure of merit (see
``docs/performance.md``).  The denominator counts the payload once
per direction (2 × size × iterations).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

from repro.cdr.accounting import copy_audit

#: The echoed operation; bounded at the sweep's 16 MiB ceiling
#: (2**21 doubles) so the run-time system can preallocate.
WIREPATH_IDL = """
typedef dsequence<double, 2097152> payload;

interface wireecho {
    payload roundtrip(in payload data);
};
"""

#: Default sweep: 1 KiB to 16 MiB (element count = bytes / 8).
DEFAULT_SIZES = [1 << e for e in range(10, 25, 2)]

#: Small-size subset for CI smoke runs.
SMOKE_SIZES = [1 << 10, 1 << 14, 1 << 18]


@dataclass(frozen=True)
class WirepathPoint:
    """One (fabric, size) measurement."""

    fabric: str
    size_bytes: int
    iterations: int
    seconds: float
    #: Payload megabytes moved per second (both directions count).
    mb_per_s: float
    #: Total bytes physically copied during the timed loop.
    bytes_copied: int
    #: Copy events during the timed loop.
    copy_events: int
    #: bytes_copied / (2 * size_bytes * iterations).
    copies_per_payload_byte: float
    #: RTS backend the client ran on (``thread`` or ``process``).
    rts: str = "thread"


def _compiled_idl() -> Any:
    from repro import compile_idl

    return compile_idl(WIREPATH_IDL, module_name="wirepath_idl")


def _make_servant_factory(idl: Any) -> Any:
    class EchoServant(idl.wireecho_skel):
        def roundtrip(self, data: Any) -> Any:
            return data

    return lambda ctx: EchoServant()


def _measure(
    proxy: Any,
    idl: Any,
    fabric_label: str,
    size_bytes: int,
    iterations: int,
    warmup: int,
    rts: str = "thread",
) -> WirepathPoint:
    n = max(size_bytes // 8, 1)
    arr = np.arange(n, dtype=np.float64)
    data = idl.payload.from_global(arr)
    for _ in range(warmup):
        result = proxy.roundtrip(data)
        if result.length() != n:
            raise RuntimeError("wirepath echo returned a wrong length")
    with copy_audit() as account:
        start = time.perf_counter()
        for _ in range(iterations):
            proxy.roundtrip(data)
        seconds = time.perf_counter() - start
    moved = 2 * n * 8 * iterations
    bytes_copied, copy_events = account.snapshot()
    return WirepathPoint(
        fabric=fabric_label,
        size_bytes=n * 8,
        iterations=iterations,
        seconds=seconds,
        mb_per_s=moved / seconds / 1e6,
        bytes_copied=bytes_copied,
        copy_events=copy_events,
        copies_per_payload_byte=bytes_copied / moved,
        rts=rts,
    )


def run_wirepath(
    fabric: str = "inproc",
    sizes: list[int] | None = None,
    iterations: int = 5,
    warmup: int = 1,
    rts_backend: str = "thread",
) -> list[WirepathPoint]:
    """Run the sweep on one fabric and return the measured points.

    ``rts_backend="process"`` runs the *client* as a forked
    process-backend rank talking to the server over TCP (socket
    fabric only): a true two-process measurement, with copy
    accounting done inside the client process.
    """
    from repro import ORB

    idl = _compiled_idl()
    sizes = sizes or DEFAULT_SIZES
    if rts_backend not in ("thread", "process"):
        raise ValueError(f"unknown RTS backend {rts_backend!r}")
    if rts_backend == "process":
        if fabric != "socket":
            raise ValueError(
                "rts_backend='process' needs fabric='socket': the "
                "in-process fabric cannot span OS processes"
            )
        return _run_wirepath_process(idl, sizes, iterations, warmup)
    points: list[WirepathPoint] = []
    if fabric == "inproc":
        with ORB("wirepath") as orb:
            orb.serve(
                "wireecho", _make_servant_factory(idl), nthreads=1
            )
            runtime = orb.client_runtime(label="wirepath-client")
            proxy = idl.wireecho._bind("wireecho", runtime)
            for size in sizes:
                points.append(
                    _measure(
                        proxy, idl, fabric, size, iterations, warmup
                    )
                )
            runtime.close()
    elif fabric == "socket":
        from repro.orb.naming import NamingService
        from repro.orb.socketnet import SocketFabric

        naming = NamingService()
        with SocketFabric("wirepath-server") as server_fabric, \
                SocketFabric("wirepath-client") as client_fabric:
            server_orb = ORB(
                "wirepath-server", fabric=server_fabric, naming=naming
            )
            client_orb = ORB(
                "wirepath-client", fabric=client_fabric, naming=naming
            )
            with server_orb, client_orb:
                server_orb.serve(
                    "wireecho", _make_servant_factory(idl), nthreads=1
                )
                runtime = client_orb.client_runtime(
                    label="wirepath-client"
                )
                proxy = idl.wireecho._bind("wireecho", runtime)
                for size in sizes:
                    points.append(
                        _measure(
                            proxy, idl, fabric, size, iterations, warmup
                        )
                    )
                runtime.close()
    else:
        raise ValueError(f"unknown fabric {fabric!r}")
    return points


def _run_wirepath_process(
    idl: Any,
    sizes: list[int],
    iterations: int,
    warmup: int,
) -> list[WirepathPoint]:
    """Socket sweep with the client in a forked process rank."""
    from repro import ORB
    from repro.orb.socketnet import (
        NamingServer,
        RemoteNamingClient,
        SocketFabric,
    )
    from repro.rts import spawn_spmd

    with NamingServer() as names, \
            SocketFabric("wirepath-server") as server_fabric:
        host, port = names.host, names.tcp_port
        server_orb = ORB(
            "wirepath-server",
            fabric=server_fabric,
            naming=RemoteNamingClient(host, port),
        )
        with server_orb:
            server_orb.serve(
                "wireecho", _make_servant_factory(idl), nthreads=1
            )

            def client_body(ctx: Any) -> list[WirepathPoint]:
                with SocketFabric("wirepath-client") as client_fabric:
                    client_orb = ORB(
                        "wirepath-client",
                        fabric=client_fabric,
                        naming=RemoteNamingClient(host, port),
                    )
                    with client_orb:
                        runtime = client_orb.client_runtime(
                            label="wirepath-client"
                        )
                        try:
                            proxy = idl.wireecho._bind(
                                "wireecho", runtime
                            )
                            return [
                                _measure(
                                    proxy, idl, "socket", size,
                                    iterations, warmup, rts="process",
                                )
                                for size in sizes
                            ]
                        finally:
                            runtime.close()

            handle = spawn_spmd(
                client_body, 1, backend="process", name="wirepath"
            )
            (points,) = handle.join(None)
            return points


def points_as_dicts(points: list[WirepathPoint]) -> list[dict]:
    """The points as JSON-ready dicts (one per fabric × size)."""
    return [asdict(p) for p in points]


def format_wirepath(points: list[WirepathPoint]) -> str:
    """Render the sweep as a fixed-width table."""
    lines = [
        "Wire-path roundtrip (real pipeline, both directions counted)",
        f"{'fabric':<8} {'size':>10} {'MB/s':>10} "
        f"{'copies/byte':>12} {'events':>8}",
    ]
    for p in points:
        size = (
            f"{p.size_bytes // 1024}KiB"
            if p.size_bytes < 1 << 20
            else f"{p.size_bytes // (1 << 20)}MiB"
        )
        lines.append(
            f"{p.fabric:<8} {size:>10} {p.mb_per_s:>10.1f} "
            f"{p.copies_per_payload_byte:>12.2f} {p.copy_events:>8}"
        )
    return "\n".join(lines)
