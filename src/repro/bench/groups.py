"""Replicated-group benchmark: goodput through a replica kill.

Measures the :mod:`repro.groups` failover path end to end: a client
binds a replicated echo group through :class:`ShardedNaming`, drives
pipelined bursts of invocations in fixed-size *windows*, and midway
through the run the replica it is bound to is killed abruptly (ports
closed, no unbind — a crash, not a shutdown).  The client's FtPolicy
exhausts its retries against the dead replica, the proxy fails over
to a sibling, and the interrupted invocations replay through the
sibling's reply cache.

The figure of merit is the *recovery curve*: per-window goodput
(payload megabytes per second, both directions) across the run.  The
window containing the kill absorbs the failure-detection latency and
craters; the windows after it run against the surviving replicas.
The CI gate compares the mean goodput of the post-kill windows
against the pre-kill steady state — recovery must reach at least
``min_ratio`` (default 0.7) of steady state, every invocation must
complete, and no window may surface a client-visible error.
Absolute MB/s is machine-dependent and never gated on; the ratio is
not.  See ``tools/bench_groups.py`` and ``docs/robustness.md``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

#: The echoed operation; bounded so buffers preallocate.
GROUPS_IDL = """
typedef dsequence<double, 262144> payload;

interface groupecho {
    payload roundtrip(in payload data);
};
"""

#: Default group size (the acceptance criterion's 3 replicas).
DEFAULT_REPLICAS = 3

#: Default run shape: 8 windows, kill while window 3 is in flight.
DEFAULT_WINDOWS = 8
DEFAULT_KILL_WINDOW = 3

#: Pipelined invocations per window.
DEFAULT_REQUESTS = 24

#: Default payload: 64 KiB per invocation.
DEFAULT_SIZE = 64 << 10

#: Per-attempt timeout (seconds).  Failure detection costs
#: (1 + max_retries) of these before the failover vote fires, so it
#: bounds the depth of the kill window's goodput crater.
DEFAULT_TIMEOUT_S = 0.3

#: CI smoke parameters.
SMOKE_WINDOWS = 7
SMOKE_KILL_WINDOW = 2
SMOKE_REQUESTS = 20
SMOKE_SIZE = 32 << 10

#: Server-side reply-cache budget per replica, so replayed
#: invocations dedup instead of re-executing.
REPLY_CACHE_BYTES = 4 << 20

#: Recovery-goodput gate: post-kill windows must average at least
#: this fraction of the pre-kill steady state.
DEFAULT_MIN_RATIO = 0.7


@dataclass(frozen=True)
class GroupWindow:
    """One window of the recovery curve."""

    window: int
    #: 'steady' before the kill, 'kill' for the window the replica
    #: dies in, 'recovered' after.
    phase: str
    requests: int
    completed: int
    errors: int
    #: Replica the proxy targets once the window drains.
    replica: int
    #: Cumulative client failovers observed after the window.
    failovers: int
    seconds: float
    #: Completed payload megabytes per second (both directions).
    goodput_mb_per_s: float


def _compiled_idl() -> Any:
    from repro import compile_idl

    return compile_idl(GROUPS_IDL, module_name="groups_bench_idl")


def _make_servant_factory(idl: Any) -> Any:
    class EchoServant(idl.groupecho_skel):
        def roundtrip(self, data: Any) -> Any:
            return data

    return lambda ctx: EchoServant()


def _policy() -> Any:
    from repro.ft import FtPolicy

    # One retry against a dead replica before failover engages:
    # detection then costs two attempt timeouts, keeping the kill
    # window's crater shallow while still exercising the retry path.
    return FtPolicy(
        max_retries=1,
        backoff_base_ms=2.0,
        backoff_cap_ms=10.0,
    )


def run_groups(
    replicas: int = DEFAULT_REPLICAS,
    windows: int = DEFAULT_WINDOWS,
    kill_window: int = DEFAULT_KILL_WINDOW,
    requests: int = DEFAULT_REQUESTS,
    size_bytes: int = DEFAULT_SIZE,
    seed: int = 7,
    drop_rate: float = 0.0,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    selection: str = "round-robin",
) -> list[GroupWindow]:
    """Run the recovery curve and return one point per window.

    The client issues every window as a pipelined burst (all
    ``*_nb`` invocations first, then drains).  At window
    ``kill_window`` the replica the proxy is currently bound to is
    killed *after the burst is in flight*, so the interrupted
    invocations exercise detection, the failover vote, and the
    reply-cache replay.  With ``drop_rate`` > 0 the client fabric
    additionally drops frames from a :class:`FaultSchedule` seeded
    from ``seed``, layering background loss under the kill.
    """
    from repro import ORB
    from repro.groups import ShardedNaming

    if not 0 < kill_window < windows:
        raise ValueError("kill_window must fall inside the run")

    idl = _compiled_idl()
    n = max(size_bytes // 8, 1)

    fabric = None
    if drop_rate > 0.0:
        from repro.ft.faults import FaultSchedule, FaultyFabric
        from repro.orb.transport import Fabric

        fabric = FaultyFabric(
            Fabric("groups-bench"),
            FaultSchedule(seed=seed, drop=drop_rate),
        )

    naming = ShardedNaming(shards=2)
    orb = ORB(
        "groups-bench",
        naming=naming,
        fabric=fabric,
        timeout=timeout_s,
    )
    points = []
    with orb:
        group = orb.serve_replicated(
            "groupecho",
            _make_servant_factory(idl),
            replicas=replicas,
            nthreads=1,
            reply_cache_bytes=REPLY_CACHE_BYTES,
        )
        runtime = orb.client_runtime(label="groups-bench")
        try:
            proxy = idl.groupecho._group_bind(
                "groupecho",
                runtime,
                selection=selection,
                ft_policy=_policy(),
            )
            arr = np.arange(n, dtype=np.float64)
            data = idl.payload.from_global(arr)
            killed = False
            for w in range(windows):
                errors = 0
                completed = 0
                start = time.perf_counter()
                futures = [
                    proxy.roundtrip_nb(data) for _ in range(requests)
                ]
                if w == kill_window and not killed:
                    killed = True
                    group.kill(proxy._group.current_replica())
                for future in futures:
                    try:
                        result = future.value(timeout=60.0)
                        if result.length() != n:
                            raise RuntimeError(
                                "group echo returned a wrong length"
                            )
                        completed += 1
                    except Exception:
                        errors += 1
                seconds = time.perf_counter() - start
                moved = 2 * n * 8 * completed
                phase = (
                    "steady"
                    if w < kill_window
                    else ("kill" if w == kill_window else "recovered")
                )
                points.append(
                    GroupWindow(
                        window=w,
                        phase=phase,
                        requests=requests,
                        completed=completed,
                        errors=errors,
                        replica=proxy._group.current_replica(),
                        failovers=len(proxy._group.history),
                        seconds=seconds,
                        goodput_mb_per_s=moved / seconds / 1e6,
                    )
                )
        finally:
            runtime.close()
            group.shutdown()
    return points


def summarize(points: list[GroupWindow]) -> dict:
    """Steady-state vs recovery goodput and their ratio.

    Steady state averages the pre-kill windows after the first (the
    warm-up window pays bind/JIT costs); recovery averages every
    post-kill window.  The kill window itself is reported in the
    curve but belongs to neither mean — it measures detection
    latency, not throughput.
    """
    steady = [
        p.goodput_mb_per_s
        for p in points
        if p.phase == "steady" and p.window > 0
    ] or [p.goodput_mb_per_s for p in points if p.phase == "steady"]
    recovered = [
        p.goodput_mb_per_s for p in points if p.phase == "recovered"
    ]
    steady_mb = sum(steady) / len(steady) if steady else 0.0
    recovered_mb = (
        sum(recovered) / len(recovered) if recovered else 0.0
    )
    return {
        "steady_state_mb_per_s": steady_mb,
        "recovery_mb_per_s": recovered_mb,
        "recovery_ratio": (
            recovered_mb / steady_mb if steady_mb > 0 else 0.0
        ),
        "failovers": max((p.failovers for p in points), default=0),
        "errors": sum(p.errors for p in points),
    }


def points_as_dicts(points: list[GroupWindow]) -> list[dict]:
    """The windows as JSON-ready dicts."""
    return [asdict(p) for p in points]


def gate_failures(
    points: list[GroupWindow],
    min_ratio: float = DEFAULT_MIN_RATIO,
) -> list[str]:
    """The CI gate: zero client-visible errors, every invocation
    completed, exactly one failover, and recovery goodput at least
    ``min_ratio`` of steady state."""
    failures = []
    summary = summarize(points)
    for p in points:
        if p.errors:
            failures.append(
                f"window {p.window}: {p.errors} client-visible "
                "error(s)"
            )
        elif p.completed != p.requests:
            failures.append(
                f"window {p.window}: {p.completed}/{p.requests} "
                "completed"
            )
    if summary["failovers"] != 1:
        failures.append(
            f"expected exactly 1 failover, saw {summary['failovers']}"
        )
    if summary["recovery_ratio"] < min_ratio:
        failures.append(
            f"recovery goodput is {summary['recovery_ratio']:.2f}x "
            f"steady state (gate: >= {min_ratio:.2f}x)"
        )
    return failures


def format_groups(points: list[GroupWindow]) -> str:
    """Render the recovery curve as a fixed-width table."""
    summary = summarize(points)
    lines = [
        "Recovery curve through a replica kill "
        "(retrying client, reply-caching replicas)",
        f"{'win':>3} {'phase':<10} {'done':>9} {'errs':>4} "
        f"{'replica':>7} {'flips':>5} {'MB/s':>8}",
    ]
    for p in points:
        lines.append(
            f"{p.window:>3} {p.phase:<10} "
            f"{p.completed:>4}/{p.requests:<4} {p.errors:>4} "
            f"{p.replica:>7} {p.failovers:>5} "
            f"{p.goodput_mb_per_s:>8.1f}"
        )
    lines.append(
        f"steady {summary['steady_state_mb_per_s']:.1f} MB/s, "
        f"recovered {summary['recovery_mb_per_s']:.1f} MB/s "
        f"({summary['recovery_ratio']:.2f}x)"
    )
    return "\n".join(lines)
