"""Table and figure generators: simulated vs published, side by side."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dist import Proportions
from repro.simnet import (
    SimConfig,
    paper_testbed,
    simulate_centralized,
    simulate_multiport,
)
from repro.simnet.calibration import PAPER_SEQUENCE_BYTES
from repro.bench import paper_data as paper


@dataclass
class TableResult:
    """A rendered experiment: rows plus provenance."""

    title: str
    headers: list[str]
    rows: list[list[str]]
    notes: list[str] = field(default_factory=list)


def format_table(result: TableResult) -> str:
    """Render a TableResult as aligned monospace text."""
    widths = [
        max(len(result.headers[i]), *(len(r[i]) for r in result.rows))
        for i in range(len(result.headers))
    ]
    lines = [result.title, "=" * len(result.title)]
    lines.append(
        "  ".join(h.rjust(w) for h, w in zip(result.headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in result.rows:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    for note in result.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _ms(value: float) -> str:
    return f"{value:.1f}"


def table1(cfg: SimConfig | None = None) -> TableResult:
    """Table 1: centralized argument transfer, 2^20 doubles."""
    cfg = cfg or paper_testbed()
    headers = [
        "client", "server", "T_inv", "paper", "pack+send", "recv",
        "paper", "scatter", "paper", "gather",
    ]
    rows = []
    for nclient in (1, 4):
        for nserver in (1, 2, 4, 8):
            b = simulate_centralized(
                cfg, nclient, nserver, PAPER_SEQUENCE_BYTES
            )
            rows.append(
                [
                    str(nclient),
                    str(nserver),
                    _ms(b.t_inv),
                    _ms(paper.TABLE1_PAPER[(nclient, nserver)]),
                    _ms(b.t_pack_send),
                    _ms(b.t_recv),
                    _ms(paper.TABLE1_RECV_PAPER[nserver]),
                    _ms(b.t_scatter),
                    _ms(paper.TABLE1_SCATTER_PAPER[nserver]),
                    _ms(b.t_gather),
                ]
            )
    return TableResult(
        title=(
            "Table 1 — centralized method, one 'in' dsequence of 2^20 "
            "doubles (ms)"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "paper columns transcribed from Keahey & Gannon 1997, "
            "Table 1",
            "client-side gather is folded into the paper's pack+send "
            "group; reported separately here",
        ],
    )


def table2(cfg: SimConfig | None = None) -> TableResult:
    """Table 2: multi-port argument transfer, 2^20 doubles."""
    cfg = cfg or paper_testbed()
    headers = [
        "client", "server", "T_inv", "paper", "send", "pack",
        "recv+unpack", "barrier", "paper", "link-util",
    ]
    rows = []
    for nclient in (1, 2, 4):
        for nserver in (1, 2, 4, 8):
            b = simulate_multiport(
                cfg, nclient, nserver, PAPER_SEQUENCE_BYTES
            )
            rows.append(
                [
                    str(nclient),
                    str(nserver),
                    _ms(b.t_inv),
                    _ms(paper.TABLE2_PAPER[(nclient, nserver)]),
                    _ms(b.t_send),
                    _ms(b.t_pack),
                    _ms(b.t_recv_unpack),
                    _ms(b.t_barrier),
                    _ms(paper.TABLE2_BARRIER_PAPER[(nclient, nserver)]),
                    f"{b.link_utilization:.2f}",
                ]
            )
    return TableResult(
        title=(
            "Table 2 — multi-port method, one 'in' dsequence of 2^20 "
            "doubles (ms)"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "paper T_inv/barrier columns partially reconstructed from "
            "garbled OCR; see repro/bench/paper_data.py",
            "send/pack/recv+unpack are maxima over threads, as in the "
            "paper",
        ],
    )


def figure4(
    cfg: SimConfig | None = None,
    nclient: int = 4,
    nserver: int = 8,
) -> TableResult:
    """Figure 4: effective bandwidth vs sequence length, both methods."""
    cfg = cfg or paper_testbed()
    headers = ["doubles", "centralized MB/s", "multi-port MB/s", "ratio"]
    rows = []
    for exponent in range(1, 8):
        nbytes = 10**exponent * 8
        ct = simulate_centralized(cfg, nclient, nserver, nbytes)
        mp = simulate_multiport(cfg, nclient, nserver, nbytes)
        rows.append(
            [
                f"1e{exponent}",
                f"{ct.effective_bandwidth:.2f}",
                f"{mp.effective_bandwidth:.2f}",
                f"{mp.effective_bandwidth / ct.effective_bandwidth:.2f}",
            ]
        )
    return TableResult(
        title=(
            f"Figure 4 — effective 'in'-argument bandwidth, client="
            f"{nclient} server={nserver}"
        ),
        headers=headers,
        rows=rows,
        notes=[
            f"paper peaks: centralized "
            f"{paper.FIGURE4_PAPER['centralized_peak_mbps']} MB/s, "
            f"multi-port "
            f"{paper.FIGURE4_PAPER['multiport_peak_mbps']} MB/s",
            "methods converge at small sizes (request overhead "
            "dominates), multi-port wins ~2.2x at large sizes",
        ],
    )


def format_figure4(result: TableResult, width: int = 60) -> str:
    """ASCII rendition of Figure 4 (log-x bandwidth curves)."""
    table = format_table(result)
    peak = max(
        float(row[2]) for row in result.rows
    )
    lines = [table, "", "bandwidth (each * = centralized c, m = multi-port)"]
    for row in result.rows:
        cent = float(row[1])
        multi = float(row[2])
        c_pos = int(cent / peak * width)
        m_pos = int(multi / peak * width)
        bar = [" "] * (width + 1)
        bar[c_pos] = "c"
        bar[m_pos] = "m" if m_pos != c_pos else "*"
        lines.append(f"{row[0]:>5} |{''.join(bar)}|")
    return "\n".join(lines)


def uneven_split(cfg: SimConfig | None = None) -> TableResult:
    """§3.3's datapoint: an uneven client split performs comparably."""
    cfg = cfg or paper_testbed()
    even = simulate_multiport(cfg, 4, 8, PAPER_SEQUENCE_BYTES)
    cases = [
        ("even (block)", None),
        ("7:1:9:3", Proportions(7, 1, 9, 3)),
        ("1:1:1:5", Proportions(1, 1, 1, 5)),
        ("5:3:5:3", Proportions(5, 3, 5, 3)),
    ]
    rows = []
    for label, template in cases:
        b = simulate_multiport(
            cfg, 4, 8, PAPER_SEQUENCE_BYTES, client_template=template
        )
        rows.append(
            [label, _ms(b.t_inv), f"{b.t_inv / even.t_inv:.2f}x"]
        )
    return TableResult(
        title=(
            "Uneven client splits — multi-port, client=4 server=8, "
            "2^20 doubles (ms)"
        ),
        headers=["client split", "T_inv", "vs even"],
        rows=rows,
        notes=[
            f"paper: an uneven split timed "
            f"{paper.UNEVEN_SPLIT_PAPER_MS} ms, 'of comparable "
            f"efficiency'",
        ],
    )


def roundtrip(cfg: SimConfig | None = None) -> TableResult:
    """Inout round trips: the same argument travels both directions."""
    cfg = cfg or paper_testbed()
    rows = []
    for nclient, nserver in ((1, 1), (1, 8), (4, 4), (4, 8)):
        ct = simulate_centralized(
            cfg, nclient, nserver, PAPER_SEQUENCE_BYTES,
            reply_bytes=PAPER_SEQUENCE_BYTES,
        )
        mp = simulate_multiport(
            cfg, nclient, nserver, PAPER_SEQUENCE_BYTES,
            reply_bytes=PAPER_SEQUENCE_BYTES,
        )
        rows.append(
            [
                f"{nclient}x{nserver}",
                _ms(ct.t_inv),
                _ms(mp.t_inv),
                f"{ct.t_inv / mp.t_inv:.2f}x",
                f"{2 * PAPER_SEQUENCE_BYTES / (1024**2) / (mp.t_inv / 1e3):.1f}",
            ]
        )
    return TableResult(
        title=(
            "Inout round trip — 2^20 doubles out and back (ms)"
        ),
        headers=[
            "cfg", "centralized", "multi-port", "speedup",
            "multi 2-way MB/s",
        ],
        rows=rows,
        notes=[
            "extends the paper's one-way experiment: an inout argument "
            "travels both directions (the diffusion example's real "
            "pattern)",
            "the multi-port advantage compounds on round trips — both "
            "directions skip staging and parallelize marshaling",
        ],
    )


def ablation_scheduler(cfg: SimConfig | None = None) -> TableResult:
    """How much of the centralized slowdown is scheduler interference?"""
    cfg = cfg or paper_testbed()
    ideal = cfg.without_scheduler()
    rows = []
    for nclient, nserver in ((1, 1), (1, 8), (4, 1), (4, 8)):
        with_sched = simulate_centralized(
            cfg, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        without = simulate_centralized(
            ideal, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        mp_with = simulate_multiport(
            cfg, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        mp_without = simulate_multiport(
            ideal, nclient, nserver, PAPER_SEQUENCE_BYTES
        )
        rows.append(
            [
                f"{nclient}x{nserver}",
                _ms(with_sched.t_inv),
                _ms(without.t_inv),
                _ms(with_sched.t_inv - without.t_inv),
                _ms(mp_with.t_inv),
                _ms(mp_without.t_inv),
                _ms(mp_with.t_inv - mp_without.t_inv),
            ]
        )
    return TableResult(
        title="Ablation — scheduler interference on/off (ms, 2^20 doubles)",
        headers=[
            "cfg", "cent", "cent-ideal", "delta",
            "multi", "multi-ideal", "delta",
        ],
        rows=rows,
        notes=[
            "the paper attributes the centralized method's growth "
            "with thread count to descheduling on system calls (§3.2)",
            "multi-port hides most of the stall by interleaving "
            "transfers on the shared link",
        ],
    )


def ablation_gather(cfg: SimConfig | None = None) -> TableResult:
    """Locality win: gather/scatter cost vs direct routing alone."""
    cfg = cfg or paper_testbed()
    rows = []
    for nclient, nserver in ((2, 2), (4, 4), (4, 8)):
        ct = simulate_centralized(cfg, nclient, nserver, PAPER_SEQUENCE_BYTES)
        mp = simulate_multiport(cfg, nclient, nserver, PAPER_SEQUENCE_BYTES)
        staging = ct.t_gather + ct.t_scatter
        rows.append(
            [
                f"{nclient}x{nserver}",
                _ms(staging),
                _ms(ct.t_inv),
                _ms(mp.t_inv),
                _ms(ct.t_inv - mp.t_inv),
                f"{staging / (ct.t_inv - mp.t_inv) * 100:.0f}%",
            ]
        )
    return TableResult(
        title="Ablation — staging (gather+scatter) share of the win (ms)",
        headers=[
            "cfg", "gather+scatter", "cent T", "multi T",
            "total win", "staging share",
        ],
        rows=rows,
        notes=[
            "the rest of the win comes from parallel marshaling and "
            "better link utilization",
        ],
    )


def concurrent_clients(cfg: SimConfig | None = None) -> TableResult:
    """Several client applications contending for one SPMD object."""
    from repro.simnet.concurrent import simulate_concurrent

    cfg = cfg or paper_testbed()
    rows = []
    for k in (1, 2, 4, 8):
        ct = simulate_concurrent(
            cfg, "centralized", k, 4, 8, PAPER_SEQUENCE_BYTES
        )
        mp = simulate_concurrent(
            cfg, "multiport", k, 4, 8, PAPER_SEQUENCE_BYTES
        )
        rows.append(
            [
                str(k),
                _ms(ct.makespan),
                f"{ct.aggregate_bandwidth:.1f}",
                f"{ct.link_utilization:.2f}",
                _ms(mp.makespan),
                f"{mp.aggregate_bandwidth:.1f}",
                f"{mp.link_utilization:.2f}",
            ]
        )
    return TableResult(
        title=(
            "Concurrent clients — k parallel apps invoking one object "
            "(client=4, server=8, 2^20 doubles each)"
        ),
        headers=[
            "clients", "cent makespan", "agg MB/s", "util",
            "multi makespan", "agg MB/s", "util",
        ],
        rows=rows,
        notes=[
            "extends the paper: §3.3 motivates the separated header "
            "by contention between invoking clients",
            "multi-port's pipeline saturates the link; centralized is "
            "bound by serialized server-side staging",
        ],
    )


def ablation_header(cfg: SimConfig | None = None) -> TableResult:
    """Cost of the separated invocation header (multi-port design).

    The paper separates invocation from argument transfer to avoid
    contention between invoking clients; this quantifies the price —
    one extra small message — against total invocation time.
    """
    cfg = cfg or paper_testbed()
    rows = []
    for exponent in (2, 4, 6):
        nbytes = 10**exponent * 8
        mp = simulate_multiport(cfg, 4, 8, nbytes)
        header_cost = (
            cfg.pair_stall(4, 8, multiport=True) + cfg.link_latency
        )
        rows.append(
            [
                f"1e{exponent}",
                _ms(mp.t_inv),
                _ms(header_cost),
                f"{header_cost / mp.t_inv * 100:.1f}%",
            ]
        )
    return TableResult(
        title="Ablation — separated-header overhead (multi-port)",
        headers=["doubles", "T_inv", "header cost", "share"],
        rows=rows,
        notes=[
            "the header is piggybacked in the centralized method; "
            "multi-port pays one small extra message to stay safe "
            "under concurrent clients (§3.3)",
        ],
    )
