"""Client fan-in benchmark: goodput as simulated clients scale to 10k.

Measures the event-loop server's capacity to absorb massive fan-in:
``n`` simulated clients — each a distinct 64-bit client identity
running a closed-loop, window-1 request stream — share a budget of
real TCP connections into one serial servant, and the sweep reports
goodput (completed requests per second) per client count.  The claim
under test is *flatness*: the server's request path costs the same
per request whether 100 or 10,000 clients are attached, because one
event loop owns every socket and admission state is per-identity
dictionaries, not per-connection threads.

The clients are deliberately simulated at the frame level rather than
through :class:`~repro.orb.proxy.ClientRuntime`: a real runtime spawns
demux and pipeline threads, so 10k of them would benchmark the host's
scheduler, not the server.  Each simulated client encodes real
request frames (the same bytes a runtime sends), and replies come
back through one shared collector port, demultiplexed by the client
identity in the reply's request id.  The connection budget mirrors
production fan-in shapes (many clients per socket via a gateway or
connection pool) while keeping the benchmark inside one process's
file-descriptor limit.
"""

from __future__ import annotations

import gc
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro import ORB, compile_idl
from repro.orb import request as wire
from repro.orb.naming import NamingService
from repro.orb.request import RequestMessage
from repro.orb.server import ServerConfig
from repro.orb.socketnet import _LENGTH, SocketFabric, SocketPortAddress
from repro.orb.transfer import plain_body_encoder, request_slots
from repro.orb.transport import KIND_REQUEST

CLIENTS_IDL = """
interface fanin {
    long bump(in long x);
};
"""

#: Simulated-client counts swept by the full benchmark.
DEFAULT_CLIENTS = [100, 500, 1000, 2000, 5000, 10000]
#: Total completed requests per point (split across the clients, at
#: least two per client so every identity exercises the closed loop).
DEFAULT_REQUESTS = 20000
#: TCP connection budget: identities are multiplexed over at most
#: this many sockets, keeping two fd's per connection (both ends live
#: in this process) inside the typical ``ulimit -n``.
DEFAULT_CONNECTIONS = 1024

#: CI smoke variant: small enough for a shared runner's default
#: 1024-fd soft limit and a sub-minute budget.
SMOKE_CLIENTS = [50, 200, 500]
SMOKE_REQUESTS = 3000
SMOKE_CONNECTIONS = 128

#: Gate: every point's goodput must stay within this ratio of the
#: smallest (baseline) point's.
DEFAULT_MIN_RATIO = 0.8
DEFAULT_TIMEOUT_S = 120.0
DEFAULT_DISPATCH_WORKERS = 4
#: Measured closed-loop rounds per point (best goodput wins, after
#: one untimed warmup round) — single-round numbers on a busy host
#: carry 10-15% scheduler noise.
DEFAULT_REPEATS = 3
SMOKE_REPEATS = 2


@dataclass(frozen=True)
class ClientPoint:
    """One swept client count."""

    clients: int
    connections: int
    requests: int
    seconds: float
    goodput_rps: float
    errors: int
    #: ``orb.stats()["server"]`` request counters at point end.
    server_requests: dict


def _compiled_idl() -> Any:
    return compile_idl(CLIENTS_IDL, module_name="bench_clients_idl")


def _make_servant_factory(idl: Any) -> Any:
    class Fanin(idl.fanin_skel):
        def bump(self, x):
            return int(x) + 1

    return lambda ctx: Fanin()


class _SimulatedClients:
    """The client side of one point: identities, frames, collector."""

    def __init__(
        self,
        idl: Any,
        n_clients: int,
        connections: int,
        dest: Any,
        reply_port: Any,
        source: SocketPortAddress,
    ) -> None:
        self._n = n_clients
        self._dest = dest
        self._reply_port = reply_port
        self._source = source
        self._slots = request_slots(idl.fanin._operations["bump"])
        self._sent = [0] * n_clients
        self._quota = [0] * n_clients
        self._socks: list[socket.socket] = []
        self._locks: list[threading.Lock] = []
        self.completed = 0
        self.errors = 0
        self.done = threading.Event()
        for _ in range(min(connections, n_clients)):
            sock = socket.create_connection(
                (dest.host, dest.tcp_port), timeout=10
            )
            sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._socks.append(sock)
            self._locks.append(threading.Lock())

    @property
    def connections(self) -> int:
        return len(self._socks)

    def _frame(self, client: int, seq: int) -> bytes:
        message = RequestMessage(
            request_id=((client + 1) << 32) | seq,
            object_key=self._dest_key,
            operation="bump",
            reply_port=self._reply_port.address,
            body=plain_body_encoder(self._slots, {"x": seq}),
        )
        payload = b"".join(
            bytes(s) for s in message.encode_segments()
        )
        segments = SocketFabric._encode_frame(
            self._source, self._dest, KIND_REQUEST, payload,
            len(payload),
        )
        total = sum(len(s) for s in segments)
        return _LENGTH.pack(total) + b"".join(
            bytes(s) for s in segments
        )

    _dest_key = "fanin"

    def send_next(self, client: int) -> None:
        seq = self._sent[client]
        self._sent[client] += 1
        frame = self._frame(client, seq)
        index = client % len(self._socks)
        with self._locks[index]:
            self._socks[index].sendall(frame)

    def _collect(self, target: int, timeout_s: float) -> None:
        """Drain replies until every client finished its quota."""
        deadline = time.monotonic() + timeout_s
        while self.completed < target:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                _src, _kind, payload = self._reply_port.recv(
                    timeout=remaining
                )
            except Exception:
                break
            try:
                reply = wire.decode_reply(payload)
            except Exception:
                self.errors += 1
                continue
            if reply.status != wire.STATUS_OK:
                self.errors += 1
            client = (reply.request_id >> 32) - 1
            self.completed += 1
            if (
                0 <= client < self._n
                and self._sent[client] < self._quota[client]
            ):
                self.send_next(client)
        self.done.set()

    def run_round(
        self, per_client: int, timeout_s: float
    ) -> tuple[float, int, int]:
        """One closed-loop round: every client completes
        ``per_client`` window-1 requests.  Returns (elapsed seconds,
        completed replies, errors)."""
        self.completed = 0
        self.errors = 0
        self.done = threading.Event()
        for client in range(self._n):
            self._quota[client] += per_client
        target = per_client * self._n
        collector = threading.Thread(
            target=self._collect,
            args=(target, timeout_s),
            name="bench-fanin-collector",
            daemon=True,
        )
        start = time.perf_counter()
        collector.start()
        # Window-1 closed loop: one request per client to start; each
        # reply triggers that client's next send from the collector.
        for client in range(self._n):
            self.send_next(client)
        self.done.wait(timeout_s)
        elapsed = time.perf_counter() - start
        collector.join(timeout=5.0)
        return elapsed, self.completed, self.errors

    def close(self) -> None:
        for sock in self._socks:
            try:
                sock.close()
            except OSError:
                pass


def _run_point(
    idl: Any,
    n_clients: int,
    total_requests: int,
    connections: int,
    dispatch_workers: int,
    repeats: int,
    timeout_s: float,
    server_config: ServerConfig,
) -> ClientPoint:
    naming = NamingService()
    per_client = max(2, total_requests // n_clients)
    target = per_client * n_clients
    with SocketFabric(
        "bench-fanin-server", server=server_config
    ) as server_fabric, SocketFabric(
        "bench-fanin-client"
    ) as client_fabric:
        server = ORB(
            "bench-fanin-server",
            fabric=server_fabric,
            naming=naming,
            timeout=30.0,
        )
        with server:
            server.serve(
                "fanin",
                _make_servant_factory(idl),
                nthreads=1,
                dispatch_workers=dispatch_workers,
            )
            ref = naming.resolve("fanin")
            reply_port = client_fabric.open_port("bench:replies")
            source = SocketPortAddress(
                client_fabric.host,
                client_fabric.tcp_port,
                0,
                "bench-fanin",
            )
            sim = _SimulatedClients(
                idl,
                n_clients,
                connections,
                ref.request_port,
                reply_port,
                source,
            )
            try:
                # Untimed warmup: primes the connections, the server's
                # operation caches, and every identity's admission
                # entry before the clock starts.
                sim.run_round(1, timeout_s)
                best_rps = 0.0
                best_seconds = 0.0
                errors = 0
                gc_was_enabled = gc.isenabled()
                gc.collect()
                gc.disable()
                try:
                    for _ in range(max(1, repeats)):
                        seconds, completed, round_errors = (
                            sim.run_round(per_client, timeout_s)
                        )
                        errors += round_errors + (target - completed)
                        rps = (
                            (completed - round_errors) / seconds
                            if seconds > 0
                            else 0.0
                        )
                        if rps > best_rps:
                            best_rps = rps
                            best_seconds = seconds
                finally:
                    if gc_was_enabled:
                        gc.enable()
                server_requests = server.stats()["server"]["requests"]
            finally:
                sim.close()
            return ClientPoint(
                clients=n_clients,
                connections=sim.connections,
                requests=target,
                seconds=best_seconds,
                goodput_rps=best_rps,
                errors=errors,
                server_requests=dict(server_requests),
            )


def run_clients(
    clients: list[int] | None = None,
    total_requests: int = DEFAULT_REQUESTS,
    connections: int = DEFAULT_CONNECTIONS,
    dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
    repeats: int = DEFAULT_REPEATS,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    server_config: ServerConfig | None = None,
    verbose: bool = False,
) -> list[ClientPoint]:
    """Sweep the client counts; one fresh server per point, one
    untimed warmup round, best goodput of ``repeats`` rounds."""
    idl = _compiled_idl()
    points = []
    for n in clients if clients is not None else DEFAULT_CLIENTS:
        point = _run_point(
            idl,
            n,
            total_requests,
            connections,
            dispatch_workers,
            repeats,
            timeout_s,
            server_config
            if server_config is not None
            else ServerConfig(),
        )
        points.append(point)
        if verbose:
            print(
                f"  clients={point.clients:>6} "
                f"conns={point.connections:>5} "
                f"goodput={point.goodput_rps:>9.0f} req/s "
                f"errors={point.errors}"
            )
    return points


def summarize(points: list[ClientPoint]) -> dict:
    """Headline numbers: the baseline (smallest) point and how flat
    the curve stays relative to it."""
    if not points:
        return {}
    baseline = points[0]
    worst = min(
        (p.goodput_rps / baseline.goodput_rps for p in points)
        if baseline.goodput_rps > 0
        else [0.0]
    )
    peak = max(points, key=lambda p: p.clients)
    return {
        "baseline_clients": baseline.clients,
        "baseline_goodput_rps": round(baseline.goodput_rps, 1),
        "max_clients": peak.clients,
        "goodput_at_max_rps": round(peak.goodput_rps, 1),
        "min_ratio_vs_baseline": round(worst, 3),
        "total_errors": sum(p.errors for p in points),
    }


def points_as_dicts(points: list[ClientPoint]) -> list[dict]:
    """JSON-ready form of the sweep, one dict per point."""
    from dataclasses import asdict

    return [asdict(p) for p in points]


def gate_failures(
    points: list[ClientPoint], min_ratio: float = DEFAULT_MIN_RATIO
) -> list[str]:
    """CI gate: zero errors, and every point's goodput within
    ``min_ratio`` of the smallest point's."""
    failures = []
    if not points:
        return ["no points measured"]
    baseline = points[0]
    if baseline.goodput_rps <= 0:
        return [f"baseline point ({baseline.clients} clients) made no progress"]
    for point in points:
        if point.errors:
            failures.append(
                f"{point.clients} clients: {point.errors} errors "
                f"(expected 0)"
            )
        ratio = point.goodput_rps / baseline.goodput_rps
        if ratio < min_ratio:
            failures.append(
                f"{point.clients} clients: goodput "
                f"{point.goodput_rps:.0f} req/s is {ratio:.2f}x the "
                f"{baseline.clients}-client baseline "
                f"{baseline.goodput_rps:.0f} req/s "
                f"(gate {min_ratio:.2f}x)"
            )
    return failures


def format_clients(points: list[ClientPoint]) -> str:
    """Render the sweep as an aligned text table."""
    lines = [
        f"{'clients':>8} {'conns':>6} {'requests':>9} "
        f"{'goodput req/s':>14} {'vs base':>8} {'errors':>7}"
    ]
    base = points[0].goodput_rps if points else 0.0
    for p in points:
        ratio = p.goodput_rps / base if base > 0 else 0.0
        lines.append(
            f"{p.clients:>8} {p.connections:>6} {p.requests:>9} "
            f"{p.goodput_rps:>14.0f} {ratio:>7.2f}x {p.errors:>7}"
        )
    return "\n".join(lines)
