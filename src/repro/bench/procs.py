"""Thread-vs-process RTS backend benchmark: the data plane under load.

The motivating claim of the process backend (ISSUE 7): when SPMD ranks
do real Python compute between collective data movements, threads
serialize on the GIL while processes run truly parallel, so aggregate
gather/scatter throughput scales with cores.  This benchmark measures
exactly that:

- 4 ranks run an identical body on both backends (``spmd_run`` with
  ``backend="thread"`` vs ``backend="process"``);
- each iteration interleaves a **pure-Python, GIL-holding** compute
  pass (no numpy ufuncs — those release the GIL and would flatter the
  thread backend) with a >= 1 MiB ``gather_chunks`` or
  ``scatter_chunks`` through :func:`repro.rts.rts_for`;
- aggregate throughput is payload bytes moved per wall-clock second,
  timed root-side between barriers.

The ratio ``process / thread`` is the figure of merit.  It can only
exceed 1 on a multi-core host: on a single core the process backend
pays fork/IPC overhead with no parallelism to win back, so the emitted
JSON records ``host`` (cpu_count and scheduler affinity) and the
``--gate`` in ``tools/bench_procs.py`` only enforces the ratio when
the host can express it.  See ``docs/performance.md``.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.dist import BlockTemplate, Layout, transfer_schedule
from repro.rts import rts_for, spmd_run

#: Default payload: 4 MiB of float64 per collective.
DEFAULT_SIZE = 4 << 20

#: Small payload for CI smoke runs (still >= 1 MiB per acceptance).
SMOKE_SIZE = 1 << 20

DEFAULT_RANKS = 4
DEFAULT_ITERATIONS = 8
SMOKE_ITERATIONS = 3

#: Inner-loop length of the GIL-holding compute pass per iteration.
#: Calibrated so compute and data movement are the same order of
#: magnitude at the default payload on a ~2020s core.
DEFAULT_COMPUTE_UNITS = 200_000
SMOKE_COMPUTE_UNITS = 50_000

OPS = ("gather", "scatter")
BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ProcsPoint:
    """One (backend, op) measurement at a fixed size and rank count."""

    backend: str
    op: str
    ranks: int
    size_bytes: int
    iterations: int
    compute_units: int
    #: Best-of-repeats wall-clock for the timed loop (root-side).
    seconds: float
    #: Payload megabytes through the collective per second.
    mb_per_s: float


def host_info() -> dict:
    """CPU facts the ratio depends on; recorded in the JSON."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = os.cpu_count() or 1
    return {
        "cpu_count": os.cpu_count() or 1,
        "sched_affinity": affinity,
    }


def effective_cores() -> int:
    """Cores this run can actually use (affinity-limited)."""
    info = host_info()
    return min(info["cpu_count"], info["sched_affinity"])


def _busy(units: int) -> int:
    # Pure Python, holds the GIL for its whole duration: this is the
    # workload class the process backend exists for.
    acc = 0
    for i in range(units):
        acc += i * i
    return acc


def _bench_body(
    ctx,
    op: str,
    size_bytes: int,
    iterations: int,
    warmup: int,
    compute_units: int,
) -> float | None:
    """Timed loop run identically on both backends; root returns seconds."""
    n = max(size_bytes // 8, 1)
    layout = BlockTemplate(ctx.size).layout(n)
    root_layout = Layout(((0, n),))
    rts = rts_for(ctx.comm)
    local = np.full(layout.local_length(ctx.rank), float(ctx.rank))
    if op == "gather":
        steps = transfer_schedule(layout, root_layout)

        def step() -> None:
            rts.gather_chunks(local, steps, root=0, out=None)

    elif op == "scatter":
        steps = transfer_schedule(root_layout, layout)
        full = (
            np.arange(n, dtype=np.float64) if ctx.rank == 0 else None
        )
        out = np.empty(layout.local_length(ctx.rank))

        def step() -> None:
            rts.scatter_chunks(full, steps, root=0, out=out)

    else:
        raise ValueError(f"unknown op {op!r}")

    for _ in range(warmup):
        _busy(compute_units)
        step()
    rts.synchronize()
    start = time.perf_counter()
    for _ in range(iterations):
        _busy(compute_units)
        step()
    rts.synchronize()
    seconds = time.perf_counter() - start
    return seconds if ctx.rank == 0 else None


def run_procs(
    backends: tuple[str, ...] = BACKENDS,
    ops: tuple[str, ...] = OPS,
    size_bytes: int = DEFAULT_SIZE,
    ranks: int = DEFAULT_RANKS,
    iterations: int = DEFAULT_ITERATIONS,
    warmup: int = 1,
    compute_units: int = DEFAULT_COMPUTE_UNITS,
    repeats: int = 3,
) -> list[ProcsPoint]:
    """Measure every backend x op pair and return the points."""
    points: list[ProcsPoint] = []
    for backend in backends:
        for op in ops:
            seconds = float("inf")
            for _ in range(max(repeats, 1)):
                results = spmd_run(
                    ranks,
                    _bench_body,
                    op,
                    size_bytes,
                    iterations,
                    warmup,
                    compute_units,
                    backend=backend,
                    timeout=600.0,
                )
                seconds = min(seconds, results[0])
            moved = size_bytes * iterations
            points.append(
                ProcsPoint(
                    backend=backend,
                    op=op,
                    ranks=ranks,
                    size_bytes=size_bytes,
                    iterations=iterations,
                    compute_units=compute_units,
                    seconds=seconds,
                    mb_per_s=moved / seconds / 1e6,
                )
            )
    return points


def ratios(points: list[ProcsPoint]) -> dict[str, float]:
    """``process / thread`` throughput ratio per op."""
    by_key = {(p.backend, p.op): p.mb_per_s for p in points}
    out: dict[str, float] = {}
    for op in sorted({p.op for p in points}):
        thread = by_key.get(("thread", op))
        process = by_key.get(("process", op))
        if thread and process:
            out[op] = process / thread
    return out


def points_as_dicts(points: list[ProcsPoint]) -> list[dict]:
    """The points as JSON-ready dicts."""
    return [asdict(p) for p in points]


def format_procs(points: list[ProcsPoint]) -> str:
    """Render the comparison as a fixed-width table."""
    info = host_info()
    lines = [
        "RTS backend comparison (GIL-holding compute + collectives)",
        f"host: {info['cpu_count']} cpu(s), "
        f"affinity {info['sched_affinity']}",
        f"{'backend':<9} {'op':<8} {'ranks':>5} {'size':>8} "
        f"{'MB/s':>9} {'s/loop':>8}",
    ]
    for p in points:
        size = (
            f"{p.size_bytes >> 10}KiB"
            if p.size_bytes < 1 << 20
            else f"{p.size_bytes >> 20}MiB"
        )
        lines.append(
            f"{p.backend:<9} {p.op:<8} {p.ranks:>5} {size:>8} "
            f"{p.mb_per_s:>9.1f} {p.seconds:>8.3f}"
        )
    for op, ratio in ratios(points).items():
        lines.append(f"ratio {op}: process/thread = {ratio:.2f}x")
    return "\n".join(lines)
