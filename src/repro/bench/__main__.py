"""``python -m repro.bench [name ...]`` — print the paper's tables.

Names: table1, table2, figure4, uneven, ablation-scheduler,
ablation-gather, ablation-header, all (default).
"""

from __future__ import annotations

import argparse

from repro.bench.tables import (
    ablation_gather,
    concurrent_clients,
    roundtrip,
    ablation_header,
    ablation_scheduler,
    figure4,
    format_figure4,
    format_table,
    table1,
    table2,
    uneven_split,
)

_GENERATORS = {
    "table1": lambda: format_table(table1()),
    "table2": lambda: format_table(table2()),
    "figure4": lambda: format_figure4(figure4()),
    "uneven": lambda: format_table(uneven_split()),
    "concurrent": lambda: format_table(concurrent_clients()),
    "roundtrip": lambda: format_table(roundtrip()),
    "ablation-scheduler": lambda: format_table(ablation_scheduler()),
    "ablation-gather": lambda: format_table(ablation_gather()),
    "ablation-header": lambda: format_table(ablation_header()),
}


def main(argv: list[str] | None = None) -> int:
    cli = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the PARDIS paper's tables and figures",
    )
    cli.add_argument(
        "names",
        nargs="*",
        metavar="name",
        help=(
            "which experiment(s) to print: "
            + ", ".join([*_GENERATORS, "all"])
            + " (default: all)"
        ),
    )
    args = cli.parse_args(argv)
    unknown = [
        n for n in args.names if n != "all" and n not in _GENERATORS
    ]
    if unknown:
        cli.error(
            f"unknown experiment(s) {unknown}; choose from "
            f"{[*_GENERATORS, 'all']}"
        )
    names = (
        list(_GENERATORS)
        if not args.names or "all" in args.names
        else args.names
    )
    for i, name in enumerate(names):
        if i:
            print()
        print(_GENERATORS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
