"""Pipelined-invocation benchmark: throughput vs pipeline depth.

Measures the real ORB end to end — CDR marshaling, fabric transport,
server dispatch — under *pipelined* non-blocking invocations: the
client fires a burst of ``roundtrip_nb`` calls and only then touches
the futures, so up to ``pipeline_depth`` requests are in flight while
earlier replies are still on the wire.  Depth 1 restores strictly
serial round-trips (each request waits for the previous reply), which
makes the depth sweep a direct measurement of what the reply
demultiplexer, the server's receive/decode prefetch stage and the
deferred reply path buy.

Both fabrics (in-process, TCP loopback) and both transfer methods
(centralized §3.2, multi-port §3.3) are swept over a configurable set
of depths; see ``tools/bench_pipeline.py`` for the CLI and the CI
smoke gate (depth 8 must beat depth 1).
"""

from __future__ import annotations

import gc
import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

#: The echoed operation; bounded at 16 MiB of doubles so the run-time
#: system can preallocate.
PIPELINE_IDL = """
typedef dsequence<double, 2097152> payload;

interface pipeecho {
    payload roundtrip(in payload data);
};
"""

#: Default depth sweep; 1 is the serial baseline.
DEFAULT_DEPTHS = [1, 2, 4, 8]

#: Default payload: 4 MiB (the acceptance point for the 2x speedup).
DEFAULT_SIZE = 4 << 20

#: Requests per timed burst (>= 2x the deepest pipeline, so steady
#: state dominates the ramp-up).
DEFAULT_REQUESTS = 16

#: Per-request servant service time (milliseconds).  Models the
#: server-side computation a real invocation performs — the thing
#: pipelining overlaps the argument transfer with.  With 0 the sweep
#: degenerates into a pure wire benchmark, which on a single-CPU host
#: is CPU-bound end to end and cannot show pipelining gains (there is
#: no idle time to fill); see ``docs/performance.md``.
DEFAULT_SERVICE_MS = 20.0

#: CI smoke parameters: a payload small enough to finish quickly but
#: large enough that transfer, not protocol headers, dominates.
SMOKE_DEPTHS = [1, 8]
SMOKE_SIZE = 1 << 20
SMOKE_REQUESTS = 12
SMOKE_SERVICE_MS = 20.0

#: Timed bursts per measurement point; the best burst is reported.
#: Single-CPU hosts (CI runners) schedule a dozen ORB threads on one
#: core, so individual bursts can lose tens of milliseconds to
#: scheduling accidents — the best of a few bursts is the stable
#: estimate of what the pipeline sustains.
DEFAULT_REPEATS = 3

TRANSFER_METHODS = ("centralized", "multiport")


@dataclass(frozen=True)
class PipelinePoint:
    """One (fabric, transfer method, depth) measurement."""

    fabric: str
    method: str
    depth: int
    size_bytes: int
    requests: int
    service_ms: float
    seconds: float
    #: Payload megabytes moved per second (both directions count).
    mb_per_s: float
    #: Completed round-trips per second.
    requests_per_s: float
    #: RTS backend the client ran on (``thread`` or ``process``).
    rts: str = "thread"


def _compiled_idl() -> Any:
    from repro import compile_idl

    return compile_idl(PIPELINE_IDL, module_name="pipeline_idl")


def _make_servant_factory(idl: Any, service_s: float) -> Any:
    class EchoServant(idl.pipeecho_skel):
        def roundtrip(self, data: Any) -> Any:
            if service_s > 0:
                time.sleep(service_s)
            return data

    return lambda ctx: EchoServant()


def _measure(
    orb: Any,
    idl: Any,
    fabric_label: str,
    method: str,
    depth: int,
    size_bytes: int,
    requests: int,
    warmup: int,
    service_ms: float,
    repeats: int,
    rts: str = "thread",
) -> PipelinePoint:
    n = max(size_bytes // 8, 1)
    runtime = orb.client_runtime(
        label=f"pipe-{method}-d{depth}", pipeline_depth=depth
    )
    try:
        proxy = idl.pipeecho._bind("pipeecho", runtime, transfer=method)
        arr = np.arange(n, dtype=np.float64)
        data = idl.payload.from_global(arr)
        for _ in range(warmup):
            result = proxy.roundtrip(data)
            if result.length() != n:
                raise RuntimeError("pipeline echo returned a wrong length")
        # A collection pause mid-burst is tens of milliseconds of noise
        # on multi-MiB payloads; keep the cycle collector out of the
        # timed region (refcounting still frees the arrays).
        gc.collect()
        gc.disable()
        try:
            seconds = float("inf")
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                futures = [
                    proxy.roundtrip_nb(data) for _ in range(requests)
                ]
                for future in futures:
                    future.value(timeout=300)
                seconds = min(seconds, time.perf_counter() - start)
        finally:
            gc.enable()
    finally:
        runtime.close()
    moved = 2 * n * 8 * requests
    return PipelinePoint(
        fabric=fabric_label,
        method=method,
        depth=depth,
        size_bytes=n * 8,
        requests=requests,
        service_ms=service_ms,
        seconds=seconds,
        mb_per_s=moved / seconds / 1e6,
        requests_per_s=requests / seconds,
        rts=rts,
    )


def _sweep(
    orb: Any,
    idl: Any,
    fabric_label: str,
    methods: tuple[str, ...],
    depths: list[int],
    size_bytes: int,
    requests: int,
    warmup: int,
    service_ms: float,
    repeats: int,
    rts: str = "thread",
) -> list[PipelinePoint]:
    points = []
    for method in methods:
        for depth in depths:
            points.append(
                _measure(
                    orb,
                    idl,
                    fabric_label,
                    method,
                    depth,
                    size_bytes,
                    requests,
                    warmup,
                    service_ms,
                    repeats,
                    rts,
                )
            )
    return points


def run_pipeline(
    fabric: str = "inproc",
    depths: list[int] | None = None,
    size_bytes: int = DEFAULT_SIZE,
    requests: int = DEFAULT_REQUESTS,
    warmup: int = 1,
    methods: tuple[str, ...] = TRANSFER_METHODS,
    service_ms: float = DEFAULT_SERVICE_MS,
    repeats: int = DEFAULT_REPEATS,
    trace: bool = False,
    rts_backend: str = "thread",
) -> list[PipelinePoint]:
    """Run the depth sweep on one fabric and return the points.

    ``trace=True`` runs the same sweep with ``repro.trace`` recording
    on (spans + metrics for every invocation), which is how
    ``tools/bench_pipeline.py --trace-overhead`` prices the
    instrumentation; the default leaves tracing off, i.e. measures the
    disabled-by-default fast path.

    ``rts_backend="process"`` runs the client sweep in a forked
    process-backend rank over TCP (socket fabric only): request
    pipelining then overlaps with genuinely parallel server-side
    compute instead of time-slicing one GIL.
    """
    from repro import ORB

    idl = _compiled_idl()
    depths = depths or DEFAULT_DEPTHS
    if rts_backend not in ("thread", "process"):
        raise ValueError(f"unknown RTS backend {rts_backend!r}")
    if rts_backend == "process":
        if fabric != "socket":
            raise ValueError(
                "rts_backend='process' needs fabric='socket': the "
                "in-process fabric cannot span OS processes"
            )
        return _run_pipeline_process(
            idl, methods, depths, size_bytes, requests, warmup,
            service_ms, repeats, trace,
        )
    if fabric == "inproc":
        with ORB("pipeline", trace=trace) as orb:
            # The echo servant is stateless, so the ordering contract
            # can be dropped: a single pipelined client's requests
            # overlap on the dispatch pool.
            orb.serve(
                "pipeecho",
                _make_servant_factory(idl, service_ms / 1e3),
                nthreads=1,
                dispatch_policy="concurrent",
            )
            return _sweep(
                orb, idl, fabric, methods, depths, size_bytes,
                requests, warmup, service_ms, repeats,
            )
    elif fabric == "socket":
        from repro.orb.naming import NamingService
        from repro.orb.socketnet import SocketFabric

        naming = NamingService()
        with SocketFabric("pipeline-server") as server_fabric, \
                SocketFabric("pipeline-client") as client_fabric:
            server_orb = ORB(
                "pipeline-server",
                fabric=server_fabric,
                naming=naming,
                trace=trace,
            )
            client_orb = ORB(
                "pipeline-client",
                fabric=client_fabric,
                naming=naming,
                trace=trace,
            )
            with server_orb, client_orb:
                server_orb.serve(
                    "pipeecho",
                    _make_servant_factory(idl, service_ms / 1e3),
                    nthreads=1,
                    dispatch_policy="concurrent",
                )
                return _sweep(
                    client_orb, idl, fabric, methods, depths,
                    size_bytes, requests, warmup, service_ms, repeats,
                )
    raise ValueError(f"unknown fabric {fabric!r}")


def _run_pipeline_process(
    idl: Any,
    methods: tuple[str, ...],
    depths: list[int],
    size_bytes: int,
    requests: int,
    warmup: int,
    service_ms: float,
    repeats: int,
    trace: bool,
) -> list[PipelinePoint]:
    """Socket depth sweep with the client in a forked process rank."""
    from repro import ORB
    from repro.orb.socketnet import (
        NamingServer,
        RemoteNamingClient,
        SocketFabric,
    )
    from repro.rts import spawn_spmd

    with NamingServer() as names, \
            SocketFabric("pipeline-server") as server_fabric:
        host, port = names.host, names.tcp_port
        server_orb = ORB(
            "pipeline-server",
            fabric=server_fabric,
            naming=RemoteNamingClient(host, port),
            trace=trace,
        )
        with server_orb:
            server_orb.serve(
                "pipeecho",
                _make_servant_factory(idl, service_ms / 1e3),
                nthreads=1,
                dispatch_policy="concurrent",
            )

            def client_body(ctx: Any) -> list[PipelinePoint]:
                with SocketFabric("pipeline-client") as client_fabric:
                    client_orb = ORB(
                        "pipeline-client",
                        fabric=client_fabric,
                        naming=RemoteNamingClient(host, port),
                        trace=trace,
                    )
                    with client_orb:
                        return _sweep(
                            client_orb, idl, "socket", methods,
                            depths, size_bytes, requests, warmup,
                            service_ms, repeats, rts="process",
                        )

            handle = spawn_spmd(
                client_body, 1, backend="process", name="pipeline"
            )
            (points,) = handle.join(None)
            return points


def speedups(points: list[PipelinePoint]) -> dict[tuple[str, str], float]:
    """Deepest-vs-depth-1 throughput ratio per (fabric, method)."""
    by_key: dict[tuple[str, str], dict[int, float]] = {}
    for p in points:
        by_key.setdefault((p.fabric, p.method), {})[p.depth] = p.mb_per_s
    ratios = {}
    for key, by_depth in by_key.items():
        base = by_depth.get(1)
        if base is None or len(by_depth) < 2:
            continue
        deepest = by_depth[max(by_depth)]
        ratios[key] = deepest / base
    return ratios


def points_as_dicts(points: list[PipelinePoint]) -> list[dict]:
    """The points as JSON-ready dicts."""
    return [asdict(p) for p in points]


def throughput_ratio(
    points: list[PipelinePoint] | list[dict],
    reference: list[PipelinePoint] | list[dict],
) -> float:
    """Geometric-mean throughput ratio of ``points`` over
    ``reference`` across matching (fabric, method, depth) keys.

    1.0 means identical throughput; 0.98 means ``points`` runs 2%
    slower overall.  The geometric mean over every matching point is
    the noise-robust "did the benchmark regress" number the
    trace-overhead gate checks (see ``tools/bench_pipeline.py``).
    Accepts live points or the dicts of a saved BENCH_pipeline.json.
    """

    def as_map(items: list[Any]) -> dict[tuple[str, str, int], float]:
        out = {}
        for item in items:
            record = item if isinstance(item, dict) else asdict(item)
            key = (record["fabric"], record["method"], record["depth"])
            out[key] = record["mb_per_s"]
        return out

    ours, theirs = as_map(points), as_map(reference)
    common = sorted(set(ours) & set(theirs))
    if not common:
        raise ValueError(
            "no matching (fabric, method, depth) points to compare"
        )
    log_sum = 0.0
    import math

    for key in common:
        log_sum += math.log(ours[key] / theirs[key])
    return math.exp(log_sum / len(common))


def format_pipeline(points: list[PipelinePoint]) -> str:
    """Render the sweep as a fixed-width table."""
    lines = [
        "Pipelined invocations (real ORB, both directions counted)",
        f"{'fabric':<8} {'method':<12} {'depth':>5} {'size':>8} "
        f"{'MB/s':>10} {'req/s':>8}",
    ]
    for p in points:
        size = (
            f"{p.size_bytes // 1024}KiB"
            if p.size_bytes < 1 << 20
            else f"{p.size_bytes // (1 << 20)}MiB"
        )
        lines.append(
            f"{p.fabric:<8} {p.method:<12} {p.depth:>5} {size:>8} "
            f"{p.mb_per_s:>10.1f} {p.requests_per_s:>8.1f}"
        )
    for (fabric, method), ratio in sorted(speedups(points).items()):
        lines.append(
            f"speedup {fabric}/{method}: deepest vs depth-1 = {ratio:.2f}x"
        )
    return "\n".join(lines)
