"""Fault-injection benchmark: goodput under seeded frame loss.

Measures the fault-tolerance layer end to end: a client invokes an
echo servant through a :class:`~repro.ft.faults.FaultyFabric` that
drops (and optionally delays) frames from a seeded deterministic
schedule, under an :class:`~repro.ft.policy.FtPolicy` that retries
timed-out attempts.  The server runs with a reply cache so a retried
request whose reply was lost is answered from the cache rather than
re-executed.

The figure of merit is *goodput*: application payload bytes per
second of wall clock, counting only completed invocations.  At 0%
loss this is the plain wire throughput; at 1% loss it shows what the
retry machinery costs (each lost frame burns one attempt timeout).
The CI gate is deliberately coarse — every invocation must complete
and goodput must stay positive under 1% loss — because absolute
numbers are machine-dependent; see ``tools/bench_faults.py``.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Any

import numpy as np

#: The echoed operation; bounded so buffers preallocate.
FAULTS_IDL = """
typedef dsequence<double, 262144> payload;

interface faultecho {
    payload roundtrip(in payload data);
};
"""

#: Default frame-loss sweep: clean baseline and the 1% gate point.
DEFAULT_LOSS_RATES = [0.0, 0.01]

#: Default payload: 64 KiB (small enough that a retried attempt is
#: cheap, large enough that goodput measures data, not headers).
DEFAULT_SIZE = 64 << 10

#: Invocations per point (the acceptance criterion's 100).
DEFAULT_REQUESTS = 100

#: Per-attempt timeout (seconds).  A dropped request or reply frame
#: costs exactly one of these before the retry fires, so it bounds
#: the damage per lost frame.
DEFAULT_TIMEOUT_S = 0.5

#: CI smoke parameters.
SMOKE_LOSS_RATES = [0.0, 0.01]
SMOKE_SIZE = 16 << 10
SMOKE_REQUESTS = 30

#: Server-side reply-cache budget used by the benchmark.
REPLY_CACHE_BYTES = 4 << 20

TRANSFER_METHODS = ("centralized", "multiport")


@dataclass(frozen=True)
class FaultPoint:
    """One (fabric, transfer method, loss rate) measurement."""

    fabric: str
    method: str
    drop_rate: float
    delay_rate: float
    seed: int
    size_bytes: int
    requests: int
    completed: int
    #: Client-side retry attempts the policy performed.
    retries: int
    #: Frames the schedule actually dropped/delayed (all kinds).
    faults_injected: int
    seconds: float
    #: Completed payload megabytes per second (both directions).
    goodput_mb_per_s: float


def _compiled_idl() -> Any:
    from repro import compile_idl

    return compile_idl(FAULTS_IDL, module_name="faults_idl")


def _make_servant_factory(idl: Any) -> Any:
    class EchoServant(idl.faultecho_skel):
        def roundtrip(self, data: Any) -> Any:
            return data

    return lambda ctx: EchoServant()


def _injected_counter(faulty: Any) -> Any:
    """Total injected faults (clean forwards excluded) as a thunk."""
    return lambda: sum(
        count
        for action, count in faulty.fault_stats().items()
        if action != "forwarded"
    )


def _policy() -> Any:
    from repro.ft import FtPolicy

    # Generous retry budget and no deadline: the benchmark measures
    # goodput degradation, not give-up behavior.  Backoff is short —
    # the attempt timeout already paces retries.
    return FtPolicy(
        max_retries=12,
        backoff_base_ms=5.0,
        backoff_cap_ms=50.0,
    )


def _measure(
    orb: Any,
    idl: Any,
    fabric_label: str,
    method: str,
    drop_rate: float,
    delay_rate: float,
    seed: int,
    size_bytes: int,
    requests: int,
    faults_before: int,
    fault_count: Any,
) -> FaultPoint:
    n = max(size_bytes // 8, 1)
    runtime = orb.client_runtime(
        label=f"faults-{method}-p{drop_rate}", ft_policy=_policy()
    )
    try:
        proxy = idl.faultecho._bind(
            "faultecho", runtime, transfer=method
        )
        arr = np.arange(n, dtype=np.float64)
        data = idl.payload.from_global(arr)
        completed = 0
        start = time.perf_counter()
        for _ in range(requests):
            result = proxy.roundtrip(data)
            if result.length() != n:
                raise RuntimeError("fault echo returned a wrong length")
            completed += 1
        seconds = time.perf_counter() - start
        retries = runtime.ft_stats.snapshot()["retries"]
    finally:
        runtime.close()
    moved = 2 * n * 8 * completed
    return FaultPoint(
        fabric=fabric_label,
        method=method,
        drop_rate=drop_rate,
        delay_rate=delay_rate,
        seed=seed,
        size_bytes=n * 8,
        requests=requests,
        completed=completed,
        retries=retries,
        faults_injected=fault_count() - faults_before,
        seconds=seconds,
        goodput_mb_per_s=moved / seconds / 1e6,
    )


def run_faults(
    fabric: str = "inproc",
    loss_rates: list[float] | None = None,
    delay_rate: float = 0.0,
    seed: int = 7,
    size_bytes: int = DEFAULT_SIZE,
    requests: int = DEFAULT_REQUESTS,
    methods: tuple[str, ...] = TRANSFER_METHODS,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> list[FaultPoint]:
    """Run the loss sweep on one fabric and return the points.

    Each (method, loss rate) point runs under a fresh
    :class:`~repro.ft.faults.FaultSchedule` seeded from ``seed`` and
    the point's position, so every run of the benchmark injects the
    identical fault sequence.
    """
    from repro import ORB, FaultSchedule, FaultyFabric
    from repro.orb.transport import Fabric

    idl = _compiled_idl()
    loss_rates = DEFAULT_LOSS_RATES if loss_rates is None else loss_rates

    points = []
    for m_index, method in enumerate(methods):
        for l_index, rate in enumerate(loss_rates):
            schedule = FaultSchedule(
                seed=seed + 100 * m_index + l_index,
                drop=rate,
                delay=delay_rate,
                delay_ms=2.0,
            )
            if fabric == "inproc":
                faulty = FaultyFabric(Fabric("faults"), schedule)
                with ORB(
                    "faults", fabric=faulty, timeout=timeout_s
                ) as orb:
                    orb.serve(
                        "faultecho",
                        _make_servant_factory(idl),
                        nthreads=1,
                        dispatch_policy="concurrent",
                        reply_cache_bytes=REPLY_CACHE_BYTES,
                    )
                    points.append(
                        _measure(
                            orb, idl, fabric, method, rate,
                            delay_rate, schedule.seed, size_bytes,
                            requests, 0, _injected_counter(faulty),
                        )
                    )
            elif fabric == "socket":
                from repro.orb.naming import NamingService
                from repro.orb.socketnet import SocketFabric

                naming = NamingService()
                with SocketFabric("faults-server") as server_fabric, \
                        SocketFabric("faults-client") as raw_client:
                    faulty = FaultyFabric(raw_client, schedule)
                    server_orb = ORB(
                        "faults-server",
                        fabric=server_fabric,
                        naming=naming,
                        timeout=timeout_s,
                    )
                    client_orb = ORB(
                        "faults-client",
                        fabric=faulty,
                        naming=naming,
                        timeout=timeout_s,
                    )
                    with server_orb, client_orb:
                        server_orb.serve(
                            "faultecho",
                            _make_servant_factory(idl),
                            nthreads=1,
                            dispatch_policy="concurrent",
                            reply_cache_bytes=REPLY_CACHE_BYTES,
                        )
                        points.append(
                            _measure(
                                client_orb, idl, fabric, method,
                                rate, delay_rate, schedule.seed,
                                size_bytes, requests, 0,
                                _injected_counter(faulty),
                            )
                        )
            else:
                raise ValueError(f"unknown fabric {fabric!r}")
    return points


def points_as_dicts(points: list[FaultPoint]) -> list[dict]:
    """The points as JSON-ready dicts."""
    return [asdict(p) for p in points]


def gate_failures(points: list[FaultPoint]) -> list[str]:
    """The coarse CI gate: every point must complete every request
    with positive goodput (no hang, no silent loss)."""
    failures = []
    for p in points:
        label = f"{p.fabric}/{p.method}@{p.drop_rate:.0%}"
        if p.completed != p.requests:
            failures.append(
                f"{label}: {p.completed}/{p.requests} completed"
            )
        elif p.goodput_mb_per_s <= 0:
            failures.append(f"{label}: goodput is not positive")
    return failures


def format_faults(points: list[FaultPoint]) -> str:
    """Render the sweep as a fixed-width table."""
    lines = [
        "Goodput under injected frame loss (retrying client, "
        "reply-caching server)",
        f"{'fabric':<8} {'method':<12} {'loss':>6} {'size':>8} "
        f"{'done':>9} {'retries':>7} {'faults':>6} {'MB/s':>8}",
    ]
    for p in points:
        lines.append(
            f"{p.fabric:<8} {p.method:<12} {p.drop_rate:>6.1%} "
            f"{p.size_bytes // 1024:>5}KiB "
            f"{p.completed:>4}/{p.requests:<4} {p.retries:>7} "
            f"{p.faults_injected:>6} {p.goodput_mb_per_s:>8.1f}"
        )
    return "\n".join(lines)
