"""The paper's published numbers, transcribed for comparison.

Source: Tables 1-2 and Figure 4 of Keahey & Gannon, HPDC 1997.  The
available text of the paper is OCR of a scan and some column headers
are garbled; where attribution is uncertain we record what the prose
states unambiguously and mark reconstructed cells.  All times are
milliseconds for one blocking invocation carrying one ``in``
distributed sequence of 2^20 doubles (8 MiB).

Table 1 (centralized): rows are the server's process count ``n``; the
two column groups are client process counts (the prose confirms the
invocation time grows with resources on *either* side, and Figure 4's
centralized peak of 12.27 MB/s matches the client=4, server=8 cell:
8 MiB / 0.697 s = 12.0 MB/s).

Table 2 (multi-port): total invocation times per client group and the
barrier column are recoverable; the prose fixes the key shapes (see
``TABLE2_CLAIMS``).
"""

from __future__ import annotations

#: Table 1 — centralized method.  {(nclient, nserver): t_inv_ms}.
TABLE1_PAPER: dict[tuple[int, int], float] = {
    (1, 1): 417.0,
    (1, 2): 442.0,
    (1, 4): 451.0,
    (1, 8): 461.0,
    (4, 1): 571.0,
    (4, 2): 634.0,
    (4, 4): 685.0,
    (4, 8): 697.0,
}

#: Table 1 — the gather/scatter component (server-side scatter of the
#: 'in' argument), same for both client groups to within noise.
TABLE1_SCATTER_PAPER: dict[int, float] = {
    1: 0.2,
    2: 20.2,
    4: 24.6,
    8: 26.2,
}

#: Table 1 — receive+unpack at the server's communicating thread.
TABLE1_RECV_PAPER: dict[int, float] = {1: 17.1, 2: 20.3, 4: 21.2, 8: 21.7}

#: Table 2 — multi-port method, total invocation time.
#: {(nclient, nserver): t_inv_ms}.  The client=1 row is stated
#: unambiguously; the client=2 and client=4 groups are reconstructed
#: from the OCR with the prose's constraints (monotone improvement
#: with client threads; minimum at the most powerful configuration).
TABLE2_PAPER: dict[tuple[int, int], float] = {
    (1, 1): 431.0,
    (1, 2): 425.0,
    (1, 4): 412.0,
    (1, 8): 393.0,
    (2, 1): 367.0,
    (2, 2): 376.0,
    (2, 4): 368.0,
    (2, 8): 336.0,
    (4, 1): 285.0,
    (4, 2): 298.0,
    (4, 4): 296.0,
    (4, 8): 261.0,
}

#: Table 2 — post-invocation barrier wait of the communicating thread.
TABLE2_BARRIER_PAPER: dict[tuple[int, int], float] = {
    (1, 1): 0.03,
    (1, 2): 165.0,
    (1, 4): 256.0,
    (1, 8): 307.0,
    (2, 1): 0.03,
    (2, 2): 3.9,
    (2, 4): 169.0,
    (2, 8): 240.0,
    (4, 1): 0.03,
    (4, 2): 3.9,
    (4, 4): 8.3,
    (4, 8): 129.0,
}

#: Table 2 — per-thread pack (marshal) time, client=1/2/4 groups.
TABLE2_PACK_PAPER: dict[int, float] = {1: 37.2, 2: 16.4, 4: 13.4}

#: Table 2 — per-thread receive+unpack at the server (client=1 group).
TABLE2_RECV_PAPER: dict[int, float] = {1: 23.5, 2: 18.3, 4: 8.1, 8: 3.5}

#: Figure 4 — effective bandwidth (MB/s) of an 'in'-argument transfer,
#: including all invocation overhead, at client=4 / server=8.
FIGURE4_PAPER = {
    "centralized_peak_mbps": 12.27,
    "centralized_peak_length": 10**5,
    "multiport_peak_mbps": 26.7,
    "multiport_peak_length": 10**6,
    # "for small data sizes the performance of both methods is nearly
    # the same"
    "small_size_equal_below": 10**4,
}

#: §3.3 prose: an uneven split of the same sequence timed 370 ms,
#: "of comparable efficiency" with the even case.
UNEVEN_SPLIT_PAPER_MS = 370.0

#: The prose claims every reproduction must satisfy (checked by the
#: simnet regression tests and reported in EXPERIMENTS.md).
TABLE2_CLAIMS = (
    "invocation time decreases as client threads increase",
    "per-thread pack time decreases with more client threads",
    "per-thread unpack time decreases with more server threads",
    "barrier wait is large when server threads outnumber client "
    "threads (sequentialized sends) and near zero otherwise",
    "multi-port never underperforms centralized at 2^20 doubles",
)
