"""Benchmark harness: regenerates every table and figure of the paper.

``python -m repro.bench`` prints all of them; ``pytest benchmarks/
--benchmark-only`` times the underlying models and prints the same
tables in its terminal summary.  The numbers come from
:mod:`repro.simnet` (simulated time); the *paper* columns come from
:mod:`repro.bench.paper_data`.
"""

from repro.bench.paper_data import (
    FIGURE4_PAPER,
    TABLE1_PAPER,
    TABLE2_PAPER,
    UNEVEN_SPLIT_PAPER_MS,
)
from repro.bench.tables import (
    TableResult,
    figure4,
    format_figure4,
    format_table,
    table1,
    table2,
    uneven_split,
    concurrent_clients,
    roundtrip,
    ablation_scheduler,
    ablation_gather,
    ablation_header,
)

__all__ = [
    "FIGURE4_PAPER",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "TableResult",
    "UNEVEN_SPLIT_PAPER_MS",
    "ablation_gather",
    "ablation_header",
    "ablation_scheduler",
    "concurrent_clients",
    "figure4",
    "format_figure4",
    "roundtrip",
    "format_table",
    "table1",
    "table2",
    "uneven_split",
]
