"""The shared network link: processor-sharing bandwidth model.

One physical link joins the two machines (§3.1: "the network transfer
is conducted over a 155 Mb/s ATM link … the machines as well as the
link were dedicated").  When several transfers are in flight — the
multi-port method's interleaved sends — each gets an equal share of
the raw bandwidth, and crucially the link never idles while any
transfer has data ready.  A single synchronous sender, by contrast,
leaves the link idle during every rendezvous stall, which is exactly
the effect the paper exploits: "the multi-port method allowed us to
better utilize the network link".

The model is classic egalitarian processor sharing: with ``k`` active
transfers each proceeds at ``bandwidth / k``; on every arrival or
departure the remaining work of each transfer is aged and the next
completion re-scheduled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.simnet.engine import Event, SimulationError, Simulator


@dataclass
class _Transfer:
    nbytes: float
    remaining: float
    event: Event
    tag: int


class SharedLink:
    """A full-duplex-agnostic shared pipe (the paper's single ATM link).

    ``transmit(nbytes)`` returns an event that triggers when the final
    byte has been serialized onto the wire and propagated (one latency
    is charged per transfer, up front).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float = 0.0,
        fault_schedule: object | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise SimulationError("link bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.latency = latency
        #: Optional :class:`repro.ft.faults.FaultSchedule`.  A
        #: ``"drop"`` decision models a lost-and-retransmitted
        #: transfer: the payload crosses the link twice and pays one
        #: extra latency (the retransmit timeout), so loss shows up as
        #: goodput degradation rather than a hang.
        self.fault_schedule = fault_schedule
        self._active: list[_Transfer] = []
        self._last_update = 0.0
        self._wakeup_tag = 0
        self._tags = itertools.count()
        #: Total bytes carried (for utilization accounting).
        self.bytes_carried = 0.0
        #: Integral of busy time (at least one active transfer).
        self.busy_time = 0.0
        #: Transfers the fault schedule dropped (then retransmitted).
        self.faults_injected = 0

    def transmit(self, nbytes: float) -> Event:
        """Start a transfer; returns its completion event."""
        if nbytes < 0:
            raise SimulationError("cannot transmit negative bytes")
        event = self.sim.event(f"transmit({nbytes})")
        if nbytes == 0:
            self.sim._schedule(self.latency, event.succeed)
            return event
        extra_latency = 0.0
        if self.fault_schedule is not None and "drop" in (
            self.fault_schedule.decide("data")
        ):
            # Lost on the wire: the sender retransmits after one
            # extra latency, and the payload is carried twice.
            self.faults_injected += 1
            extra_latency = self.latency
            nbytes *= 2
        self.bytes_carried += nbytes

        def start() -> None:
            self._age()
            self._active.append(
                _Transfer(nbytes, float(nbytes), event, next(self._tags))
            )
            self._reschedule()

        # Latency first, then the queue.
        self.sim._schedule(self.latency + extra_latency, start)
        return event

    @property
    def active_transfers(self) -> int:
        return len(self._active)

    def _rate(self) -> float:
        if not self._active:
            return 0.0
        return self.bandwidth / len(self._active)

    def _age(self) -> None:
        """Advance every active transfer to the current time."""
        elapsed = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if elapsed <= 0 or not self._active:
            return
        self.busy_time += elapsed
        rate = self._rate()
        for transfer in self._active:
            transfer.remaining = max(
                0.0, transfer.remaining - rate * elapsed
            )

    def _reschedule(self) -> None:
        """Schedule the next completion check (cancelling stale ones
        by tag)."""
        self._wakeup_tag += 1
        tag = self._wakeup_tag
        if not self._active:
            return
        rate = self._rate()
        next_done = min(t.remaining for t in self._active)
        delay = next_done / rate

        def wake() -> None:
            if tag != self._wakeup_tag:
                return  # superseded by a later arrival/departure
            self._age()
            finished = [
                t for t in self._active if t.remaining <= 1e-9
            ]
            self._active = [
                t for t in self._active if t.remaining > 1e-9
            ]
            for transfer in finished:
                transfer.event.succeed()
            self._reschedule()

        self.sim._schedule(delay, wake)

    def utilization(self) -> float:
        """Fraction of elapsed time the link was busy."""
        if self.sim.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.sim.now)
