"""Concurrent-client contention: several parallel clients, one object.

The paper separates the multi-port invocation header from argument
transfer because "sending the invocation to every computing thread …
could lead to contention between different invoking clients" (§3.3).
The functional plane enforces the correctness half of that argument
(every thread serves the same request); this model quantifies the
*throughput* half: several independent client applications fire one
invocation each at the same SPMD object, all sharing the single
physical link, while the object processes requests one at a time.

Key effect captured: argument transfer for request *i+1* overlaps the
object's processing of request *i* (ports buffer), so the pipeline's
throughput is set by max(link, per-request processing) — and the
multi-port method keeps both stages shorter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist import BlockTemplate, transfer_schedule
from repro.simnet.calibration import SimConfig
from repro.simnet.engine import Gate, Simulator
from repro.simnet.invocation import _make_link, _segments


@dataclass(frozen=True)
class ConcurrentBreakdown:
    """Aggregate results of a k-client burst."""

    method: str
    nclients: int
    client_threads: int
    nserver: int
    nbytes: int
    #: Time until the last client's reply (ms).
    makespan: float
    #: Mean per-request latency, request send to reply (ms).
    mean_latency: float
    #: Aggregate payload rate over the burst (MB/s).
    aggregate_bandwidth: float
    link_utilization: float


def simulate_concurrent(
    cfg: SimConfig,
    method: str,
    nclients: int,
    client_threads: int,
    nserver: int,
    nbytes: int,
    *,
    element_size: int = 8,
) -> ConcurrentBreakdown:
    """``nclients`` independent client apps each invoke once at t=0.

    Each client application runs on its own machine (its own pack
    capacity and scheduler state) — the shared resources are the one
    link and the one SPMD object.  The object serves requests in the
    order their *headers* arrive, one at a time, exactly like the
    functional plane's dispatch loop.
    """
    if method not in ("centralized", "multiport"):
        raise ValueError(f"unknown method {method!r}")
    if nclients < 1:
        raise ValueError("need at least one client")
    nelems = nbytes // element_size
    client_layout = BlockTemplate().layout(nelems, client_threads)
    server_layout = BlockTemplate().layout(nelems, nserver)
    schedule = transfer_schedule(client_layout, server_layout)
    sim = Simulator()
    link = _make_link(sim, cfg)
    stall = cfg.pair_stall(
        client_threads, nserver, multiport=method == "multiport"
    )
    finish_times: list[float] = [0.0] * nclients
    #: Transfer-complete events, one per request.
    arrived: list[Gate] = []
    #: The object's serial processing queue (ready events in order).
    reply_events = [sim.event(f"reply{j}") for j in range(nclients)]

    if method == "centralized":
        for _ in range(nclients):
            arrived.append(sim.gate(1))

        def client_app(j: int):
            # Gather + pack on the client's own machine.
            remote = [
                client_layout.local_length(r) * element_size
                for r in range(1, client_threads)
                if client_layout.local_length(r)
            ]
            gather = cfg.client.gather_time(remote)
            if gather:
                yield sim.timeout(gather)
            yield sim.timeout(cfg.client.pack_time(nbytes))
            for seg in _segments(nbytes, cfg.segment_bytes):
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(seg)
            arrived[j].arrive()
            yield reply_events[j]
            finish_times[j] = sim.now + cfg.request_overhead

        def server_proc():
            for j in range(nclients):
                yield arrived[j]
                # Serialized unpack + scatter at the object.
                yield sim.timeout(cfg.server.unpack_time(nbytes))
                out = [
                    server_layout.local_length(r) * element_size
                    for r in range(1, nserver)
                    if server_layout.local_length(r)
                ]
                scatter = cfg.server.scatter_time(out)
                if scatter:
                    yield sim.timeout(scatter)
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(64.0)
                reply_events[j].succeed()

        for j in range(nclients):
            sim.process(client_app(j), f"client{j}")
        sim.process(server_proc(), "server")

    else:
        chunk_counts = len([s for s in schedule if s.nelems])
        for _ in range(nclients):
            arrived.append(sim.gate(max(1, chunk_counts)))

        def mp_thread(j: int, rank: int):
            local_bytes = client_layout.local_length(rank) * element_size
            if local_bytes:
                yield sim.timeout(cfg.client.pack_time(local_bytes))
            sent_any = False
            for step in schedule:
                if step.src_rank != rank or not step.nelems:
                    continue
                for seg in _segments(
                    step.nelems * element_size, cfg.segment_bytes
                ):
                    if stall:
                        yield sim.timeout(stall)
                    yield link.transmit(seg)
                arrived[j].arrive()
                sent_any = True
            if not sent_any and rank == 0 and chunk_counts == 0:
                arrived[j].arrive()

        def mp_waiter(j: int):
            yield reply_events[j]
            finish_times[j] = sim.now + cfg.request_overhead

        def server_proc():
            for j in range(nclients):
                yield arrived[j]
                # Parallel unpack across the object's threads: the
                # slowest block gates the post-invocation barrier.
                worst = max(
                    (
                        server_layout.local_length(r) * element_size
                        for r in range(nserver)
                    ),
                    default=0,
                )
                if worst:
                    yield sim.timeout(cfg.server.unpack_time(worst))
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(64.0)
                reply_events[j].succeed()

        for j in range(nclients):
            for rank in range(client_threads):
                sim.process(mp_thread(j, rank), f"c{j}t{rank}")
            sim.process(mp_waiter(j), f"w{j}")
        sim.process(server_proc(), "server")

    sim.run()
    makespan = max(finish_times)
    total_mb = nclients * nbytes / (1024.0 * 1024.0)
    return ConcurrentBreakdown(
        method=method,
        nclients=nclients,
        client_threads=client_threads,
        nserver=nserver,
        nbytes=nbytes,
        makespan=makespan,
        mean_latency=sum(finish_times) / nclients,
        aggregate_bandwidth=total_mb / (makespan / 1e3),
        link_utilization=link.utilization(),
    )
