"""A minimal generator-based discrete-event engine.

Processes are Python generators that ``yield`` events; the simulator
resumes a process when the event it waits on triggers.  The engine is
deterministic: simultaneous events fire in schedule order.

The vocabulary is deliberately small — timeouts, one-shot events,
conjunction (:class:`AllOf`), counting gates (:class:`Gate`) — because
the invocation models only need rendezvous and delay.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable


class SimulationError(RuntimeError):
    """Deadlock, double-trigger, or a process error."""


class Event:
    """A one-shot occurrence processes can wait on."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        # Callbacks run via the event queue so ordering is global.
        self.sim._schedule(0.0, self._fire)
        return self

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.triggered:
            self.sim._schedule(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)


class Process(Event):
    """A running generator; triggers (as an event) when it returns."""

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "process",
    ) -> None:
        super().__init__(sim, name)
        self._generator = generator
        sim._schedule(0.0, lambda: self._resume(None))

    def _resume(self, sent: Any) -> None:
        try:
            target = self._generator.send(sent)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Exception as exc:
            raise SimulationError(
                f"process {self.name!r} raised {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                f"not an Event"
            )
        target.add_callback(lambda event: self._resume(event.value))


class AllOf(Event):
    """Triggers when every constituent event has triggered."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, "all_of")
        events = list(events)
        self._waiting = len(events)
        if not events:
            self.succeed([])
            return
        self._values: list[Any] = [None] * len(events)
        for index, event in enumerate(events):
            event.add_callback(self._make_collector(index))

    def _make_collector(self, index: int) -> Callable[[Event], None]:
        def collect(event: Event) -> None:
            self._values[index] = event.value
            self._waiting -= 1
            if self._waiting == 0:
                self.succeed(self._values)

        return collect


class Gate(Event):
    """Triggers after :meth:`arrive` has been called ``n`` times.

    The simulation's barrier/chunk-counting primitive.  Arrival times
    are recorded so a model can report per-participant barrier waits.
    """

    def __init__(self, sim: "Simulator", n: int, name: str = "gate") -> None:
        super().__init__(sim, name)
        if n < 0:
            raise SimulationError("gate count cannot be negative")
        self._remaining = n
        self.arrival_times: list[float] = []
        if n == 0:
            self.succeed()

    def arrive(self) -> "Gate":
        if self._remaining <= 0:
            raise SimulationError(f"gate {self.name!r} over-arrived")
        self.arrival_times.append(self.sim.now)
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed()
        return self


class Simulator:
    """The event loop: a time-ordered heap of thunks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), fn)
        )

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event triggering ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("negative timeout")
        event = Event(self, f"timeout({delay})")
        self._schedule(delay, lambda: event.succeed(value))
        return event

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = "process"
    ) -> Process:
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def gate(self, n: int, name: str = "gate") -> Gate:
        return Gate(self, n, name)

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; returns the final simulated time."""
        while self._heap:
            time, _seq, fn = heapq.heappop(self._heap)
            if until is not None and time > until:
                heapq.heappush(self._heap, (time, _seq, fn))
                self.now = until
                return self.now
            self.now = time
            fn()
        return self.now
