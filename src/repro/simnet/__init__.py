"""A discrete-event simulator of the paper's testbed (performance plane).

The functional plane (``repro.orb``) proves the protocols correct;
this package reproduces their *performance* on the paper's hardware —
a 4-processor SGI Onyx R4400 client and a 10-processor SGI Power
Challenge R8000 server joined by one dedicated ATM link (§3.1) — which
no longer exists.  The simulator executes the same transfer schedules
as the real engines (both planes call
:func:`repro.dist.transfer_schedule`), timing them against three
models:

- a **processor-sharing link** (:mod:`network`): concurrent transfers
  share the raw bandwidth fairly, which is how the multi-port method's
  interleaved sends keep the wire busy while any one pair is stalled;
- an **OS scheduler-interference model** (:mod:`machine`): each
  synchronous segment rendezvous stalls for a scheduling delay that
  grows with the number of computing threads on a machine — the
  paper's explanation for the centralized method slowing down as
  resources are *added*;
- **per-machine CPU cost models** (:mod:`machine`): marshaling,
  unmarshaling and shared-memory gather/scatter rates.

:mod:`calibration` holds the constants fitted to the paper's reported
numbers; :mod:`invocation` runs one invocation under either transfer
method and returns the component breakdown the paper's tables report.
"""

from repro.simnet.engine import (
    AllOf,
    Event,
    Gate,
    Process,
    SimulationError,
    Simulator,
)
from repro.simnet.network import SharedLink
from repro.simnet.machine import MachineModel
from repro.simnet.calibration import SimConfig, paper_testbed
from repro.simnet.invocation import (
    CentralizedBreakdown,
    MultiPortBreakdown,
    simulate_centralized,
    simulate_multiport,
)
from repro.simnet.concurrent import ConcurrentBreakdown, simulate_concurrent

__all__ = [
    "AllOf",
    "CentralizedBreakdown",
    "ConcurrentBreakdown",
    "Event",
    "Gate",
    "MachineModel",
    "MultiPortBreakdown",
    "Process",
    "SharedLink",
    "SimConfig",
    "SimulationError",
    "Simulator",
    "paper_testbed",
    "simulate_centralized",
    "simulate_concurrent",
    "simulate_multiport",
]
