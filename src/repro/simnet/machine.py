"""Per-machine cost models: CPUs, memory paths and the scheduler.

Times are milliseconds, sizes bytes, rates MB/s (converted internally).

The scheduler-interference model captures the paper's observation
(§3.2): "the computing threads are descheduled on issuing system calls
and … increasing the number of computing threads decreases the
probability that a particular thread will be scheduled at any time.
Communication always takes place between a particular pair of threads
and is synchronous for large data sizes, so this behavior will cause
the time of send to increase."

Each synchronous segment rendezvous therefore stalls for

    stall(n) = stall_base + stall_scale * (1 - 1/n)

on each machine, where ``n`` is the number of computing threads the
application runs there: with one thread the only cost is the base
syscall/reschedule latency; every extra thread lowers the chance that
the *particular* thread the rendezvous needs is the one on a CPU, with
diminishing effect (the 1/n saturation).  The multi-port method does
not beat this per-pair cost — it overlaps it: while one pair is
stalled another pair's data occupies the link (see
:mod:`repro.simnet.network`), which is the paper's "it is more
probable that any of a number of threads will be scheduled than that a
particular thread will be scheduled".
"""

from __future__ import annotations

from dataclasses import dataclass

_MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class MachineModel:
    """One end of the testbed."""

    name: str
    ncpus: int
    #: Shared-memory copy bandwidth for RTS gather/scatter (MB/s).
    mem_bandwidth: float
    #: Marshaling (pack) rate (MB/s).
    pack_bandwidth: float
    #: Unmarshaling (unpack) rate (MB/s).
    unpack_bandwidth: float
    #: Per-rendezvous stall with a single computing thread (ms).
    stall_base: float
    #: Additional stall at the many-thread limit (ms).
    stall_scale: float
    #: Fixed per-RTS-message overhead for gather/scatter chunks (ms).
    message_overhead: float = 0.5

    def stall(self, nthreads: int) -> float:
        """Expected scheduler stall per rendezvous (ms)."""
        if nthreads < 1:
            raise ValueError("a machine runs at least one thread")
        return self.stall_base + self.stall_scale * (1.0 - 1.0 / nthreads)

    def pack_time(self, nbytes: float) -> float:
        """Marshal ``nbytes`` on one thread (ms)."""
        return nbytes / (self.pack_bandwidth * _MB) * 1e3

    def unpack_time(self, nbytes: float) -> float:
        """Unmarshal ``nbytes`` on one thread (ms)."""
        return nbytes / (self.unpack_bandwidth * _MB) * 1e3

    def copy_time(self, nbytes: float) -> float:
        """Move ``nbytes`` across the memory system (ms)."""
        return nbytes / (self.mem_bandwidth * _MB) * 1e3

    def gather_time(self, chunk_bytes: list[float]) -> float:
        """RTS gather onto the communicating thread: it receives each
        remote chunk in turn (sends overlap, the receiver is the
        bottleneck) — one copy plus one message overhead per chunk."""
        return sum(
            self.copy_time(nbytes) + self.message_overhead
            for nbytes in chunk_bytes
        )

    #: Scatter mirrors gather: the communicating thread pushes chunks.
    scatter_time = gather_time
