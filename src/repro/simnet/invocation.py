"""Simulated invocations: the two transfer methods under the testbed.

Each function runs ONE blocking invocation carrying one ``in``
distributed sequence (the paper's experiment, §3.1: "in order to bring
out the asymmetry of interaction … we were including one 'in' argument
sent only from the client to the server") and returns the component
breakdown the corresponding table reports.  The layouts and chunk
schedules come from the *real* partitioning code
(:func:`repro.dist.transfer_schedule`), so who-sends-what-to-whom is
identical to the functional engines in :mod:`repro.orb.transfer`.

Times are milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist import BlockTemplate, transfer_schedule
from repro.dist.template import DistTemplate, Layout
from repro.simnet.calibration import SimConfig
from repro.simnet.engine import Simulator
from repro.simnet.network import SharedLink

#: Size of the reply carrying only a completion status (bytes).
_REPLY_BYTES = 64.0
#: Size of the multi-port invocation header (bytes).
_HEADER_BYTES = 256.0

#: MB/s → bytes per millisecond (simulation time unit).
_MBPS_TO_BYTES_PER_MS = 1024.0 * 1024.0 / 1e3


def _make_link(sim: Simulator, cfg: SimConfig) -> SharedLink:
    return SharedLink(
        sim,
        cfg.link_bandwidth * _MBPS_TO_BYTES_PER_MS,
        cfg.link_latency,
    )


@dataclass(frozen=True)
class CentralizedBreakdown:
    """Table 1's columns for one configuration."""

    nclient: int
    nserver: int
    nbytes: int
    t_inv: float
    t_gather: float
    t_pack_send: float
    t_recv: float
    t_scatter: float

    @property
    def t_gather_scatter(self) -> float:
        """The paper's combined gather/scatter component."""
        return self.t_gather + self.t_scatter

    @property
    def effective_bandwidth(self) -> float:
        """MB/s including all invocation overhead (Figure 4's y-axis)."""
        return (self.nbytes / (1024.0 * 1024.0)) / (self.t_inv / 1e3)


@dataclass(frozen=True)
class MultiPortBreakdown:
    """Table 2's columns for one configuration."""

    nclient: int
    nserver: int
    nbytes: int
    t_inv: float
    t_send: float  # max over client threads
    t_pack: float  # max over client threads
    t_recv_unpack: float  # max over server threads
    t_barrier: float  # post-invocation wait of the communicating thread
    link_utilization: float

    @property
    def effective_bandwidth(self) -> float:
        return (self.nbytes / (1024.0 * 1024.0)) / (self.t_inv / 1e3)


def _segments(nbytes: float, segment: int) -> list[float]:
    if nbytes <= 0:
        return []
    full, rest = divmod(int(nbytes), segment)
    sizes = [float(segment)] * full
    if rest:
        sizes.append(float(rest))
    return sizes


def _layout(
    template: DistTemplate | None, nelems: int, nranks: int
) -> Layout:
    return (template or BlockTemplate()).layout(nelems, nranks)


def simulate_centralized(
    cfg: SimConfig,
    nclient: int,
    nserver: int,
    nbytes: int,
    *,
    element_size: int = 8,
    client_template: DistTemplate | None = None,
    server_template: DistTemplate | None = None,
    reply_bytes: int = 0,
) -> CentralizedBreakdown:
    """One centralized-method invocation (paper §3.2, Figure 2).

    Fully sequential: synchronize → gather at the client's
    communicating thread → marshal → one synchronous network message →
    unmarshal → scatter at the server → execute → status reply.

    ``reply_bytes`` models an inout/out workload: that much argument
    data returns to the client through the mirror path (server gather
    → one message → client scatter).  The paper's experiment is
    ``reply_bytes=0`` (one ``in`` argument, status-only reply).
    """
    nelems = nbytes // element_size
    client_layout = _layout(client_template, nelems, nclient)
    server_layout = _layout(server_template, nelems, nserver)
    sim = Simulator()
    link = _make_link(sim, cfg)
    stall = cfg.pair_stall(nclient, nserver, multiport=False)
    times: dict[str, float] = {}

    def invocation():
        # Gather: the communicating thread receives every other
        # thread's block over shared memory (Figure 2's dotted lines).
        start = sim.now
        remote_chunks = [
            client_layout.local_length(r) * element_size
            for r in range(1, nclient)
            if client_layout.local_length(r)
        ]
        gather = cfg.client.gather_time(remote_chunks)
        if gather:
            yield sim.timeout(gather)
        times["gather"] = sim.now - start

        # Marshal + send as one message: "all information associated
        # with a request is sent in one message".
        start = sim.now
        yield sim.timeout(cfg.client.pack_time(nbytes))
        for seg in _segments(nbytes, cfg.segment_bytes):
            if stall:
                yield sim.timeout(stall)
            yield link.transmit(seg)
        times["pack_send"] = sim.now - start

        # The server's communicating thread unmarshals...
        start = sim.now
        yield sim.timeout(cfg.server.unpack_time(nbytes))
        times["recv"] = sim.now - start

        # ... and scatters to the computing threads.
        start = sim.now
        out_chunks = [
            server_layout.local_length(r) * element_size
            for r in range(1, nserver)
            if server_layout.local_length(r)
        ]
        scatter = cfg.server.scatter_time(out_chunks)
        if scatter:
            yield sim.timeout(scatter)
        times["scatter"] = sim.now - start

        # Post-invocation synchronization + reply.  With reply data
        # the mirror path runs: server-side gather + marshal, one
        # message, client-side unmarshal + scatter.
        if reply_bytes:
            gather_chunks = [
                server_layout.local_length(r) * element_size
                for r in range(1, nserver)
                if server_layout.local_length(r)
            ]
            back_gather = cfg.server.gather_time(
                [b * reply_bytes / max(1, nbytes) for b in gather_chunks]
            ) if nbytes else cfg.server.gather_time(gather_chunks)
            if back_gather:
                yield sim.timeout(back_gather)
            yield sim.timeout(cfg.server.pack_time(reply_bytes))
            for seg in _segments(reply_bytes, cfg.segment_bytes):
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(seg)
            yield sim.timeout(cfg.client.unpack_time(reply_bytes))
            scatter_chunks = [
                client_layout.local_length(r) * element_size
                for r in range(1, nclient)
                if client_layout.local_length(r)
            ]
            back_scatter = cfg.client.scatter_time(
                [b * reply_bytes / max(1, nbytes) for b in scatter_chunks]
            ) if nbytes else cfg.client.scatter_time(scatter_chunks)
            if back_scatter:
                yield sim.timeout(back_scatter)
        else:
            if stall:
                yield sim.timeout(stall)
            yield link.transmit(_REPLY_BYTES)
        times["inv"] = sim.now + cfg.request_overhead

    sim.process(invocation(), "centralized")
    sim.run()
    return CentralizedBreakdown(
        nclient=nclient,
        nserver=nserver,
        nbytes=nbytes,
        t_inv=times["inv"],
        t_gather=times["gather"],
        t_pack_send=times["pack_send"],
        t_recv=times["recv"],
        t_scatter=times["scatter"],
    )


def simulate_multiport(
    cfg: SimConfig,
    nclient: int,
    nserver: int,
    nbytes: int,
    *,
    element_size: int = 8,
    client_template: DistTemplate | None = None,
    server_template: DistTemplate | None = None,
    reply_bytes: int = 0,
) -> MultiPortBreakdown:
    """One multi-port-method invocation (paper §3.3, Figure 3).

    The header travels centralized; every client thread then marshals
    its own block and ships each overlap chunk straight to the owning
    server thread.  All transfers share the one physical link
    (processor sharing), so while one pair is stalled in a rendezvous
    another pair's data keeps the wire busy.

    ``reply_bytes`` models an inout/out workload: after the barrier,
    every server thread ships its share of the result straight back to
    the owning client threads (reply-phase chunks).  The paper's
    experiment is ``reply_bytes=0``.
    """
    nelems = nbytes // element_size
    client_layout = _layout(client_template, nelems, nclient)
    server_layout = _layout(server_template, nelems, nserver)
    schedule = transfer_schedule(client_layout, server_layout)
    sim = Simulator()
    link = _make_link(sim, cfg)
    stall = cfg.pair_stall(nclient, nserver, multiport=True)

    pack_times = [0.0] * nclient
    send_times = [0.0] * nclient
    unpack_times = [0.0] * nserver
    barrier_arrivals = [0.0] * nserver
    chunk_done = {
        id(step): sim.event(f"chunk{i}") for i, step in enumerate(schedule)
    }
    barrier = sim.gate(nserver, "post-invoke")
    reply_done = sim.event("reply")

    # Header: the communicating thread's request message.
    def header():
        if stall:
            yield sim.timeout(stall)
        yield link.transmit(_HEADER_BYTES)

    sim.process(header(), "header")

    def client_thread(rank: int):
        local_bytes = client_layout.local_length(rank) * element_size
        start = sim.now
        if local_bytes:
            yield sim.timeout(cfg.client.pack_time(local_bytes))
        pack_times[rank] = sim.now - start
        start = sim.now
        for step in schedule:
            if step.src_rank != rank:
                continue
            for seg in _segments(step.nelems * element_size,
                                 cfg.segment_bytes):
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(seg)
            chunk_done[id(step)].succeed()
        send_times[rank] = sim.now - start

    def server_thread(rank: int):
        mine = [
            chunk_done[id(step)]
            for step in schedule
            if step.dst_rank == rank
        ]
        if mine:
            yield sim.all_of(mine)
        local_bytes = server_layout.local_length(rank) * element_size
        start = sim.now
        if local_bytes:
            yield sim.timeout(cfg.server.unpack_time(local_bytes))
        unpack_times[rank] = sim.now - start
        barrier_arrivals[rank] = sim.now
        barrier.arrive()

    scale = reply_bytes / nbytes if nbytes else 0.0
    reply_chunk_done = {
        id(step): sim.event(f"rchunk{i}")
        for i, step in enumerate(schedule)
    }
    client_done = sim.gate(nclient if reply_bytes else 0, "client-done")

    def replier():
        yield barrier
        if stall:
            yield sim.timeout(stall)
        yield link.transmit(_REPLY_BYTES)
        reply_done.succeed()

    def server_reply_thread(rank: int):
        """Ship this server thread's share of the reply data."""
        yield barrier
        local_bytes = server_layout.local_length(rank) * element_size
        if local_bytes:
            yield sim.timeout(
                cfg.server.pack_time(local_bytes * scale)
            )
        for step in schedule:
            if step.dst_rank != rank:  # reply reverses the schedule
                continue
            for seg in _segments(
                step.nelems * element_size * scale, cfg.segment_bytes
            ):
                if stall:
                    yield sim.timeout(stall)
                yield link.transmit(seg)
            reply_chunk_done[id(step)].succeed()

    def client_reply_thread(rank: int):
        mine = [
            reply_chunk_done[id(step)]
            for step in schedule
            if step.src_rank == rank
        ]
        if mine:
            yield sim.all_of(mine)
        local_bytes = client_layout.local_length(rank) * element_size
        if local_bytes:
            yield sim.timeout(
                cfg.client.unpack_time(local_bytes * scale)
            )
        client_done.arrive()

    for rank in range(nclient):
        sim.process(client_thread(rank), f"client{rank}")
    for rank in range(nserver):
        sim.process(server_thread(rank), f"server{rank}")
    sim.process(replier(), "reply")
    if reply_bytes:
        for rank in range(nserver):
            sim.process(server_reply_thread(rank), f"sreply{rank}")
        for rank in range(nclient):
            sim.process(client_reply_thread(rank), f"creply{rank}")
    sim.run()

    barrier_time = max(barrier_arrivals) if nserver else 0.0
    return MultiPortBreakdown(
        nclient=nclient,
        nserver=nserver,
        nbytes=nbytes,
        t_inv=sim.now + cfg.request_overhead,
        t_send=max(send_times),
        t_pack=max(pack_times),
        t_recv_unpack=max(unpack_times),
        t_barrier=barrier_time - barrier_arrivals[0],
        link_utilization=link.utilization(),
    )
