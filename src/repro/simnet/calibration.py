"""Calibrated constants for the paper's testbed (§3.1).

The experiment: "a client executing on a 4-node SGI Onyx R4400 [invokes]
an SPMD object executing on a 10-node SGI PC R8000.  The network
transfer is conducted over a 155 MB/s ATM link using the LAN Emulation
protocol … machines as well as the link were dedicated … MPICH 1.0.12
compiled to use shared memory … NexusLite [transport], sends and
receives for large data sizes are in practice synchronous."

Calibration strategy (documented so the numbers are auditable):

- ``link_bandwidth`` = 40 MB/s: the effective payload rate of the LANE
  ATM path.  It exceeds the *measured* single-pair bandwidth because a
  synchronous sender stalls between segments; it bounds the multi-port
  aggregate, which the paper measured at 26.7 MB/s effective
  (including all invocation overhead).
- ``segment_bytes`` = 256 KiB: the NexusLite staging granularity; each
  segment is a rendezvous, so ~32 stalls per 2^20-double argument.
- Stall parameters: fitted to Table 1's pack+send column.  At
  (client 1, server 1) pack+send ≈ 421 ms for 8 MiB → ~11.7 ms per
  segment, of which 6.25 ms is wire time → base stalls ≈ 2.6 ms per
  machine (an IRIX scheduling latency).  The growth to 446 ms at
  8 server threads fixes the server's ``stall_scale``; the jump to
  ~490-577 ms with 4 client threads fixes the client's (the Onyx is
  both slower and fully subscribed at 4 threads, hence the larger
  scale).
- Memory bandwidths: Table 1's gather/scatter column (≈0.2 ms at one
  thread, saturating at ~26 ms for 8 MiB spread over 8 threads) gives
  ≈ 330 MB/s effective copy rate plus a small per-chunk message cost.
- Pack/unpack: Table 2's per-thread marshaling columns (≈37 ms to pack
  8 MiB on one Onyx CPU → ≈225 MB/s; ≈17-23 ms to unpack on an R8000
  → ≈450 MB/s).
- ``request_overhead``: per-invocation fixed cost (request header
  processing, dispatch, reply), visible as the floor that makes both
  methods equally slow for tiny arguments in Figure 4.

None of these claim to be the *true* 1997 constants — they are chosen
so the simulated Tables 1-2 and Figure 4 land near the published
values; EXPERIMENTS.md records paper-vs-simulated for every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simnet.machine import MachineModel

#: The paper's standard argument: 2^20 doubles, one "in" parameter.
PAPER_SEQUENCE_DOUBLES = 2**20
PAPER_SEQUENCE_BYTES = PAPER_SEQUENCE_DOUBLES * 8


@dataclass(frozen=True)
class SimConfig:
    """Everything the invocation models need about the testbed."""

    client: MachineModel
    server: MachineModel
    #: Raw effective link bandwidth (MB/s).
    link_bandwidth: float
    #: One-way wire latency per transfer (ms).
    link_latency: float
    #: Synchronous staging segment (bytes).
    segment_bytes: int
    #: Fixed per-invocation cost: header marshal, dispatch, reply (ms).
    request_overhead: float
    #: Extra stall when BOTH machines are multi-threaded — descheduling
    #: on one end compounds wait on the other (ms at the joint limit).
    stall_interaction: float = 0.0
    #: Fraction of the thread-count-dependent stall that survives in
    #: the multi-port method.  Its receivers block in the OS on their
    #: own ports (no MPICH busy-wait spinners competing for CPUs), so
    #: wakeup is prompt; the centralized method's non-communicating
    #: threads spin in shared-memory MPI and steal quanta.
    multiport_stall_damping: float = 1.0
    #: Whether scheduler interference is modeled (ablation switch).
    scheduler_interference: bool = True

    def pair_stall(
        self, nclient: int, nserver: int, multiport: bool = False
    ) -> float:
        """Per-segment rendezvous stall for one client-server pair (ms)."""
        if not self.scheduler_interference:
            return 0.0
        base = self.client.stall_base + self.server.stall_base
        grow_c = 1.0 - 1.0 / nclient
        grow_s = 1.0 - 1.0 / nserver
        scale = (
            self.client.stall_scale * grow_c
            + self.server.stall_scale * grow_s
            + self.stall_interaction * grow_c * grow_s
        )
        if multiport:
            scale *= self.multiport_stall_damping
        return base + scale

    def client_stall(self, nthreads: int) -> float:
        if not self.scheduler_interference:
            return 0.0
        return self.client.stall(nthreads)

    def server_stall(self, nthreads: int) -> float:
        if not self.scheduler_interference:
            return 0.0
        return self.server.stall(nthreads)

    def without_scheduler(self) -> "SimConfig":
        """Ablation: an ideal scheduler (no rendezvous stalls)."""
        return replace(self, scheduler_interference=False)


def paper_testbed() -> SimConfig:
    """The calibrated SGI Onyx → SGI Power Challenge testbed."""
    client = MachineModel(
        name="SGI Onyx R4400 (4 CPUs)",
        ncpus=4,
        mem_bandwidth=95.0,
        pack_bandwidth=225.0,
        unpack_bandwidth=225.0,
        stall_base=2.3,
        stall_scale=2.6,
        message_overhead=0.5,
    )
    server = MachineModel(
        name="SGI Power Challenge R8000 (10 CPUs)",
        ncpus=10,
        mem_bandwidth=300.0,
        pack_bandwidth=280.0,
        unpack_bandwidth=450.0,
        stall_base=2.3,
        stall_scale=0.9,
        message_overhead=0.5,
    )
    return SimConfig(
        client=client,
        server=server,
        link_bandwidth=40.0,
        link_latency=0.5,
        segment_bytes=256 * 1024,
        request_overhead=2.0,
        stall_interaction=2.3,
        multiport_stall_damping=0.35,
    )
