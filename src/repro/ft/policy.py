"""QoS policies: deadlines, retry budgets, deterministic backoff.

An :class:`FtPolicy` attaches to an ORB, a client runtime or a single
proxy and governs every invocation made through it.  Policies are
immutable and shared freely between ranks of a collective binding;
everything they compute — retry decisions, backoff delays — is a pure
function of the policy, the request id and the attempt number, so all
ranks of a collective client reach the same decision without
communicating (the communication that *is* needed, agreeing on which
failure occurred, lives in :mod:`repro.ft.agreement`).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.orb.operation import RemoteError

#: Error categories a policy retries by default: transport failures,
#: server-declared transients, and receive timeouts.
DEFAULT_RETRYABLE = ("COMM_FAILURE", "TRANSIENT", "NO_RESPONSE", "TIMEOUT")


class DeadlineExceeded(RemoteError):
    """An invocation missed its deadline (policy ``deadline_ms`` or,
    with no deadline set, the runtime receive timeout).

    On a collective binding every rank raises this with the same
    ``collective_index`` — the position of the failed invocation in
    the group's collective sequence — so SPMD clients stay in
    lockstep even through failures.
    """

    def __init__(
        self,
        operation: str,
        *,
        collective_index: int = 0,
        deadline_ms: float | None = None,
        attempts: int = 0,
        detail: str = "",
    ) -> None:
        budget = (
            f"{deadline_ms:g}ms deadline"
            if deadline_ms is not None
            else "receive timeout"
        )
        message = (
            f"invocation '{operation}' #{collective_index} exceeded its "
            f"{budget} after {attempts} retr"
            f"{'y' if attempts == 1 else 'ies'}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message, category="TIMEOUT")
        self.operation = operation
        self.collective_index = collective_index
        self.deadline_ms = deadline_ms
        self.attempts = attempts


class InvocationRetriesExhausted(RemoteError):
    """Every allowed attempt of an invocation failed retryably.

    Carries the canonical (group-agreed) last failure, so all ranks of
    a collective binding raise byte-identical exceptions.
    """

    def __init__(
        self,
        operation: str,
        *,
        collective_index: int = 0,
        attempts: int = 0,
        last_failure: str = "",
    ) -> None:
        message = (
            f"invocation '{operation}' #{collective_index} failed after "
            f"{attempts} retr{'y' if attempts == 1 else 'ies'}"
        )
        if last_failure:
            message = f"{message}; last failure: {last_failure}"
        super().__init__(message, category="COMM_FAILURE")
        self.operation = operation
        self.collective_index = collective_index
        self.attempts = attempts
        self.last_failure = last_failure


@dataclass(frozen=True)
class Failure:
    """A picklable failure descriptor ranks can vote on.

    ``kind`` classifies where the failure was observed:

    - ``"timeout"`` — a receive window expired (reply or chunks).
    - ``"transport"`` — a send or receive raised a transport error.
    - ``"unreachable"`` — a multiport data-port send could not reach
      its destination (the graceful-degradation trigger: the server
      cannot have executed, so falling back to the centralized method
      with a fresh request id is safe).
    - ``"remote"`` — the server replied with a retryable system
      exception (``category`` carries its CORBA-ish category).

    ``deadline_exhausted`` is stamped by the *observing* rank so the
    post-vote retry decision never consults a local clock — all ranks
    act on the one flag the canonical failure carries.
    """

    kind: str
    category: str
    message: str
    rank: int = 0
    deadline_exhausted: bool = False


class FtStats:
    """Per-runtime fault-tolerance counters (thread-safe).

    Counts are per-rank events: a collective group of N ranks retrying
    one invocation records N retries (one per rank), mirroring how the
    work is actually repeated.

    ``on_bump``, when given, observes every bump as ``on_bump(field,
    by)`` — outside the lock — so the counters can be mirrored into an
    external sink (the ``repro.trace`` metrics registry uses this to
    expose ``ft.*`` counters).
    """

    _FIELDS = (
        "retries",
        "deadline_exceeded",
        "retries_exhausted",
        "degraded",
        "agreements",
        "failovers",
    )

    def __init__(self, on_bump: Any = None) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self._FIELDS, 0)
        self._on_bump = on_bump

    def bump(self, field_name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[field_name] += by
        if self._on_bump is not None:
            self._on_bump(field_name, by)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


@dataclass(frozen=True)
class FtPolicy:
    """What an invocation is allowed to cost before failing.

    ``deadline_ms``
        End-to-end budget from send to composed result; ``None`` falls
        back to the runtime receive timeout per attempt.
    ``max_retries``
        Full re-sends allowed after the first attempt; 0 disables
        retries entirely (a timeout then raises
        :class:`DeadlineExceeded` immediately).
    ``backoff_base_ms`` / ``backoff_cap_ms``
        Exponential backoff between attempts, jittered
        deterministically from the request id so every rank of a
        collective binding sleeps the same amount without
        communicating.
    ``retryable_categories``
        Failure categories worth re-sending for.  Everything else —
        user exceptions, marshaling errors, servant bugs — propagates
        on the first occurrence.
    ``degrade_to_centralized``
        When a multiport data port is unreachable, collectively fall
        back to the centralized transfer method (fresh request id; the
        server never saw the data, so it cannot have executed).
    ``max_failovers``
        Replica flips a *group* binding (``repro.groups``) may make
        per invocation after per-replica retries exhaust.  Ignored on
        singleton bindings.  The default covers every sibling of a
        failed replica once; invocations replayed on the new replica
        dedup through the server reply cache, so a failover is safe
        even when the old replica executed before dying.
    """

    deadline_ms: float | None = None
    max_retries: int = 0
    backoff_base_ms: float = 10.0
    backoff_cap_ms: float = 2000.0
    retryable_categories: tuple[str, ...] = field(
        default=DEFAULT_RETRYABLE
    )
    degrade_to_centralized: bool = True
    max_failovers: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ValueError("backoff values cannot be negative")
        if self.max_failovers is not None and self.max_failovers < 0:
            raise ValueError("max_failovers cannot be negative (or None)")
        object.__setattr__(
            self,
            "retryable_categories",
            tuple(self.retryable_categories),
        )

    # -- decisions (pure: identical on every rank) -----------------------

    def is_retryable(self, failure: Failure) -> bool:
        """Is re-sending worth it for this (canonical) failure?"""
        if failure.kind == "timeout":
            return "TIMEOUT" in self.retryable_categories
        if failure.kind in ("transport", "unreachable"):
            return "COMM_FAILURE" in self.retryable_categories
        return failure.category in self.retryable_categories

    def backoff_seconds(self, attempt: int, request_id: int) -> float:
        """Delay before retry ``attempt`` (1-based), capped exponential
        with jitter seeded from the request id — deterministic, so all
        ranks of a collective binding sleep identically."""
        if self.backoff_base_ms <= 0:
            return 0.0
        raw = self.backoff_base_ms * (2 ** max(attempt - 1, 0))
        capped = min(raw, self.backoff_cap_ms)
        jitter = random.Random(
            (request_id * 1_000_003) ^ attempt
        ).uniform(0.5, 1.0)
        return capped * jitter / 1e3

    def wait_budget(self, fallback_timeout: float | None) -> float | None:
        """An upper bound (seconds) on how long a blocking caller may
        wait for the future of an invocation under this policy."""
        per_attempt = (
            self.deadline_ms / 1e3
            if self.deadline_ms is not None
            else fallback_timeout
        )
        if per_attempt is None:
            return None
        backoffs = sum(
            min(
                self.backoff_base_ms * (2 ** max(i - 1, 0)),
                self.backoff_cap_ms,
            )
            for i in range(1, self.max_retries + 1)
        ) / 1e3
        return per_attempt * (self.max_retries + 1) + backoffs + 5.0


def reconstruct_error(failure: Failure) -> Exception:
    """The exception an *unpolicied* invocation raises for a failure:
    the same types the pre-ft wire path produced, now raised on every
    rank instead of stranding the non-observing ones."""
    from repro.orb.transport import TransportError

    if failure.kind == "remote":
        return RemoteError(failure.message, category=failure.category)
    return TransportError(failure.message)


def failure_to_exception(
    failure: Failure,
    policy: FtPolicy,
    *,
    operation: str,
    collective_index: int,
    attempts: int,
) -> Exception:
    """Map the canonical failure of a policied invocation onto the
    public exception all ranks raise."""
    timed_out = failure.kind == "timeout"
    if timed_out and (
        attempts == 0
        or failure.deadline_exhausted
        or not policy.is_retryable(failure)
    ):
        return DeadlineExceeded(
            operation,
            collective_index=collective_index,
            deadline_ms=policy.deadline_ms,
            attempts=attempts,
            detail=failure.message,
        )
    return InvocationRetriesExhausted(
        operation,
        collective_index=collective_index,
        attempts=attempts,
        last_failure=failure.message,
    )


def effective_policy(explicit: Any, runtime: Any) -> FtPolicy | None:
    """The policy governing an invocation: the proxy's own, falling
    back to the runtime's (ORB-wide) policy."""
    if explicit is not None:
        return explicit
    return getattr(runtime, "ft_policy", None)
