"""Fault tolerance for SPMD invocations.

PARDIS invocations are *collective*: every computing thread of an SPMD
client participates in a request (§2.1), so a lost frame or a hung
server rank must never strand one rank in ``wait()`` while its peers
move on — the group would silently diverge on the collective sequence.
This subsystem adds the robustness layer around that constraint:

- :mod:`repro.ft.policy` — per-proxy/per-ORB QoS policies
  (:class:`FtPolicy`: deadlines, bounded retries with deterministic
  backoff) and the exceptions they raise.
- :mod:`repro.ft.agreement` — the collective failure vote: a failure
  observed by *any* rank is resolved over the RTS so all ranks raise
  the identical exception at the identical collective index.
- :mod:`repro.ft.dedup` — the server-side reply cache making retries
  safe: a retried request whose reply was lost is answered from the
  cache instead of re-executed.
- :mod:`repro.ft.faults` — the fault-injection fabric wrapper
  (seeded drop / delay / duplicate / truncate / disconnect schedules)
  that exercises all of the above in tests and benchmarks.

See ``docs/robustness.md`` for the protocol description and the
fault-injection cookbook.
"""

from repro.ft.agreement import agree, agree_failure
from repro.ft.dedup import ReplyCache
from repro.ft.faults import FaultSchedule, FaultyFabric
from repro.ft.policy import (
    DeadlineExceeded,
    Failure,
    FtPolicy,
    FtStats,
    InvocationRetriesExhausted,
)

#: Alias matching the CORBA-ish "transport" spelling used in the
#: paper-adjacent literature; the wrapper wraps fabrics either way.
FaultyTransport = FaultyFabric

__all__ = [
    "DeadlineExceeded",
    "Failure",
    "FaultSchedule",
    "FaultyFabric",
    "FaultyTransport",
    "FtPolicy",
    "FtStats",
    "InvocationRetriesExhausted",
    "ReplyCache",
    "agree",
    "agree_failure",
]
