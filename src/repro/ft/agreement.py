"""Collective failure agreement: one outcome per collective point.

The SPMD-specific hard part of fault tolerance (ISSUE 4): on a
collective binding only *some* ranks observe a failure directly —
rank 0 owns the reply port, each rank owns its own data port — yet
every rank must raise the identical exception at the identical point
in the collective sequence, or the group diverges and deadlocks on its
next collective.

:func:`agree` is the vote: an allreduce-style exchange over the RTS in
which each rank contributes its locally observed
:class:`~repro.ft.policy.Failure` (or ``None``), and all ranks resolve
the same canonical outcome — the lowest-observing-rank's failure.  The
same exchange carries rank 0's reply header on success, so agreement
costs one collective, not two (it replaces the plain header broadcast
the engines used before fault tolerance existed).

Every rank must call :func:`agree` at the same collective point; the
transfer engines guarantee this by voting at fixed protocol stages
(after the reply-header wait, after chunk collection) and by deriving
all post-vote control flow — retry, degrade, raise — from the
canonical failure and the shared policy alone, never from local state
or local clocks.
"""

from __future__ import annotations

from typing import Any

from repro.ft.policy import Failure


def agree(
    rts: Any,
    local_failure: Failure | None,
    payload: Any = None,
) -> tuple[Failure | None, Any]:
    """Resolve one collective point: ``(canonical failure, payload)``.

    ``rts`` is the runtime-system interface of the collective binding
    (``None`` for a serial client, where the local view *is* the
    canonical one).  ``payload`` is whatever rank 0 learned at this
    stage (the decoded reply header); it is delivered to all ranks
    exactly when no rank failed, and must be picklable.

    The canonical failure is chosen by a deterministic rule every rank
    evaluates identically on the gathered votes: ``"unreachable"``
    failures first (they carry the graceful-degradation decision and
    must win over the secondary timeouts they induce on other ranks),
    then the lowest failing rank.
    """
    if rts is None:
        return local_failure, payload
    votes = rts.allgather(
        (local_failure, payload if rts.rank == 0 else None)
    )
    failures = [f for f, _ in votes if f is not None]
    failure = min(
        failures,
        key=lambda f: (f.kind != "unreachable", f.rank),
        default=None,
    )
    return failure, votes[0][1]


def agree_failure(
    rts: Any, local_failure: Failure | None
) -> Failure | None:
    """The payload-less vote (chunk-collection stage)."""
    failure, _ = agree(rts, local_failure)
    return failure
