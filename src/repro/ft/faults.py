"""The fault-injection fabric: seeded, deterministic misbehavior.

:class:`FaultyFabric` wraps any transport fabric — the in-process
:class:`~repro.orb.transport.Fabric` or a TCP
:class:`~repro.orb.socketnet.SocketFabric` — and injects faults on the
send side from a seeded :class:`FaultSchedule`:

- **drop** — the frame silently disappears (lost datagram).
- **delay** — the frame arrives late, off a timer thread (reordering).
- **duplicate** — the frame arrives twice (retransmission ghosts).
- **truncate** — the frame arrives short (corruption; the receive
  paths must drop it as garbage, not crash).
- **disconnect** — the send itself raises ``TransportError`` (an
  unreachable endpoint, the multiport degradation trigger).

Wrapped ports route their sends back through the wrapper (the fabric
reference on each opened port is patched), so *every* ORB message —
requests, replies, data chunks — passes the schedule; ``control``
frames are exempt by default so shutdown stays reliable.  Each
``decide`` consumes a fixed number of PRNG draws, making a schedule's
fault sequence a pure function of its seed and the send count.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.orb.transport import (
    TransportError,
    check_payload,
    flatten_payload,
)

#: Message kinds faulted by default (control frames carry shutdown).
DEFAULT_KINDS = ("request", "reply", "data")

_ACTIONS = ("drop", "delay", "duplicate", "truncate", "disconnect")


class FaultSchedule:
    """A seeded per-send fault decision stream.

    Probabilities are per fault type and evaluated independently per
    send, in a fixed order, so the decision sequence is deterministic
    in (seed, send index).  ``start_after`` exempts the first N
    eligible sends — useful to let a binding establish itself before
    the weather turns.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        truncate: float = 0.0,
        disconnect: float = 0.0,
        delay_ms: float = 2.0,
        kinds: tuple[str, ...] = DEFAULT_KINDS,
        start_after: int = 0,
    ) -> None:
        rates = {
            "drop": drop,
            "delay": delay,
            "duplicate": duplicate,
            "truncate": truncate,
            "disconnect": disconnect,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} probability must be in [0, 1], got {rate}"
                )
        if delay_ms < 0:
            raise ValueError("delay_ms cannot be negative")
        if start_after < 0:
            raise ValueError("start_after cannot be negative")
        self.seed = seed
        self.rates = rates
        self.delay_ms = delay_ms
        self.kinds = tuple(kinds)
        self.start_after = start_after
        import random

        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._seen = 0

    def decide(self, kind: str) -> tuple[str, ...]:
        """The fault actions for the next send of ``kind``."""
        with self._lock:
            if kind not in self.kinds:
                return ()
            self._seen += 1
            if self._seen <= self.start_after:
                # Burn the same number of draws as a live decision so
                # the stream stays aligned with the send index.
                for rate in self.rates.values():
                    if rate > 0.0:
                        self._rng.random()
                return ()
            actions = []
            for name in _ACTIONS:
                rate = self.rates[name]
                if rate > 0.0 and self._rng.random() < rate:
                    actions.append(name)
        return tuple(actions)


class FaultyFabric:
    """A fabric wrapper injecting faults from a :class:`FaultSchedule`.

    Satisfies the full fabric contract (``open_port`` / ``send`` /
    meters / ``open_port_count``), delegating everything else — socket
    fabric attributes like ``host`` — to the wrapped fabric, so it can
    stand in anywhere a fabric is accepted, including
    ``ORB(fabric=...)``.
    """

    def __init__(self, inner: Any, schedule: FaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self._lock = threading.Lock()
        self._injected = dict.fromkeys(_ACTIONS, 0)
        self._forwarded = 0

    # -- fabric contract -------------------------------------------------

    def open_port(self, label: str = "") -> Any:
        port = self.inner.open_port(label)
        # Sends issued through the port must pass the schedule; the
        # port's delivery side still belongs to the inner fabric.
        port._fabric = self
        return port

    def send(
        self, src: Any, dest: Any, payload: Any, kind: str
    ) -> None:
        check_payload(payload)
        actions = self.schedule.decide(kind)
        if not actions:
            with self._lock:
                self._forwarded += 1
            self.inner.send(src, dest, payload, kind)
            return
        self._count(actions)
        if "disconnect" in actions:
            raise TransportError(
                f"injected fault: {dest} is unreachable from {src}"
            )
        if "drop" in actions:
            return
        # Delayed/duplicated/truncated frames outlive this call, so
        # detach them from the sender's buffers (the zero-copy
        # contract lets the sender reuse them once send returns).
        data = bytes(flatten_payload(payload))
        if "truncate" in actions:
            cut = max(1, len(data) // 4)
            data = data[: len(data) - cut]
        copies = 2 if "duplicate" in actions else 1
        for _ in range(copies):
            if "delay" in actions:
                timer = threading.Timer(
                    self.schedule.delay_ms / 1e3,
                    self._send_late,
                    args=(src, dest, data, kind),
                )
                timer.daemon = True
                timer.start()
            else:
                self._send_late(src, dest, data, kind)

    def add_meter(self, meter: Any) -> None:
        self.inner.add_meter(meter)

    def remove_meter(self, meter: Any) -> None:
        self.inner.remove_meter(meter)

    def _unregister(self, address: Any) -> None:
        self.inner._unregister(address)

    def open_port_count(self) -> int:
        return self.inner.open_port_count()

    # -- fault bookkeeping -----------------------------------------------

    def _send_late(
        self, src: Any, dest: Any, data: bytes, kind: str
    ) -> None:
        try:
            self.inner.send(src, dest, data, kind)
        except Exception:
            # A late frame to a finished endpoint is just loss.
            pass

    def _count(self, actions: tuple[str, ...]) -> None:
        with self._lock:
            for action in actions:
                self._injected[action] += 1

    def fault_stats(self) -> dict[str, int]:
        """Snapshot of injected-fault counters (plus clean sends)."""
        with self._lock:
            stats = dict(self._injected)
            stats["forwarded"] = self._forwarded
        return stats

    # -- passthrough -----------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FaultyFabric":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<FaultyFabric over {self.inner!r}>"
