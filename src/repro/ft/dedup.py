"""Server-side request dedup: the bounded reply cache.

Retries are only safe if a re-sent request whose *reply* was lost is
not re-executed — PARDIS operations mutate servant state, so at-least-
once delivery must become effectively-once execution.  Request ids are
already unique and retry-stable (the client re-sends under the same
64-bit id), which makes dedup a cache problem:

- The prefetcher asks :meth:`ReplyCache.admit` before enqueueing a
  decoded request.  ``"new"`` proceeds to execution; ``"in-progress"``
  means the original attempt is still executing (its reply will answer
  the retry too, so the duplicate is dropped); ``"replay"`` means the
  request already executed and its recorded reply — status frame plus
  any multiport result chunks — is re-sent without touching the
  servant.
- The engine records each reply as it sends it
  (:meth:`record_reply` / :meth:`record_chunks`), or calls
  :meth:`forget` when the reply was a system exception — re-executing
  a request that never ran to completion is the correct retry.

The cache is bounded by a byte budget over completed entries, evicting
least-recently-used.  An evicted entry makes a very late retry execute
twice — the budget is the knob trading memory for the retry window.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class _Entry:
    """A completed request's recorded reply."""

    __slots__ = ("reply", "chunks", "size")

    def __init__(self, reply: bytes | None) -> None:
        self.reply = reply
        self.chunks: dict[int, list[bytes]] = {}
        self.size = len(reply) if reply is not None else 0


class ReplyCache:
    """A bounded, thread-safe map of request id -> recorded reply."""

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive")
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._in_progress: set[int] = set()
        self._done: OrderedDict[int, _Entry] = OrderedDict()
        self._bytes = 0
        self._counts = {
            "admitted": 0,
            "duplicates_dropped": 0,
            "replays": 0,
            "evictions": 0,
            "forgotten": 0,
        }

    # -- admission (prefetcher thread) -----------------------------------

    def admit(self, request_id: int) -> str:
        """Classify an arriving request id.

        Returns ``"new"`` (execute it), ``"in-progress"`` (drop it:
        the original attempt's reply is still coming), or ``"replay"``
        (answer from the cache via :meth:`replay`).
        """
        with self._lock:
            if request_id in self._done:
                self._done.move_to_end(request_id)
                self._counts["replays"] += 1
                return "replay"
            if request_id in self._in_progress:
                self._counts["duplicates_dropped"] += 1
                return "in-progress"
            self._in_progress.add(request_id)
            self._counts["admitted"] += 1
            return "new"

    def replay(self, request_id: int) -> tuple[bytes | None, dict[int, list[bytes]]]:
        """The recorded ``(reply frame, chunks by destination rank)``
        for a request :meth:`admit` classified as a replay.

        ``(None, ...)`` means there is no reply frame to resend — the
        request was oneway, the entry was evicted, or (transiently, on
        a collective group) peer ranks recorded their chunks before
        rank 0 recorded the reply.
        """
        with self._lock:
            entry = self._done.get(request_id)
            if entry is None:
                # Evicted between admit and replay; nothing to resend
                # (the client's next retry will re-execute).
                return None, {}
            return entry.reply, {
                rank: list(frames)
                for rank, frames in entry.chunks.items()
            }

    # -- recording (engine rank 0) ---------------------------------------

    def record_reply(self, request_id: int, reply: bytes | None) -> None:
        """Complete an entry: the request executed and this reply frame
        was sent (``None`` for oneway requests, which have no reply —
        the entry then exists purely to swallow duplicates).

        On a collective group, peer ranks may have recorded result
        chunks for the request already; the reply frame merges into
        that entry rather than replacing it.
        """
        with self._lock:
            self._in_progress.discard(request_id)
            entry = self._done.get(request_id)
            if entry is None:
                entry = _Entry(reply)
                self._done[request_id] = entry
                self._bytes += entry.size
            elif reply is not None:
                entry.reply = reply
                entry.size += len(reply)
                self._bytes += len(reply)
            self._done.move_to_end(request_id)
            self._evict()

    def record_chunks(self, request_id: int, dst_rank: int, frame: bytes) -> None:
        """Append a multiport result-chunk frame sent to ``dst_rank``.

        Chunk sends (every rank) and the reply send (rank 0) are
        concurrent on a collective group, so this creates the entry if
        it does not exist yet — :meth:`record_reply` merges in later.
        """
        with self._lock:
            entry = self._done.get(request_id)
            if entry is None:
                if request_id not in self._in_progress:
                    return  # forgotten or evicted
                entry = _Entry(None)
                self._done[request_id] = entry
            entry.chunks.setdefault(dst_rank, []).append(frame)
            entry.size += len(frame)
            self._bytes += len(frame)
            self._evict()

    def forget(self, request_id: int) -> None:
        """Drop all record of a request (system-exception replies: the
        request did not complete, so a retry should re-execute)."""
        with self._lock:
            self._in_progress.discard(request_id)
            entry = self._done.pop(request_id, None)
            if entry is not None:
                self._bytes -= entry.size
            self._counts["forgotten"] += 1

    def _evict(self) -> None:
        while self._bytes > self.budget_bytes and len(self._done) > 1:
            _, entry = self._done.popitem(last=False)
            self._bytes -= entry.size
            self._counts["evictions"] += 1

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, int]:
        with self._lock:
            stats = dict(self._counts)
            stats["entries"] = len(self._done)
            stats["bytes"] = self._bytes
        return stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)
