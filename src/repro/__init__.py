"""PARDIS reproduction — a parallel approach to CORBA.

This package reproduces the system described in

    K. Keahey and D. Gannon, "PARDIS: A Parallel Approach to CORBA",
    Proc. 6th IEEE Int. Symposium on High Performance Distributed
    Computing (HPDC-6), 1997.

The public API is re-exported here; subpackages load lazily so that
importing :mod:`repro` stays cheap.  The subpackages are:

``repro.dist``
    Distribution templates and distributed sequences (paper §2.2).
``repro.cdr``
    CDR-style marshaling used by the ORB.
``repro.rts``
    The run-time-system interface: a thread-based MPI-like message
    passing library, the SPMD executor, and futures (paper §2.3).
``repro.idl``
    The IDL compiler: CORBA IDL plus the ``dsequence`` extension,
    generating Python proxies and skeletons (paper §2.1).
``repro.orb``
    The request broker: transport, naming, requests, the object
    adapter, and the two distributed-argument transfer methods
    (paper §3.2, §3.3).
``repro.core``
    The SPMD object model and high-level API tying it all together.
``repro.simnet``
    A discrete-event simulator of the paper's testbed used by the
    benchmark harness to regenerate Tables 1-2 and Figure 4.
``repro.ft``
    Fault tolerance: invocation policies (deadlines, retry/backoff),
    collective failure agreement, server-side request dedup, and the
    fault-injection fabric (see ``docs/robustness.md``).
``repro.trace``
    Collective-aware tracing and metrics: rank-tagged spans correlated
    by a trace id propagated in the request header, a metrics
    registry, and a Chrome-trace exporter (see
    ``docs/observability.md``).
``repro.groups``
    Replicated object groups: a consistent-hash sharded naming
    service with a group directory, deterministic client-side replica
    selection, and collective failover between replicas (see
    ``docs/architecture.md``).
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

#: Public name → (module, attribute) for lazy loading.
_EXPORTS = {
    "BlockTemplate": ("repro.dist", "BlockTemplate"),
    "DistTemplate": ("repro.dist", "DistTemplate"),
    "DistributedSequence": ("repro.dist", "DistributedSequence"),
    "ExplicitTemplate": ("repro.dist", "ExplicitTemplate"),
    "Layout": ("repro.dist", "Layout"),
    "Proportions": ("repro.dist", "Proportions"),
    "transfer_schedule": ("repro.dist", "transfer_schedule"),
    "Future": ("repro.rts", "Future"),
    "Intracomm": ("repro.rts", "Intracomm"),
    "SpmdExecutor": ("repro.rts", "SpmdExecutor"),
    "spmd_run": ("repro.rts", "spmd_run"),
    "ORB": ("repro.core", "ORB"),
    "SpmdClientGroup": ("repro.core", "SpmdClientGroup"),
    "SpmdServerGroup": ("repro.core", "SpmdServerGroup"),
    "TransferMethod": ("repro.core", "TransferMethod"),
    "compile_idl": ("repro.idl", "compile_idl"),
    "compile_idl_module": ("repro.idl", "compile_idl_module"),
    "FtPolicy": ("repro.ft", "FtPolicy"),
    "FaultSchedule": ("repro.ft", "FaultSchedule"),
    "FaultyFabric": ("repro.ft", "FaultyFabric"),
    "DeadlineExceeded": ("repro.ft", "DeadlineExceeded"),
    "InvocationRetriesExhausted": (
        "repro.ft",
        "InvocationRetriesExhausted",
    ),
    "TraceRecorder": ("repro.trace", "TraceRecorder"),
    "MetricsRegistry": ("repro.trace", "MetricsRegistry"),
    "ShardedNaming": ("repro.groups", "ShardedNaming"),
    "ReplicatedGroup": ("repro.groups", "ReplicatedGroup"),
    "FailoverExhausted": ("repro.groups", "FailoverExhausted"),
    "serve_replicated": ("repro.groups", "serve_replicated"),
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return __all__
