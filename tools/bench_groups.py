#!/usr/bin/env python
"""Run the replicated-group benchmark and emit BENCH_groups.json.

Usage::

    PYTHONPATH=src python tools/bench_groups.py                # full run
    PYTHONPATH=src python tools/bench_groups.py --smoke        # CI subset
    PYTHONPATH=src python tools/bench_groups.py --smoke \\
        --gate 0.7                          # recovery-goodput gate

Drives pipelined invocation windows against a replicated echo group
bound through :class:`~repro.groups.ShardedNaming`, kills the
replica the client is bound to while a window is in flight, and
records the per-window goodput curve through detection, the
client-side failover, and the reply-cache replay.  ``--gate R``
fails (exit 1) when any invocation errors or is left uncompleted,
when the run does not perform exactly one failover, or when the
post-kill windows average below ``R`` times the pre-kill steady
state.  The ratio is machine-independent; absolute MB/s is reported
but never gated on.

See ``docs/robustness.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.groups import (  # noqa: E402
    DEFAULT_KILL_WINDOW,
    DEFAULT_MIN_RATIO,
    DEFAULT_REPLICAS,
    DEFAULT_REQUESTS,
    DEFAULT_SIZE,
    DEFAULT_TIMEOUT_S,
    DEFAULT_WINDOWS,
    SMOKE_KILL_WINDOW,
    SMOKE_REQUESTS,
    SMOKE_SIZE,
    SMOKE_WINDOWS,
    format_groups,
    gate_failures,
    points_as_dicts,
    run_groups,
    summarize,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small payload, fewer windows (CI-friendly)",
    )
    parser.add_argument("--windows", type=int, default=None)
    parser.add_argument(
        "--kill-window",
        type=int,
        default=None,
        help="window index whose in-flight burst absorbs the kill",
    )
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--size", type=int, default=None, help="bytes")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--drop",
        type=float,
        default=0.0,
        help="background frame-loss probability under the kill",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=DEFAULT_TIMEOUT_S,
        help="per-attempt timeout in seconds (bounds detection cost)",
    )
    parser.add_argument(
        "--selection",
        choices=["round-robin", "least-loaded"],
        default="round-robin",
    )
    parser.add_argument(
        "--gate",
        type=float,
        nargs="?",
        const=DEFAULT_MIN_RATIO,
        default=None,
        metavar="RATIO",
        help="fail unless recovery goodput reaches RATIO x steady "
        f"state (default {DEFAULT_MIN_RATIO}) with zero errors",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="JSON",
        help="gate a committed results file instead of running the "
        "bench (used by CI against BENCH_groups.json)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    args = parser.parse_args(argv)

    if args.check is not None:
        from repro.bench.groups import GroupWindow

        payload = json.loads(args.check.read_text())
        points = [GroupWindow(**d) for d in payload["results"]]
        ratio = args.gate if args.gate is not None else DEFAULT_MIN_RATIO
        print(format_groups(points))
        failures = gate_failures(points, min_ratio=ratio)
        print(
            f"\ncommitted-curve gate ({args.check}): zero errors, "
            f"one failover, recovery >= {ratio:.2f}x steady state"
        )
        for line in failures or ["  committed curve ok"]:
            print(f"  {line}" if line != "  committed curve ok" else line)
        if failures:
            print(f"{len(failures)} check(s) failed the gate")
            return 1
        return 0

    windows = args.windows or (
        SMOKE_WINDOWS if args.smoke else DEFAULT_WINDOWS
    )
    kill_window = (
        args.kill_window
        if args.kill_window is not None
        else (SMOKE_KILL_WINDOW if args.smoke else DEFAULT_KILL_WINDOW)
    )
    requests = args.requests or (
        SMOKE_REQUESTS if args.smoke else DEFAULT_REQUESTS
    )
    size = args.size or (SMOKE_SIZE if args.smoke else DEFAULT_SIZE)

    points = run_groups(
        replicas=args.replicas,
        windows=windows,
        kill_window=kill_window,
        requests=requests,
        size_bytes=size,
        seed=args.seed,
        drop_rate=args.drop,
        timeout_s=args.timeout,
        selection=args.selection,
    )
    print(format_groups(points))

    failures = []
    if args.gate is not None:
        failures = gate_failures(points, min_ratio=args.gate)
        print(
            f"\ngroups gate: zero errors, one failover, recovery "
            f">= {args.gate:.2f}x steady state"
        )
        for line in failures or ["  all windows ok"]:
            print(
                f"  {line}" if line != "  all windows ok" else line
            )

    if args.out is not None:
        payload = {
            "benchmark": "groups",
            "units": {
                "goodput_mb_per_s": (
                    "completed payload MB per second of wall clock, "
                    "both directions"
                ),
            },
            "parameters": {
                "replicas": args.replicas,
                "windows": windows,
                "kill_window": kill_window,
                "requests_per_window": requests,
                "size_bytes": size,
                "seed": args.seed,
                "drop_rate": args.drop,
                "timeout_s": args.timeout,
                "selection": args.selection,
            },
            "summary": summarize(points),
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if failures:
        print(f"{len(failures)} window(s)/check(s) failed the gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
