#!/usr/bin/env python
"""Run the thread-vs-process RTS benchmark and emit BENCH_procs.json.

Usage::

    PYTHONPATH=src python tools/bench_procs.py                 # full run
    PYTHONPATH=src python tools/bench_procs.py --smoke         # CI subset
    PYTHONPATH=src python tools/bench_procs.py --smoke \\
        --gate 1.8                          # process >= 1.8x thread gate

Four SPMD ranks run an identical body — a pure-Python (GIL-holding)
compute pass interleaved with a >= 1 MiB gather/scatter — on the
thread backend and on the process backend, and the JSON records the
``process / thread`` aggregate-throughput ratio per op.

The ratio only reflects parallelism on a multi-core host; the emitted
``host`` section records ``cpu_count`` and scheduler affinity, and
``--gate R`` is enforced **only when at least 2 cores are usable**
(on a single core it prints the measurement and the skip reason and
exits 0).  See ``docs/performance.md`` for the methodology.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.procs import (  # noqa: E402
    DEFAULT_COMPUTE_UNITS,
    DEFAULT_ITERATIONS,
    DEFAULT_RANKS,
    DEFAULT_SIZE,
    SMOKE_COMPUTE_UNITS,
    SMOKE_ITERATIONS,
    SMOKE_SIZE,
    effective_cores,
    format_procs,
    host_info,
    points_as_dicts,
    ratios,
    run_procs,
)
from repro.rts import process_backend_supported  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="1 MiB payload, fewer iterations (CI-friendly)",
    )
    parser.add_argument("--size", type=int, default=None, help="bytes")
    parser.add_argument("--ranks", type=int, default=DEFAULT_RANKS)
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument(
        "--compute-units",
        type=int,
        default=None,
        help="inner-loop length of the GIL-holding compute pass",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed loops per point; the best is reported",
    )
    parser.add_argument(
        "--gate",
        type=float,
        default=None,
        help="fail when any op's process/thread throughput ratio is "
        "below this (enforced only with >= 2 usable cores)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write results JSON here",
    )
    args = parser.parse_args(argv)

    if not process_backend_supported():
        print("process RTS backend unsupported here (needs fork)")
        return 0

    size = args.size or (SMOKE_SIZE if args.smoke else DEFAULT_SIZE)
    iterations = args.iterations or (
        SMOKE_ITERATIONS if args.smoke else DEFAULT_ITERATIONS
    )
    compute_units = args.compute_units or (
        SMOKE_COMPUTE_UNITS if args.smoke else DEFAULT_COMPUTE_UNITS
    )

    points = run_procs(
        size_bytes=size,
        ranks=args.ranks,
        iterations=iterations,
        compute_units=compute_units,
        repeats=args.repeats,
    )
    print(format_procs(points))

    cores = effective_cores()
    measured = ratios(points)
    failures = 0
    if args.gate is not None:
        if cores >= 2:
            print(
                f"\nprocess/thread gate: ratio must reach "
                f"{args.gate:.2f}x ({cores} usable cores)"
            )
            for op, ratio in sorted(measured.items()):
                verdict = "ok" if ratio >= args.gate else "FAIL"
                if verdict == "FAIL":
                    failures += 1
                print(f"  {op:<8} {ratio:>6.2f}x  {verdict}")
        else:
            print(
                f"\ngate skipped: {cores} usable core(s) — the "
                "process backend cannot run ranks in parallel here"
            )

    if args.out is not None:
        payload = {
            "benchmark": "procs",
            "units": {
                "mb_per_s": (
                    "payload MB through the collective per second, "
                    "aggregate across ranks"
                ),
                "ratios": "process mb_per_s / thread mb_per_s, per op",
            },
            "host": host_info(),
            "parameters": {
                "ranks": args.ranks,
                "size_bytes": size,
                "iterations": iterations,
                "compute_units": compute_units,
                "repeats": args.repeats,
            },
            "ratios": measured,
            "results": points_as_dicts(points),
        }
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.out}")

    if failures:
        print(f"{failures} op(s) below the throughput gate")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
